"""The ``ParameterBuffer`` protocol: what training code needs from SMB.

The SEASGD training stack programs against remote parameter storage
through exactly six capabilities — typed whole-buffer ``read``/``write``,
the server-side ``accumulate_into`` that implements eq. (7), the element
``count``, the element ``dtype``, and the mutation ``version`` counter.
Two backends provide them today:

* :class:`repro.smb.client.RemoteArray` — one segment on one SMB server
  (the evaluated system's single memory server);
* :class:`repro.smb.sharding.ShardedArray` — one logical vector striped
  over K servers (the paper's multi-server future work).

Historically the second backend was duck-typed into the worker; this
protocol makes the seam formal, so the training engine and its exchange
strategies are *typed* against :class:`ParameterBuffer` and multi-server
sharding is a first-class backend rather than an accident of attribute
names.  The protocol is :func:`typing.runtime_checkable`, so tests can
assert conformance with ``isinstance``.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class ParameterBuffer(Protocol):
    """Typed remote storage for one flat parameter vector.

    Implementations hold ``count`` elements of ``dtype`` (float32 in every
    training path) in remote shared memory and support RDMA-style
    whole-buffer transfers plus the server-side accumulate of eq. (7).
    """

    #: Logical segment name (diagnostics only).
    name: str
    #: Number of elements in the buffer.
    count: int
    #: Element type of the buffer.
    dtype: np.dtype

    def read(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Fetch the whole buffer as a typed array (RDMA Read).

        With ``out`` (a C-contiguous writable array of ``count`` elements
        of ``dtype``), the transfer lands in the caller's buffer and
        ``out`` is returned — the steady-state training loop reads into
        one preallocated scratch vector instead of allocating a
        model-sized array every exchange.
        """
        ...

    def write(self, values: np.ndarray) -> int:
        """Overwrite the whole buffer; returns the new version."""
        ...

    def accumulate_into(self, dst: "ParameterBuffer", scale: float = 1.0) -> int:
        """Server-side ``dst += scale * self`` (the eq.-(7) primitive).

        Both buffers must live on the same backend (same server, or the
        same stripe layout for sharded buffers).
        """
        ...

    def version(self) -> int:
        """Monotone mutation counter (advances on write/accumulate)."""
        ...
