"""Client-side transports for talking to an SMB server.

The client library (:mod:`repro.smb.client`) is transport-agnostic: it sends
:class:`~repro.smb.protocol.Message` requests and receives responses.  Two
transports implement that contract:

* :class:`InProcTransport` — calls straight into an in-process
  :class:`~repro.smb.server.SMBServer`.  This is the high-fidelity stand-in
  for RDMA: no serialisation, no syscalls, just a function call into the
  memory pool, which is how kernel-bypass one-sided verbs behave from the
  application's point of view.
* :class:`TcpTransport` — frames messages over a TCP socket to a
  :class:`~repro.smb.server.TcpSMBServer`, for genuinely multi-process runs
  (the repro band's "emulate ... over sockets").

Both are safe for use by the two threads of a ShmCaffe worker because each
request/response exchange is serialised by an internal lock.
"""

from __future__ import annotations

import socket
import threading
from typing import Protocol, Tuple

from .errors import SMBConnectionError
from .protocol import HELLO, Message, recv_message, send_message
from .server import SMBServer


class Transport(Protocol):
    """What the SMB client needs from a transport."""

    def request(self, message: Message) -> Message:
        """Send one request and return the server's response."""
        ...

    def close(self) -> None:
        """Release transport resources."""
        ...


class InProcTransport:
    """Direct function-call transport into an in-process server core."""

    def __init__(self, server: SMBServer) -> None:
        self._server = server
        self._lock = threading.Lock()
        self._closed = False

    def request(self, message: Message) -> Message:
        if self._closed:
            raise SMBConnectionError("transport is closed")
        # WAIT_UPDATE may block for a long time; do not hold the exchange
        # lock across it or the worker's other thread would stall too.
        from .protocol import Op

        if message.op is Op.WAIT_UPDATE:
            return self._server.handle(message)
        with self._lock:
            return self._server.handle(message)

    def close(self) -> None:
        self._closed = True


class TcpTransport:
    """Framed request/response transport over one TCP connection."""

    def __init__(self, address: Tuple[str, int], timeout: float = 30.0) -> None:
        self._address = address
        try:
            self._sock = socket.create_connection(address, timeout=timeout)
        except OSError as exc:
            raise SMBConnectionError(
                f"cannot connect to SMB server at {address}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        self._lock = threading.Lock()
        try:
            self._sock.sendall(HELLO)
        except OSError as exc:
            raise SMBConnectionError(f"handshake failed: {exc}") from exc

    def request(self, message: Message) -> Message:
        with self._lock:
            send_message(self._sock, message)
            return recv_message(self._sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
