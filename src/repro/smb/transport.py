"""Client-side transports for talking to an SMB server.

The client library (:mod:`repro.smb.client`) is transport-agnostic: it sends
:class:`~repro.smb.protocol.Message` requests and receives responses.  Two
transports implement that contract:

* :class:`InProcTransport` — calls straight into an in-process
  :class:`~repro.smb.server.SMBServer`.  This is the high-fidelity stand-in
  for RDMA: no serialisation, no syscalls, just a function call into the
  memory pool, which is how kernel-bypass one-sided verbs behave from the
  application's point of view.
* :class:`TcpTransport` — frames messages over a TCP socket to a
  :class:`~repro.smb.server.TcpSMBServer`, for genuinely multi-process runs
  (the repro band's "emulate ... over sockets").

Both are safe for use by the two threads of a ShmCaffe worker; each
request/response exchange is serialised by an internal lock, **except**
``WAIT_UPDATE``, which must never hold that lock: a notification wait can
block for seconds while the other thread still needs to read/write/
accumulate.  :class:`TcpTransport` therefore runs waits on a dedicated
second connection (the *notification channel*), and both transports chop a
long wait into bounded slices so ``close()`` wakes a blocked waiter
promptly instead of letting shutdown hang.

Fault tolerance: every TCP request observes a per-request deadline, and a
connection that dies is re-established (with a fresh protocol handshake)
on the next request — the retry layer in :class:`~repro.smb.client.SMBClient`
turns that into a transparent reconnect-and-retry.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
from time import monotonic, sleep
from typing import Callable, Optional, Protocol, Tuple, Union

from .errors import SMBConnectionError, TransportClosedError
from .journal import read_rendezvous
from .memory import DEFAULT_TENANT
from .protocol import Message, Op, Status, encode_hello, recv_message, send_message
from .server import SMBServer

#: Upper bound on one server-side blocking slice of a WAIT_UPDATE.  Small
#: enough that close() wakes a waiter quickly; large enough that re-arming
#: the wait is not a busy loop.
WAIT_SLICE = 0.25

#: Pause between connect attempts while inside a server-down grace window.
RECONNECT_PAUSE = 0.2


class Transport(Protocol):
    """What the SMB client needs from a transport."""

    def request(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        """Send one request and return the server's response.

        ``out`` is the zero-copy receive seam: when given, a successful
        response payload that fits is delivered *into* ``out`` (and the
        returned message's ``payload`` is a view of it) instead of being
        allocated.  Transports that cannot honour ``out`` may ignore it —
        the client detects aliasing and copies as a fallback.
        """
        ...

    def close(self) -> None:
        """Release transport resources and wake any blocked waiter."""
        ...


def _sliced_wait(
    exchange: Callable[[Message], Message],
    message: Message,
    closed: threading.Event,
    slice_seconds: float = WAIT_SLICE,
) -> Message:
    """Run one WAIT_UPDATE as a sequence of bounded server-side waits.

    The caller's timeout semantics are preserved (``scale == 0`` waits
    forever, ``scale < 0`` polls, otherwise the deadline is honoured to
    within one slice), but no single exchange blocks longer than
    ``slice_seconds`` — so a concurrent :meth:`Transport.close` is
    observed promptly and shutdown cannot hang on a notification that
    will never come.
    """
    if message.scale < 0:
        # Poll: a single non-blocking exchange; a TIMEOUT response (the
        # segment has not advanced) propagates for the client to raise.
        if closed.is_set():
            raise TransportClosedError("transport closed while waiting")
        return exchange(message)
    deadline = monotonic() + message.scale if message.scale > 0 else None
    while True:
        if closed.is_set():
            raise TransportClosedError("transport closed while waiting")
        remaining = slice_seconds
        if deadline is not None:
            remaining = min(remaining, deadline - monotonic())
            if remaining <= 0:
                remaining = 1e-3  # at least one (instant) version check
        response = exchange(
            dataclasses.replace(message, scale=remaining)
        )
        if response.status is not Status.TIMEOUT:
            return response
        if deadline is not None and monotonic() >= deadline:
            return response  # genuine timeout; client raises from it


class InProcTransport:
    """Direct function-call transport into an in-process server core.

    There is no wire handshake to carry the tenant, so the namespace is
    pinned at construction and passed with every call — the in-process
    analogue of the ``SMB2`` hello.
    """

    def __init__(
        self, server: SMBServer, tenant: str = DEFAULT_TENANT
    ) -> None:
        self._server = server
        self._tenant = tenant
        self._lock = threading.Lock()
        self._closed = threading.Event()

    def request(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        if self._closed.is_set():
            raise TransportClosedError("transport is closed")
        # WAIT_UPDATE may block for a long time; never hold the exchange
        # lock across it or the worker's other thread would stall too.
        if message.op is Op.WAIT_UPDATE:
            return _sliced_wait(
                lambda msg: self._server.handle(msg, tenant=self._tenant),
                message,
                self._closed,
            )
        with self._lock:
            return self._server.handle(message, out, tenant=self._tenant)

    def close(self) -> None:
        self._closed.set()


class TcpTransport:
    """Framed request/response transport over TCP, with fault tolerance.

    Two connections are held against the server:

    * the **command channel** — every ordinary request/response pair,
      serialised under a lock;
    * the **notification channel** — opened lazily for ``WAIT_UPDATE``
      only, so a blocked wait never serialises the worker's other thread.

    Either connection that dies (peer reset, timeout, server restart) is
    torn down and re-established — including the protocol ``HELLO``
    handshake — on the next request that needs it.  Every exchange
    observes ``request_timeout``; an overdue response surfaces as
    :class:`SMBConnectionError`, which the client's retry policy treats
    as transient.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 10.0,
        request_timeout: float = 30.0,
        rendezvous: Optional[Union[str, os.PathLike]] = None,
        server_down_grace: float = 0.0,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self._address = address
        self._tenant = tenant
        self._hello = encode_hello(tenant)
        self._connect_timeout = timeout
        self._request_timeout = request_timeout
        self._rendezvous = rendezvous
        self._server_down_grace = server_down_grace
        self._lock = threading.Lock()
        self._notify_lock = threading.Lock()
        self._closed = threading.Event()
        self._sock: Optional[socket.socket] = self._connect()
        self._notify_sock: Optional[socket.socket] = None
        #: Whether the notification channel has ever been opened; its
        #: first lazy connect is an open, not a reconnect.
        self._notify_connected_once = False
        self.reconnects = 0

    # -- connection management -------------------------------------------

    def _resolve_address(self) -> Tuple[str, int]:
        """Current server endpoint: rendezvous file, else static address.

        A restarted server usually binds a new ephemeral port and
        republishes it through the rendezvous file; re-reading the file
        on *every* attempt is what lets a client inside its grace window
        find the new endpoint without any out-of-band coordination.
        """
        if self._rendezvous is not None:
            resolved = read_rendezvous(self._rendezvous)
            if resolved is not None:
                return resolved
        return self._address

    def _connect(self) -> socket.socket:
        """Open one handshaken connection to the server.

        With ``server_down_grace > 0`` a refused/failed connection is not
        terminal: attempts repeat (re-resolving the rendezvous each time)
        until the grace window expires, turning a server restart into a
        bounded outage instead of a run-killing error.
        """
        grace = self._server_down_grace
        deadline = monotonic() + grace if grace > 0 else None
        last_exc: Optional[OSError] = None
        address = self._address
        while True:
            if self._closed.is_set():
                raise TransportClosedError("transport is closed")
            address = self._resolve_address()
            sock: Optional[socket.socket] = None
            try:
                sock = socket.create_connection(
                    address, timeout=self._connect_timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(self._request_timeout)
                sock.sendall(self._hello)
                self._address = address
                return sock
            except OSError as exc:
                if sock is not None:
                    sock.close()
                last_exc = exc
            if deadline is None or monotonic() >= deadline:
                raise SMBConnectionError(
                    f"cannot connect to SMB server at {address}: {last_exc}"
                ) from last_exc
            sleep(min(RECONNECT_PAUSE, max(deadline - monotonic(), 0.0)))

    @staticmethod
    def _discard(sock: Optional[socket.socket]) -> None:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def drop_connection(self) -> None:
        """Abort both connections (fault injection / tests).

        The next request transparently reconnects and re-handshakes; a
        thread blocked in a wait observes a connection error and lets the
        retry layer re-issue the wait.

        The notification socket is *closed without the lock* — that is
        what interrupts a waiter blocked in ``recv`` (which holds
        ``_notify_lock`` for up to a wait slice) — but the shared
        ``_notify_sock`` slot itself is only cleared under the lock, and
        only if it still holds the socket we closed.  The old code
        assigned ``None`` lock-free, so a concurrent ``_notify_exchange``
        could read ``None`` mid-exchange and crash with ``TypeError``
        instead of the retryable ``SMBConnectionError``.
        """
        with self._lock:
            self._discard(self._sock)
            self._sock = None
        notify = self._notify_sock
        self._discard(notify)  # interrupts a blocked recv, never blocks
        with self._notify_lock:
            if self._notify_sock is notify:
                self._notify_sock = None

    # -- request path -----------------------------------------------------

    def request(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        if self._closed.is_set():
            raise TransportClosedError("transport is closed")
        if message.op is Op.WAIT_UPDATE:
            return _sliced_wait(self._notify_exchange, message, self._closed)
        with self._lock:
            if self._sock is None:
                self._sock = self._connect()
                self.reconnects += 1
            try:
                send_message(self._sock, message)
                return recv_message(self._sock, out)
            except SMBConnectionError:
                # Connection state is unknown (partial frame possible);
                # drop it so the next request starts clean.
                self._discard(self._sock)
                self._sock = None
                raise

    def _notify_exchange(self, message: Message) -> Message:
        """One exchange on the dedicated notification connection."""
        with self._notify_lock:
            if self._closed.is_set():
                raise TransportClosedError("transport is closed")
            if self._notify_sock is None:
                self._notify_sock = self._connect()
                # Reconnects on this channel count too; only the very
                # first (lazy) open is free.
                if self._notify_connected_once:
                    self.reconnects += 1
                self._notify_connected_once = True
            try:
                send_message(self._notify_sock, message)
                return recv_message(self._notify_sock)
            except SMBConnectionError:
                self._discard(self._notify_sock)
                self._notify_sock = None
                raise

    def close(self) -> None:
        self._closed.set()
        # Closing the sockets wakes any thread blocked in recv() with an
        # OSError -> SMBConnectionError, so shutdown never waits a slice.
        self._discard(self._sock)
        self._sock = None
        self._discard(self._notify_sock)
        self._notify_sock = None
