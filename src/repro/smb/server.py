"""The Soft Memory Box server.

Two layers live here:

* :class:`SMBServer` — the transport-agnostic request processor.  It owns a
  :class:`~repro.smb.memory.MemoryPool` and maps each protocol
  :class:`~repro.smb.protocol.Op` onto pool/segment operations.  Cumulative
  global-weight updates are processed **exclusively** per destination
  segment, exactly as the paper requires for eq. (7).
* :class:`TcpSMBServer` — a threaded TCP front-end.  Each connected worker
  gets a handler thread; this mirrors the paper's single memory server
  multiplexing many Infiniband queue pairs.

The server also keeps :class:`ServerStats` (bytes moved, op counts) which the
Fig. 7 bandwidth benchmark reads.
"""

from __future__ import annotations

import logging
import socket
import threading
from time import perf_counter as _perf_counter
from typing import Dict, Optional, Tuple

from time import monotonic as _monotonic

from ..telemetry import MetricsRegistry, TelemetrySession
from ..telemetry import current as _telemetry_current
from .errors import (
    NotificationTimeout,
    ServerClosingError,
    SMBConnectionError,
    SMBError,
    to_wire,
)
from .memory import DEFAULT_POOL_CAPACITY, MemoryPool
from .protocol import (
    HELLO,
    Message,
    Op,
    Status,
    recv_exact,
    recv_message,
    send_message,
)

logger = logging.getLogger(__name__)

#: Trace-lane pid for the SMB server (workers occupy their rank).
SMB_SERVER_TRACE_PID = 9999


class ServerStats:
    """Counters the server maintains for bandwidth/benchmark reporting.

    Backed by a :class:`~repro.telemetry.MetricsRegistry` — its own
    private one by default, or a shared session registry so a
    telemetry-enabled run folds the server counters into its snapshot.
    Byte totals and per-op counts live in *separate namespaces*
    (``bytes_read`` vs ``ops/READ``), so an opcode can never shadow the
    byte counters the Fig. 7 benchmark reads (the key-collision hazard
    of the old flat-dict implementation).
    """

    _RESERVED = ("bytes_read", "bytes_written")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def record(self, op: Op, nbytes: int = 0) -> None:
        """Account one operation of ``op`` moving ``nbytes`` payload bytes."""
        self.registry.inc(f"smb/server/ops/{op.name}")
        if op is Op.READ:
            self.registry.inc("smb/server/bytes_read", nbytes)
        elif op in (Op.WRITE, Op.ACCUMULATE):
            self.registry.inc("smb/server/bytes_written", nbytes)

    @property
    def bytes_read(self) -> int:
        """Total payload bytes served by READ operations."""
        return self.registry.counter("smb/server/bytes_read").value

    @property
    def bytes_written(self) -> int:
        """Total payload bytes absorbed by WRITE/ACCUMULATE operations."""
        return self.registry.counter("smb/server/bytes_written").value

    @property
    def op_counts(self) -> Dict[str, int]:
        """Per-opcode operation counts."""
        prefix = "smb/server/ops/"
        return {
            name[len(prefix):]: self.registry.counter(name).value
            for name in self.registry.names()
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy safe to serialise.

        Shape is unchanged from the original dataclass implementation
        (``bytes_read``/``bytes_written`` plus one key per opcode), which
        the Fig. 7 benchmark and ``SMBClient.stats()`` rely on.  An op
        name that would collide with a reserved key is emitted under an
        ``op/`` prefix instead of silently overwriting it.
        """
        data = {"bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}
        for name, count in self.op_counts.items():
            key = name if name not in self._RESERVED else f"op/{name}"
            data[key] = count
        return data


class SMBServer:
    """Transport-agnostic SMB request processor.

    One instance may be driven directly by in-process clients (see
    :class:`~repro.smb.transport.InProcTransport`) and simultaneously by a
    :class:`TcpSMBServer` front-end; the pool and its locks make both safe.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_POOL_CAPACITY,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.pool = MemoryPool(capacity)
        self._telemetry = telemetry
        tel = telemetry if telemetry is not None else _telemetry_current()
        # Fold server counters into the session registry when one is
        # recording, so `telemetry report` sees them; otherwise the
        # stats keep their own private registry (always-on counting —
        # the Fig. 7 benchmark reads them regardless of telemetry mode).
        self.stats = ServerStats(tel.registry if tel.enabled else None)
        self._accumulate_lock = threading.Lock()
        self._closing = threading.Event()

    def close(self) -> None:
        """Refuse new waits and wake every blocked WAIT_UPDATE handler.

        Long notification waits are the only place a handler thread can
        park indefinitely; on shutdown they must unwind rather than pin
        threads (and, for TCP, connections) forever.
        """
        self._closing.set()
        def _wake(segment) -> None:
            with segment.lock:
                segment.updated.notify_all()
        self.pool.for_each(_wake)

    def handle(self, request: Message) -> Message:
        """Process one request and return the response message.

        Protocol errors never escape: every :class:`SMBError` is converted
        into an ``ERROR`` response carrying the message text so remote
        clients can re-raise a faithful exception.  With telemetry
        recording, every request is timed into a per-opcode histogram
        and (in trace mode) emitted on the server's trace lane.
        """
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if not tel.enabled:
            return self._handle(request)
        trace = tel.trace
        if trace is not None:
            trace.name_process(SMB_SERVER_TRACE_PID, "smb-server")
        ts_us = trace.now_us() if trace is not None else 0.0
        start = _perf_counter()
        response = self._handle(request)
        elapsed = _perf_counter() - start
        tel.registry.observe(
            f"smb/server/time/{request.op.name}", elapsed
        )
        if response.status is not Status.OK:
            tel.registry.inc(
                f"smb/server/errors/{response.status.name}"
            )
        if trace is not None:
            # One tid per handler thread so concurrent requests render
            # as parallel tracks instead of overlapping on one line.
            trace.complete(
                name=request.op.name, pid=SMB_SERVER_TRACE_PID,
                tid=threading.get_ident() & 0xFFFF,
                ts_us=ts_us, dur_us=elapsed * 1e6, cat="smb",
            )
        return response

    def _handle(self, request: Message) -> Message:
        try:
            return self._dispatch(request)
        except NotificationTimeout as exc:
            return Message(op=request.op, status=Status.TIMEOUT,
                           payload=str(exc).encode())
        except SMBError as exc:
            return Message(op=request.op, status=Status.ERROR,
                           payload=to_wire(exc))

    def _dispatch(self, req: Message) -> Message:
        if req.op is Op.CREATE:
            name = req.payload.decode()
            segment = self.pool.create(name, req.count)
            self.stats.record(req.op)
            return Message(op=req.op, key=segment.shm_key)

        if req.op is Op.ATTACH:
            expected = req.count if req.count else None
            access_key = self.pool.attach(req.key, expected)
            self.stats.record(req.op)
            return Message(op=req.op, key=access_key)

        if req.op is Op.LOOKUP:
            segment = self.pool.by_name(req.payload.decode())
            self.stats.record(req.op)
            return Message(op=req.op, key=segment.shm_key,
                           count=segment.size)

        if req.op is Op.READ:
            segment = self.pool.by_access_key(req.key)
            data = segment.read(req.offset, req.count)
            self.stats.record(req.op, len(data))
            return Message(op=req.op, key=req.key, count=segment.version,
                           payload=data)

        if req.op is Op.WRITE:
            segment = self.pool.by_access_key(req.key)
            version = segment.write(req.offset, req.payload)
            self.stats.record(req.op, len(req.payload))
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.ACCUMULATE:
            dst = self.pool.by_access_key(req.key)
            src = self.pool.by_access_key(req.key2)
            # The SMB server "exclusively processes the cumulative update
            # requests of global weights from each worker" (paper T.A3):
            # serialise all accumulates through one lock, on top of the
            # per-segment locks taken inside accumulate_from.
            with self._accumulate_lock:
                version = dst.accumulate_from(
                    src,
                    scale=req.scale,
                    offset=req.offset,
                    count=req.count or None,
                )
            self.stats.record(req.op, (req.count or src.size // 4) * 4)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.FREE:
            self.pool.free(req.key)
            self.stats.record(req.op)
            return Message(op=req.op)

        if req.op is Op.WAIT_UPDATE:
            segment = self.pool.by_access_key(req.key)
            timeout = req.scale if req.scale > 0 else None
            # Wait in bounded slices so close() can interrupt a handler
            # parked on a notification that will never come.
            deadline = _monotonic() + timeout if timeout is not None else None
            version = segment.version
            while version <= req.count:
                if self._closing.is_set():
                    raise ServerClosingError("server is shutting down")
                wait = 0.5
                if deadline is not None:
                    wait = min(wait, deadline - _monotonic())
                    if wait <= 0:
                        raise NotificationTimeout(
                            req.key, req.count, timeout or 0.0
                        )
                version = segment.wait_for_update(req.count, wait)
            self.stats.record(req.op)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.VERSION:
            segment = self.pool.by_access_key(req.key)
            self.stats.record(req.op)
            return Message(op=req.op, key=req.key, count=segment.version)

        if req.op is Op.STATS:
            import json

            payload = json.dumps(self.stats.snapshot()).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.LIST:
            import json

            inventory = [
                {
                    "name": segment.name,
                    "nbytes": segment.size,
                    "version": segment.version,
                    "owner": segment.owner,
                }
                for segment in self.pool.segments().values()
            ]
            payload = json.dumps(
                {
                    "segments": sorted(
                        inventory, key=lambda item: item["name"]
                    ),
                    "capacity": self.pool.capacity,
                    "used": self.pool.used,
                }
            ).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.SHUTDOWN:
            return Message(op=req.op)

        raise SMBError(f"unhandled opcode: {req.op!r}")


class TcpSMBServer:
    """Threaded TCP front-end for an :class:`SMBServer`.

    Usage::

        with TcpSMBServer(capacity=1 << 28) as server:
            client = SMBClient.connect(server.address)
            ...

    Each accepted connection is validated with the protocol ``HELLO`` magic
    and then served request-by-request on its own thread until the peer
    disconnects or sends ``SHUTDOWN``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = DEFAULT_POOL_CAPACITY,
        core: Optional[SMBServer] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.core = core if core is not None else SMBServer(
            capacity, telemetry=telemetry
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TcpSMBServer":
        """Begin accepting connections on a background thread."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="smb-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listener; handler threads drain.

        Handler threads parked in a WAIT_UPDATE are woken through
        :meth:`SMBServer.close` so shutdown never leaves pinned threads
        behind.
        """
        self._stop.set()
        self.core.close()
        try:
            self._listener.close()
        except OSError:  # already closed
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "TcpSMBServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed during stop()
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"smb-conn-{peer[1]}",
                daemon=True,
            )
            handler.start()
            self._handlers.append(handler)

    def _serve_connection(self, conn: socket.socket, peer: object) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_exact(conn, len(HELLO))
            if hello != HELLO:
                logger.warning("rejecting non-SMB client from %s", peer)
                return
            while not self._stop.is_set():
                request = recv_message(conn)
                response = self.core.handle(request)
                send_message(conn, response)
                if request.op is Op.SHUTDOWN:
                    self._stop.set()
                    self._listener.close()
                    break
        except SMBConnectionError:
            pass  # peer went away; normal teardown
        except Exception:  # noqa: BLE001 - keep the server alive
            logger.exception("SMB handler crashed for peer %s", peer)
        finally:
            conn.close()
