"""The Soft Memory Box server.

Two layers live here:

* :class:`SMBServer` — the transport-agnostic request processor.  It owns a
  :class:`~repro.smb.memory.MemoryPool` and maps each protocol
  :class:`~repro.smb.protocol.Op` onto pool/segment operations.  Cumulative
  global-weight updates are processed **exclusively** per destination
  segment, exactly as the paper requires for eq. (7): the per-segment lock
  taken inside :meth:`~repro.smb.memory.Segment.accumulate_from` is the
  unit of exclusivity, so accumulates into *different* destinations run
  concurrently (the paper's T.A3 only requires exclusivity per
  global-weight segment).
* :class:`TcpSMBServer` — a selector-based event-loop TCP front-end.  One
  loop thread owns every socket (non-blocking, per-connection state
  machines reusing pooled receive/read buffers); operations that may block
  — snapshots, accumulates, bulk data ops — are handed to a small worker
  pool instead of costing a thread per connection, and notification waits
  park as event-style segment waiters that occupy no thread at all.  This
  mirrors
  the paper's single memory server multiplexing many Infiniband queue
  pairs: hundreds of clients, a handful of threads.

The server also keeps :class:`ServerStats` (bytes moved, op counts) which the
Fig. 7 bandwidth benchmark reads.
"""

from __future__ import annotations

import contextlib
import logging
import os
import selectors
import socket
import struct
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter as _perf_counter
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from time import monotonic as _monotonic

import numpy as np

from ..telemetry import MetricsRegistry, TelemetrySession
from ..telemetry import current as _telemetry_current
from .errors import (
    NotificationTimeout,
    QuotaExceededError,
    ServerClosingError,
    SMBError,
    SMBProtocolError,
    to_wire,
)
from .journal import (
    RENDEZVOUS_NAME,
    DurabilityStore,
    PoolImage,
    SegmentImage,
    write_rendezvous,
)
from .memory import (
    DEFAULT_POOL_CAPACITY,
    DEFAULT_TENANT,
    MemoryPool,
    Segment,
    SegmentWaiter,
    enter_bulk_priority,
)
from .protocol import (
    HEADER_FORMAT,
    HEADER_SIZE,
    HELLO,
    HELLO_TENANT,
    MAX_TENANT_NAME,
    TENANT_LEN_STRUCT,
    Message,
    Op,
    Status,
    decode_tenant_record,
)

logger = logging.getLogger(__name__)

#: Trace-lane pid for the SMB server (workers occupy their rank).
SMB_SERVER_TRACE_PID = 9999


class ServerStats:
    """Counters the server maintains for bandwidth/benchmark reporting.

    Backed by a :class:`~repro.telemetry.MetricsRegistry` — its own
    private one by default, or a shared session registry so a
    telemetry-enabled run folds the server counters into its snapshot.
    Byte totals and per-op counts live in *separate namespaces*
    (``bytes_read`` vs ``ops/READ``), so an opcode can never shadow the
    byte counters the Fig. 7 benchmark reads (the key-collision hazard
    of the old flat-dict implementation).
    """

    _RESERVED = ("bytes_read", "bytes_written")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def record(
        self, op: Op, nbytes: int = 0, tenant: Optional[str] = None
    ) -> None:
        """Account one operation of ``op`` moving ``nbytes`` payload bytes.

        With ``tenant`` given, the same accounting is mirrored into the
        per-namespace counters (``smb/tenant/<ns>/*``) that back
        TENANT_STATS and the multi-tenant billing view.
        """
        self.registry.inc(f"smb/server/ops/{op.name}")
        if op is Op.READ:
            self.registry.inc("smb/server/bytes_read", nbytes)
        elif op in (Op.WRITE, Op.ACCUMULATE):
            self.registry.inc("smb/server/bytes_written", nbytes)
        if tenant is not None:
            self.registry.inc(f"smb/tenant/{tenant}/ops")
            if op is Op.READ:
                self.registry.inc(f"smb/tenant/{tenant}/bytes_read", nbytes)
            elif op in (Op.WRITE, Op.ACCUMULATE):
                self.registry.inc(
                    f"smb/tenant/{tenant}/bytes_written", nbytes
                )

    def tenant_counters(self, tenant: str) -> Dict[str, float]:
        """Per-namespace telemetry: ops, bytes, denials, queue depth."""
        prefix = f"smb/tenant/{tenant}/"
        data: Dict[str, float] = {}
        for name in self.registry.names():
            if not name.startswith(prefix):
                continue
            metric = self.registry.get(name)
            value = getattr(metric, "value", None)
            if value is not None:
                data[name[len(prefix):]] = value
        return data

    @property
    def bytes_read(self) -> int:
        """Total payload bytes served by READ operations."""
        return self.registry.counter("smb/server/bytes_read").value

    @property
    def bytes_written(self) -> int:
        """Total payload bytes absorbed by WRITE/ACCUMULATE operations."""
        return self.registry.counter("smb/server/bytes_written").value

    @property
    def op_counts(self) -> Dict[str, int]:
        """Per-opcode operation counts."""
        prefix = "smb/server/ops/"
        return {
            name[len(prefix):]: self.registry.counter(name).value
            for name in self.registry.names()
            if name.startswith(prefix)
        }

    def counters(self) -> Dict[str, int]:
        """Return a plain-dict copy safe to serialise.

        Shape is unchanged from the original dataclass implementation
        (``bytes_read``/``bytes_written`` plus one key per opcode), which
        the Fig. 7 benchmark and ``SMBClient.stats()`` rely on.  An op
        name that would collide with a reserved key is emitted under an
        ``op/`` prefix instead of silently overwriting it.
        """
        data = {"bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}
        for name, count in self.op_counts.items():
            key = name if name not in self._RESERVED else f"op/{name}"
            data[key] = count
        return data


class SMBServer:
    """Transport-agnostic SMB request processor.

    One instance may be driven directly by in-process clients (see
    :class:`~repro.smb.transport.InProcTransport`) and simultaneously by a
    :class:`TcpSMBServer` front-end; the pool and its locks make both safe.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_POOL_CAPACITY,
        telemetry: Optional[TelemetrySession] = None,
        journal_dir: Optional[Union[str, os.PathLike]] = None,
        snapshot_interval: float = 30.0,
        journal_ops: bool = True,
    ) -> None:
        self.pool = MemoryPool(capacity)
        self._telemetry = telemetry
        tel = telemetry if telemetry is not None else _telemetry_current()
        # Fold server counters into the session registry when one is
        # recording, so `telemetry report` sees them; otherwise the
        # stats keep their own private registry (always-on counting —
        # the Fig. 7 benchmark reads them regardless of telemetry mode).
        self.stats = ServerStats(tel.registry if tel.enabled else None)
        # Requests waiting on (or holding) a destination segment's
        # accumulate exclusivity; exported as the
        # ``smb/server/queue/accumulate`` gauge — the autoscale
        # controller's direct read on the serialised-T.A3 bottleneck.
        self._accumulate_pending = 0
        self._accumulate_pending_lock = threading.Lock()
        self._closing = threading.Event()
        # -- durability (off unless a journal directory is given) --------
        #: Restart counter: 0 for a fresh pool, +1 per recovery.  Carried
        #: in ATTACH responses so clients can observe server restarts.
        self.epoch = 0
        self._store: Optional[DurabilityStore] = None
        self._snapshot_interval = snapshot_interval
        self._last_snapshot = _monotonic()
        self._journal_lock = threading.Lock()
        if journal_dir is not None:
            self._store = DurabilityStore(journal_dir, journal_ops=journal_ops)
            if self._store.has_state():
                self._recover()
            else:
                # Seed the directory so a crash before the first interval
                # still leaves a recoverable (empty) generation behind.
                self._write_snapshot_locked()

    def _recover(self) -> None:
        """Rehydrate pool, key table, versions and epoch from disk."""
        assert self._store is not None
        image = self._store.recover()
        for entry in image.tenants:
            self.pool.create_tenant(
                str(entry["name"]),
                int(entry["quota"]) if entry.get("quota") else None,
            )
        for seg in image.segments:
            self.pool.restore_segment(
                name=seg.name,
                shm_key=seg.shm_key,
                data=seg.data,
                version=seg.version,
                owner=seg.owner,
                tenant=seg.tenant,
            )
        self.pool.advance_keys(image.shm_minted, image.access_minted)
        self.epoch = image.epoch + 1
        # Attaches are not journaled, so ``access_minted`` undershoots
        # whatever the dead life handed out after its last snapshot;
        # epoch-salting the sequence makes collisions impossible instead
        # of merely unlikely.
        self.pool.reseed_access_keys(self.epoch)
        self.stats.registry.inc("smb/recovery/recoveries")
        self.stats.registry.inc(
            "smb/recovery/restored_segments", len(image.segments)
        )
        logger.info(
            "recovered %d segment(s) from %s (epoch %d)",
            len(image.segments), self._store.directory, self.epoch,
        )
        # The recovered image plus any replayed journal becomes the new
        # baseline snapshot, so the next crash recovers from one file.
        self._write_snapshot_locked()

    def _pool_image(self) -> PoolImage:
        segments = [
            SegmentImage(
                name=segment.name,
                shm_key=segment.shm_key,
                data=segment.buffer.copy(),
                version=segment.version,
                owner=segment.owner,
                tenant=segment.tenant,
            )
            for segment in self.pool.segments().values()
        ]
        tenants = [
            {"name": name, "quota": grant.quota}
            for name, grant in sorted(self.pool.tenants().items())
            if name != DEFAULT_TENANT or grant.quota is not None
        ]
        return PoolImage(
            capacity=self.pool.capacity,
            epoch=self.epoch,
            seq=0,  # assigned by the store
            shm_minted=self.pool.shm_minted,
            access_minted=self.pool.access_minted,
            segments=segments,
            tenants=tenants,
        )

    def _write_snapshot_locked(self) -> int:
        """Write a snapshot; caller holds (or doesn't need) the journal
        lock — this is the unsynchronised core."""
        assert self._store is not None
        seq = self._store.write_snapshot(self._pool_image())
        self._last_snapshot = _monotonic()
        self.stats.registry.inc("smb/recovery/snapshots")
        return seq

    def take_snapshot(self) -> int:
        """Force a durable snapshot now; returns its sequence number."""
        if self._store is None:
            raise SMBError("server has no journal directory configured")
        with self._journal_lock:
            return self._write_snapshot_locked()

    @property
    def journaled(self) -> bool:
        """True when a durability store is configured — i.e. every
        mutation serialises on the journal lock."""
        return self._store is not None

    def _mutation_guard(self) -> contextlib.AbstractContextManager:
        """Lock held across {mutate + journal-append} so the journal's
        record order always matches the pool's effect order.  A no-op
        when durability is off — the hot path stays lock-free."""
        if self._store is None:
            return contextlib.nullcontext()
        return self._journal_lock

    def _journal(self, record: Message) -> None:
        """Append one mutation record; caller holds the journal lock."""
        if self._store is None:
            return
        self._store.append(record)
        if _monotonic() - self._last_snapshot >= self._snapshot_interval:
            self._write_snapshot_locked()

    def close(self) -> None:
        """Refuse new waits and wake every blocked WAIT_UPDATE handler.

        Long notification waits are the only place a handler thread can
        park indefinitely; on shutdown they must unwind rather than pin
        threads (and, for TCP, connections) forever.

        With durability on, a final snapshot is written so a *clean*
        shutdown always restarts bit-exactly regardless of journal mode.
        """
        self._closing.set()
        if self._store is not None:
            try:
                with self._journal_lock:
                    self._write_snapshot_locked()
            except OSError:
                logger.exception("final snapshot failed during close")
            self._store.close()
        def _wake(segment) -> None:
            with segment.lock:
                segment.updated.notify_all()
        self.pool.for_each(_wake)

    def handle(
        self,
        request: Message,
        out: Optional[memoryview] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Message:
        """Process one request and return the response message.

        Protocol errors never escape: every :class:`SMBError` is converted
        into an ``ERROR`` response carrying the message text so remote
        clients can re-raise a faithful exception.  With telemetry
        recording, every request is timed into a per-opcode histogram
        and (in trace mode) emitted on the server's trace lane.

        ``tenant`` is the caller's namespace (established by the
        connection handshake, or pinned on an in-process transport);
        name-based ops are scoped to it and CREATE admission is checked
        against its quota grant.

        ``out`` is the in-process zero-copy seam: a READ whose result fits
        is copied *once*, segment to caller buffer, under the segment
        lock — the function-call analogue of a one-sided RDMA Read — and
        the response payload is a view of ``out``.
        """
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if not tel.enabled:
            return self._handle(request, out, tenant)
        trace = tel.trace
        if trace is not None:
            trace.name_process(SMB_SERVER_TRACE_PID, "smb-server")
        ts_us = trace.now_us() if trace is not None else 0.0
        start = _perf_counter()
        response = self._handle(request, out, tenant)
        elapsed = _perf_counter() - start
        tel.registry.observe(
            f"smb/server/time/{request.op.name}", elapsed
        )
        if response.status is not Status.OK:
            tel.registry.inc(
                f"smb/server/errors/{response.status.name}"
            )
        if trace is not None:
            # One tid per handler thread so concurrent requests render
            # as parallel tracks instead of overlapping on one line.
            trace.complete(
                name=request.op.name, pid=SMB_SERVER_TRACE_PID,
                tid=threading.get_ident() & 0xFFFF,
                ts_us=ts_us, dur_us=elapsed * 1e6, cat="smb",
            )
        return response

    def _handle(
        self,
        request: Message,
        out: Optional[memoryview] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Message:
        try:
            return self._dispatch(request, out, tenant)
        except NotificationTimeout as exc:
            return Message(op=request.op, status=Status.TIMEOUT,
                           payload=str(exc).encode())
        except SMBError as exc:
            if isinstance(exc, QuotaExceededError):
                self.stats.registry.inc(
                    f"smb/tenant/{exc.tenant}/quota_denials"
                )
            return Message(op=request.op, status=Status.ERROR,
                           payload=to_wire(exc))

    def _track_accumulate_queue(self, delta: int) -> None:
        """Maintain the ``smb/server/queue/accumulate`` depth gauge."""
        with self._accumulate_pending_lock:
            self._accumulate_pending += delta
            depth = self._accumulate_pending
        self.stats.registry.set("smb/server/queue/accumulate", depth)

    def _dispatch(
        self,
        req: Message,
        out: Optional[memoryview] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Message:
        if req.op is Op.CREATE:
            name = bytes(req.payload).decode()
            with self._mutation_guard():
                segment = self.pool.create(name, req.count, tenant=tenant)
                # Journal the *qualified* name: replay must land the
                # segment back in its namespace, not in ``default``.
                # The otherwise-unused ``offset`` slot carries the byte
                # length of the ``"<tenant>/"`` prefix (0 = default), so
                # replay never parses a name — a legacy default-tenant
                # name like ``"job1/W_g"`` must not be misread as tenant
                # ``job1``'s ``W_g``.  Pre-tenancy records replay with
                # offset 0, i.e. into the default namespace, unchanged.
                prefix = (
                    0 if tenant == DEFAULT_TENANT
                    else len(tenant.encode()) + 1
                )
                self._journal(Message(op=Op.CREATE, key=segment.shm_key,
                                      count=req.count, offset=prefix,
                                      payload=segment.name.encode()))
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op, key=segment.shm_key)

        if req.op is Op.ATTACH:
            expected = req.count if req.count else None
            segment = self.pool.by_shm_key(req.key)
            access_key = self.pool.attach(req.key, expected)
            self.stats.record(req.op, tenant=tenant)
            # key2/count were unused in ATTACH responses; they now carry
            # the server epoch and segment version so re-attaching
            # clients can verify what survived a restart.
            return Message(op=req.op, key=access_key, key2=self.epoch,
                           count=segment.version)

        if req.op is Op.LOOKUP:
            segment = self.pool.by_name(bytes(req.payload).decode(), tenant)
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op, key=segment.shm_key,
                           count=segment.size)

        if req.op is Op.READ:
            segment = self.pool.by_access_key(req.key)
            data: "memoryview | bytes"
            if out is not None and req.count <= len(out):
                nbytes = segment.read_into(req.offset, out[:req.count])
                data = out[:nbytes]
            else:
                data = segment.read(req.offset, req.count)
            self.stats.record(req.op, len(data), tenant=tenant)
            return Message(op=req.op, key=req.key, count=segment.version,
                           payload=data)

        if req.op is Op.WRITE:
            segment = self.pool.by_access_key(req.key)
            with self._mutation_guard():
                version = segment.write(req.offset, req.payload)
                self._journal(Message(op=Op.WRITE, key=segment.shm_key,
                                      offset=req.offset,
                                      payload=req.payload))
            self.stats.record(req.op, len(req.payload), tenant=tenant)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.ACCUMULATE:
            dst = self.pool.by_access_key(req.key)
            src = self.pool.by_access_key(req.key2)
            # Optional payload: the element dtype name.  Absent (the
            # historical wire format) means float32.
            dtype = "float32"
            if req.payload_nbytes:
                dtype = bytes(req.payload).decode()
            try:
                itemsize = int(np.dtype(dtype).itemsize)
            except TypeError as exc:
                raise SMBError(
                    f"bad accumulate dtype {dtype!r}: {exc}"
                ) from exc
            # The SMB server "exclusively processes the cumulative update
            # requests of global weights from each worker" (paper T.A3).
            # Exclusivity is *per destination segment* — the lock taken
            # inside accumulate_from — so pushes into different segments
            # (per-worker deltas, striped W_g shards, other tenants) run
            # concurrently instead of queueing behind one global lock.
            self._track_accumulate_queue(+1)
            try:
                with self._mutation_guard():
                    version = dst.accumulate_from(
                        src,
                        dtype=dtype,
                        scale=req.scale,
                        offset=req.offset,
                        count=req.count or None,
                    )
                    self._journal(Message(op=Op.ACCUMULATE, key=dst.shm_key,
                                          key2=src.shm_key, offset=req.offset,
                                          count=req.count, scale=req.scale,
                                          payload=bytes(req.payload)))
            finally:
                self._track_accumulate_queue(-1)
            # Byte accounting is dtype-aware: ``count`` is in elements of
            # ``dtype`` (and ``src.size`` is already nbytes), so a float64
            # accumulate no longer under-counts by 2x in the Fig. 7
            # bandwidth numbers.
            nbytes = (req.count * itemsize) if req.count \
                else (src.size // itemsize) * itemsize
            self.stats.record(req.op, nbytes, tenant=tenant)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.FREE:
            with self._mutation_guard():
                self.pool.free(req.key, tenant)
                self._journal(Message(op=Op.FREE, key=req.key))
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op)

        if req.op is Op.WAIT_UPDATE:
            segment = self.pool.by_access_key(req.key)
            # scale > 0: bounded wait; scale == 0: wait forever (the
            # historical encoding); scale < 0: poll — one immediate
            # version check that never parks a handler thread.
            if req.scale < 0:
                version = segment.version
                if version <= req.count:
                    raise NotificationTimeout(req.key, req.count, 0.0)
                self.stats.record(req.op, tenant=tenant)
                return Message(op=req.op, key=req.key, count=version)
            timeout = req.scale if req.scale > 0 else None
            # Wait in bounded slices so close() can interrupt a handler
            # parked on a notification that will never come.
            deadline = _monotonic() + timeout if timeout is not None else None
            version = segment.version
            while version <= req.count:
                if self._closing.is_set():
                    raise ServerClosingError("server is shutting down")
                wait = 0.5
                if deadline is not None:
                    wait = min(wait, deadline - _monotonic())
                    if wait <= 0:
                        raise NotificationTimeout(
                            req.key, req.count, timeout or 0.0
                        )
                version = segment.wait_for_update(req.count, wait)
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.VERSION:
            segment = self.pool.by_access_key(req.key)
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op, key=req.key, count=segment.version)

        if req.op is Op.STATS:
            import json

            # Record *before* serialising so the returned counters see
            # this very request — keeps op_counts consistent with every
            # other opcode (they were silently uncounted before).
            self.stats.record(req.op)
            payload = json.dumps(self.stats.counters()).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.SNAPSHOT:
            seq = self.take_snapshot()
            self.stats.record(req.op)
            return Message(op=req.op, key=seq, key2=self.epoch)

        if req.op is Op.LIST:
            import json

            self.stats.record(req.op, tenant=tenant)
            # Scoped to the caller's namespace; names are reported
            # tenant-local (the names the tenant created them under).
            # Strip this tenant's own prefix rather than parsing — a
            # legacy default-tenant name may itself contain ``/``.
            prefix_len = (
                0 if tenant == DEFAULT_TENANT else len(tenant) + 1
            )
            inventory = [
                {
                    "name": segment.name[prefix_len:],
                    "nbytes": segment.size,
                    "version": segment.version,
                    "owner": segment.owner,
                }
                for segment in self.pool.segments(tenant).values()
            ]
            grant = self.pool.tenants().get(tenant)
            payload = json.dumps(
                {
                    "segments": sorted(
                        inventory, key=lambda item: item["name"]
                    ),
                    "capacity": self.pool.capacity,
                    "used": self.pool.used,
                    "tenant": tenant,
                    "quota": grant.quota if grant is not None else None,
                    "tenant_used": grant.used if grant is not None else 0,
                }
            ).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.TENANT_CREATE:
            name = bytes(req.payload).decode()
            quota = req.count if req.count > 0 else None
            try:
                with self._mutation_guard():
                    grant = self.pool.create_tenant(name, quota)
                    self._journal(Message(op=Op.TENANT_CREATE,
                                          count=req.count,
                                          payload=req.payload))
            except ValueError as exc:
                raise SMBProtocolError(str(exc)) from exc
            self.stats.record(req.op, tenant=tenant)
            return Message(op=req.op, count=grant.quota or 0)

        if req.op is Op.TENANT_STATS:
            import json

            self.stats.record(req.op, tenant=tenant)
            stats = self.pool.tenant_stats()
            for ns, entry in stats.items():
                entry["counters"] = self.stats.tenant_counters(ns)
            payload = json.dumps(stats).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.SHUTDOWN:
            return Message(op=req.op)

        raise SMBError(f"unhandled opcode: {req.op!r}")


#: Ops the event loop always hands to the blocking pool (snapshots hit
#: disk).  ``WAIT_UPDATE`` is deliberately *not* here: waits are served
#: event-style through :meth:`~repro.smb.memory.Segment.add_waiter`, so
#: a parked wait costs a dict entry, never a pool thread — a fleet of
#: waiters can therefore never exhaust the pool and starve the very
#: ACCUMULATE/WRITE that would wake them.
_ALWAYS_OFFLOAD = frozenset({Op.SNAPSHOT})

#: Transfer size (bytes) above which a data op leaves the loop thread.
#: Below it, the segment copy is cheaper than a pool handoff; above it,
#: running inline would stall every other connection for the copy's
#: duration.  ACCUMULATE always offloads regardless of size — it can
#: block on the destination segment's exclusivity.
OFFLOAD_BYTES = 64 * 1024


class _Connection:
    """Per-connection protocol state machine driven by the event loop.

    The machine cycles ``HELLO -> (HEADER -> [PAYLOAD] -> BUSY/WRITE)*``;
    while BUSY (request being processed, possibly on the worker pool) the
    socket is unregistered from the selector, which both enforces the
    protocol's strict request/response alternation and makes the pooled
    buffers safe to reuse: no new bytes can land in ``recv_buf`` until
    the response built from it (and from ``read_buf``) is fully flushed.
    """

    HELLO, HEADER, PAYLOAD, BUSY, WRITE = range(5)

    __slots__ = (
        "sock", "peer", "state", "have", "need", "hbuf",
        "recv_buf", "read_buf", "request", "out_views",
        "close_after_write", "dead", "tenant",
    )

    def __init__(self, sock: socket.socket, peer: object) -> None:
        self.sock = sock
        self.peer = peer
        self.state = _Connection.HELLO
        self.have = 0
        self.need = len(HELLO)
        self.hbuf = bytearray(
            max(HEADER_SIZE,
                len(HELLO) + TENANT_LEN_STRUCT.size + MAX_TENANT_NAME)
        )
        self.tenant = DEFAULT_TENANT
        # Pooled per-connection buffers: request payloads (WRITE data)
        # land in recv_buf, READ responses are built in read_buf.  Grown
        # on demand to the largest payload seen, so steady-state training
        # traffic allocates nothing payload-sized.
        self.recv_buf = bytearray(1 << 16)
        self.read_buf = bytearray(0)
        self.request: Optional[Message] = None
        self.out_views: List[memoryview] = []
        self.close_after_write = False
        self.dead = False


class _PendingWait:
    """Bookkeeping for one parked WAIT_UPDATE (see ``_begin_wait``)."""

    __slots__ = ("request", "segment", "waiter", "deadline", "timeout")

    def __init__(
        self,
        request: Message,
        segment: Segment,
        waiter: SegmentWaiter,
        deadline: Optional[float],
        timeout: Optional[float],
    ) -> None:
        self.request = request
        self.segment = segment
        self.waiter = waiter
        self.deadline = deadline
        self.timeout = timeout


class _TenantLanes:
    """Per-tenant deficit-round-robin queue in front of the worker pool.

    The *slow lane*: every offloaded request is enqueued under its
    connection's tenant, and lanes drain into the pool in DRR order.
    Each tenant earns :data:`QUANTUM` bytes of service credit per round
    and pays a request's transfer size per dispatch, so a tenant
    streaming 64 MiB ACCUMULATEs collects credit across ~64 rounds per
    dispatch while a tenant issuing 64 KiB reads dispatches every round:
    byte-fair, not op-fair ("RPC Considered Harmful" — bulk transfers
    must not queue ahead of another tenant's control traffic).

    A monopoly guard additionally holds any one tenant at
    ``max_inflight - 2`` pool threads *while another tenant has work
    queued*; a solo tenant still gets the whole pool, so single-job
    deployments behave exactly as before.

    Small control ops never come here — they run inline on the loop
    thread (the *fast lane*).  Queue depths are exported as
    ``smb/tenant/<ns>/queue_depth`` gauges.
    """

    QUANTUM = 1 << 20   # bytes of service credit per tenant per round
    MIN_COST = 1 << 10  # floor, so header-only ops still pay something

    def __init__(
        self,
        pool: ThreadPoolExecutor,
        max_inflight: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._pool = pool
        self._max_inflight = max(1, max_inflight)
        self._tenant_cap = max(1, self._max_inflight - 2)
        self._registry = registry
        self._lock = threading.Lock()
        self._queues: Dict[str, Deque[Tuple[int, Callable[[], None]]]] = {}
        self._deficits: Dict[str, int] = {}
        self._active: Deque[str] = deque()
        self._inflight = 0
        self._inflight_by: Dict[str, int] = {}
        self._closed = False

    def submit(
        self, tenant: str, cost: int, task: Callable[[], None]
    ) -> None:
        """Enqueue one offloaded request for ``tenant`` (any thread)."""
        cost = max(int(cost), self.MIN_COST)
        with self._lock:
            if self._closed:
                return
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue and tenant not in self._active:
                self._active.append(tenant)
                self._deficits.setdefault(tenant, 0)
            queue.append((cost, task))
            self._note_depth(tenant)
            self._pump_locked()

    def queue_depth(self, tenant: str) -> int:
        with self._lock:
            queue = self._queues.get(tenant)
            return len(queue) if queue else 0

    def _note_depth(self, tenant: str) -> None:
        if self._registry is not None:
            queue = self._queues.get(tenant)
            self._registry.set(
                f"smb/tenant/{tenant}/queue_depth",
                len(queue) if queue else 0,
            )

    def _capped_locked(self, tenant: str) -> bool:
        """Monopoly guard: at the cap *and* someone else is waiting."""
        if self._inflight_by.get(tenant, 0) < self._tenant_cap:
            return False
        return any(
            other != tenant and self._queues.get(other)
            for other in self._active
        )

    def _pick_locked(
        self,
    ) -> Optional[Tuple[str, Callable[[], None]]]:
        while self._active:
            tenant = self._active[0]
            queue = self._queues.get(tenant)
            if not queue:
                # Burst over: leave the round and surrender leftover
                # credit, so an idle tenant cannot hoard deficit.
                self._active.popleft()
                self._deficits[tenant] = 0
                continue
            if self._capped_locked(tenant):
                if not any(
                    self._queues.get(other)
                    and not self._capped_locked(other)
                    for other in self._active
                ):
                    return None  # everyone runnable is capped; wait
                self._active.rotate(-1)
                continue
            cost, task = queue[0]
            if self._deficits[tenant] >= cost:
                queue.popleft()
                self._deficits[tenant] -= cost
                self._note_depth(tenant)
                return tenant, task
            self._deficits[tenant] += self.QUANTUM
            self._active.rotate(-1)
        return None

    def _pump_locked(self) -> None:
        while self._inflight < self._max_inflight:
            picked = self._pick_locked()
            if picked is None:
                return
            tenant, task = picked
            self._inflight += 1
            self._inflight_by[tenant] = self._inflight_by.get(tenant, 0) + 1
            try:
                self._pool.submit(self._run, tenant, task)
            except RuntimeError:
                # Pool shut down mid-stop: drop the queues; teardown
                # severs every connection they would have answered.
                self._closed = True
                self._inflight -= 1
                self._inflight_by[tenant] -= 1
                self._queues.clear()
                self._active.clear()
                return

    def _run(self, tenant: str, task: Callable[[], None]) -> None:
        try:
            task()
        finally:
            with self._lock:
                self._inflight -= 1
                self._inflight_by[tenant] = max(
                    0, self._inflight_by.get(tenant, 1) - 1
                )
                self._pump_locked()


class TcpSMBServer:
    """Selector-based event-loop TCP front-end for an :class:`SMBServer`.

    Usage::

        with TcpSMBServer(capacity=1 << 28) as server:
            client = SMBClient.connect(server.address)
            ...

    One loop thread owns every socket: connections are non-blocking and
    advance a :class:`_Connection` state machine as bytes arrive, so a
    connected-but-idle client costs a few kilobytes of buffer instead of
    a parked thread — hundreds of clients, a handful of threads.

    Two kinds of work leave the loop thread:

    * ops that can block (``SNAPSHOT`` hits disk, ``ACCUMULATE`` may
      queue on the destination segment's exclusivity, and — with a
      journal configured — every mutation, since the journal lock can be
      held across a whole accumulate plus snapshot), and
    * bulk data ops moving more than :data:`OFFLOAD_BYTES`

    are executed on a small shared worker pool; the completion is posted
    back to the loop through a wakeup pipe and the response written
    non-blockingly.  Small control ops (attach, version, a control-block
    read) are served inline — no handoff latency on the fast path.

    ``WAIT_UPDATE`` takes neither path: a wait registers an event-style
    waiter on the segment (:meth:`~repro.smb.memory.Segment.add_waiter`)
    and the loop moves on — a parked wait costs a dict entry, not a pool
    thread, so any number of waiters leaves the pool free for the
    mutation that will wake them.  Timeouts are expired by the loop
    (the ``select`` timeout tracks the nearest wait deadline).

    Lifecycle: :meth:`stop` severs *every* connection (idle ones
    included), wakes parked waits, drains the worker pool and joins the
    loop thread — it returns with zero live handler threads.  A client
    ``SHUTDOWN`` behaves the same after its response is flushed, so one
    client stopping the server never leaves its peers blocked in
    ``recv``.  :meth:`kill` is the abrupt variant for chaos drills.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = DEFAULT_POOL_CAPACITY,
        core: Optional[SMBServer] = None,
        telemetry: Optional[TelemetrySession] = None,
        journal_dir: Optional[Union[str, os.PathLike]] = None,
        snapshot_interval: float = 30.0,
        journal_ops: bool = True,
        workers: Optional[int] = None,
    ) -> None:
        self.core = core if core is not None else SMBServer(
            capacity,
            telemetry=telemetry,
            journal_dir=journal_dir,
            snapshot_interval=snapshot_interval,
            journal_ops=journal_ops,
        )
        self._journal_dir = journal_dir
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(512)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._clean_stop = True
        self._loop_thread: Optional[threading.Thread] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._conns: Dict[socket.socket, _Connection] = {}
        # Blocking-op pool.  Waits are cheap (they sleep), data ops are
        # few; size generously enough that a fleet of waiters does not
        # starve a bulk accumulate behind them.
        if workers is None:
            workers = max(8, min(32, (os.cpu_count() or 4) * 2))
        # Pool threads run at background CPU priority: they carry only
        # bulk transfers and parked waits, while the loop thread serves
        # every latency-bound control op inline — so on a saturated host
        # the scheduler keeps small ops fast instead of queueing them
        # behind whole-model accumulates.
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="smb-worker",
            initializer=enter_bulk_priority,
        )
        # Slow lane: offloaded (bulk / blocking) work drains through a
        # per-tenant deficit-round-robin queue, so no tenant's burst can
        # monopolize the pool threads while others have work queued.
        self._lanes = _TenantLanes(
            self._pool, workers, self.core.stats.registry
        )
        # Completions posted by pool tasks; the loop drains after a
        # wakeup byte.  (conn, request, response) — response None means
        # the handler crashed and the connection must be closed.
        self._completions: Deque[
            Tuple[_Connection, Message, Optional[Message]]
        ] = deque()
        # Parked WAIT_UPDATEs, keyed by connection.  Registered and
        # expired on the loop thread; completed (claim-arbitrated) from
        # whichever mutator thread bumps the segment version.
        self._waiters: Dict[_Connection, _PendingWait] = {}
        self._waiters_lock = threading.Lock()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TcpSMBServer":
        """Begin serving on the event-loop thread.

        With a journal directory configured, the rendezvous file is
        (re)published first: a restarted server usually lands on a new
        ephemeral port, and clients in their grace window re-resolve the
        address through this file.
        """
        if self._journal_dir is not None:
            write_rendezvous(
                os.path.join(os.fspath(self._journal_dir), RENDEZVOUS_NAME),
                self.address,
                epoch=self.core.epoch,
            )
        self._loop_thread = threading.Thread(
            target=self._loop_main, name="smb-loop", daemon=True
        )
        self._loop_thread.start()
        return self

    def _wake_loop(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (OSError, ValueError):
            pass  # loop already tearing down; it will notice the flag

    def stop(self) -> None:
        """Stop serving; returns with **zero** live handler threads.

        Every connection — including idle ones whose peers are parked in
        ``recv`` — is severed, waits are woken through
        :meth:`SMBServer.close`, the worker pool is drained and the loop
        thread joined.  (The threaded predecessor closed only the
        listener, leaving handler threads pinned until process exit.)
        """
        self._clean_stop = True
        self._stop.set()
        self._wake_loop()
        if self._loop_thread is not None and self._loop_thread.is_alive():
            self._loop_thread.join(timeout=10.0)
        else:
            # Never started (or already gone): release resources inline.
            self._teardown(clean=True)
        self._pool.shutdown(wait=True)

    def kill(self) -> None:
        """Die abruptly: sever every connection, skip the clean-shutdown
        snapshot.  Chaos drills use this to emulate ``kill -9`` on an
        in-process server — recovery must come from the journal
        directory, exactly as it would after a real process death.
        """
        self._clean_stop = False
        self._stop.set()
        self._wake_loop()
        if self._loop_thread is not None and self._loop_thread.is_alive():
            self._loop_thread.join(timeout=10.0)
        else:
            self._teardown(clean=False)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "TcpSMBServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- event loop ------------------------------------------------------

    def _loop_main(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        try:
            while not self._stop.is_set():
                timeout = None
                deadline = self._next_wait_deadline()
                if deadline is not None:
                    timeout = max(0.0, deadline - _monotonic())
                events = self._selector.select(timeout)
                self._expire_waits()
                for key, _mask in events:
                    if key.data is None:
                        self._accept_ready()
                    elif key.data == "wake":
                        self._drain_wakeups()
                    else:
                        self._service(key.data, _mask)
                    if self._stop.is_set():
                        break
        except Exception:  # noqa: BLE001 - the loop must not die silently
            logger.exception("SMB event loop crashed")
        finally:
            self._teardown(clean=self._clean_stop)

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed mid-stop
            try:
                sock.setblocking(False)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                sock.close()
                continue
            conn = _Connection(sock, peer)
            self._conns[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            return
        while self._completions:
            conn, request, response = self._completions.popleft()
            if conn.dead:
                continue
            if response is None:
                self._close_conn(conn)
                continue
            self._start_write(conn, request, response)

    def _service(self, conn: _Connection, mask: int) -> None:
        if conn.dead:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(conn)
        if conn.dead or conn.state == _Connection.WRITE:
            return
        if mask & selectors.EVENT_READ:
            self._readable(conn)

    def _readable(self, conn: _Connection) -> None:
        """Advance the read side of the state machine as far as the
        kernel allows without blocking."""
        while not conn.dead:
            if conn.state == _Connection.HELLO:
                target = memoryview(conn.hbuf)[conn.have:conn.need]
            elif conn.state == _Connection.HEADER:
                target = memoryview(conn.hbuf)[conn.have:conn.need]
            elif conn.state == _Connection.PAYLOAD:
                target = memoryview(conn.recv_buf)[conn.have:conn.need]
            else:  # BUSY/WRITE: spurious readiness, e.g. pipelined bytes
                return
            try:
                received = conn.sock.recv_into(target)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_conn(conn)
                return
            if received == 0:
                self._close_conn(conn)  # peer went away; normal teardown
                return
            conn.have += received
            if conn.have < conn.need:
                continue
            if conn.state == _Connection.HELLO:
                if not self._advance_hello(conn):
                    return
            elif conn.state == _Connection.HEADER:
                paylen = struct.unpack(
                    HEADER_FORMAT, conn.hbuf[:HEADER_SIZE]
                )[-1]
                if paylen == 0:
                    self._begin_request(conn, b"")
                    return
                if paylen > len(conn.recv_buf):
                    conn.recv_buf = bytearray(paylen)
                conn.state = _Connection.PAYLOAD
                conn.have, conn.need = 0, paylen
            else:  # PAYLOAD complete
                payload = memoryview(conn.recv_buf)[:conn.need]
                self._begin_request(conn, payload)
                return

    def _advance_hello(self, conn: _Connection) -> bool:
        """Advance the handshake state machine one completed read.

        A bare ``SMB1`` magic lands the connection in the ``default``
        tenant (every pre-tenancy client); ``SMB2`` extends the
        handshake by a u16 length and that many UTF-8 tenant-name bytes,
        parsed incrementally by growing ``conn.need``.  Returns ``False``
        once the connection was rejected (and closed).
        """
        prefix = len(HELLO) + TENANT_LEN_STRUCT.size
        if conn.need == len(HELLO):
            magic = bytes(conn.hbuf[:len(HELLO)])
            if magic == HELLO:
                conn.state = _Connection.HEADER
                conn.have, conn.need = 0, HEADER_SIZE
                return True
            if magic == HELLO_TENANT:
                conn.need = prefix
                return True
        elif conn.need == prefix:
            (length,) = TENANT_LEN_STRUCT.unpack(
                conn.hbuf[len(HELLO):prefix]
            )
            if 0 < length <= MAX_TENANT_NAME:
                conn.need = prefix + length
                return True
        else:
            try:
                conn.tenant = decode_tenant_record(
                    bytes(conn.hbuf[prefix:conn.need])
                )
            except SMBProtocolError:
                pass  # falls through to the rejection below
            else:
                conn.state = _Connection.HEADER
                conn.have, conn.need = 0, HEADER_SIZE
                return True
        logger.warning("rejecting non-SMB client from %s", conn.peer)
        self._close_conn(conn)
        return False

    def _begin_request(self, conn: _Connection, payload: "bytes | memoryview") -> None:
        try:
            request = Message.decode(bytes(conn.hbuf[:HEADER_SIZE]), payload)
        except SMBError:
            logger.warning(
                "malformed frame from %s; dropping connection", conn.peer
            )
            self._close_conn(conn)
            return
        out: Optional[memoryview] = None
        if request.op is Op.READ and request.count > 0:
            if request.count > len(conn.read_buf):
                conn.read_buf = bytearray(request.count)
            out = memoryview(conn.read_buf)
        conn.request = request
        # While the request is in flight the socket leaves the selector:
        # strict request/response means the peer has nothing to send, and
        # the pooled buffers must not be overwritten mid-dispatch.
        conn.state = _Connection.BUSY
        self._selector.unregister(conn.sock)
        if request.op is Op.WAIT_UPDATE:
            self._begin_wait(conn, request)
        elif self._needs_offload(request):
            self._lanes.submit(
                conn.tenant,
                self._request_cost(request),
                lambda: self._process(conn, request, out),
            )
        else:
            self._handle_inline(conn, request, out)

    @staticmethod
    def _request_cost(request: Message) -> int:
        """Approximate transfer bytes a request moves (DRR accounting)."""
        op = request.op
        if op in (Op.READ, Op.CREATE):
            return request.count
        if op is Op.WRITE:
            return request.payload_nbytes
        if op is Op.ACCUMULATE:
            # ``count`` is in elements; float32 is the wire default and
            # close enough for fairness accounting.  count == 0 means
            # "whole source segment" — charge a full quantum.
            return request.count * 4 if request.count \
                else _TenantLanes.QUANTUM
        if op is Op.SNAPSHOT:
            return _TenantLanes.QUANTUM
        return _TenantLanes.MIN_COST

    def _needs_offload(self, request: Message) -> bool:
        op = request.op
        if op in _ALWAYS_OFFLOAD or op is Op.ACCUMULATE:
            return True
        if self.core.journaled and op in (Op.WRITE, Op.CREATE, Op.FREE):
            # Every mutation serialises on the journal lock, which an
            # offloaded ACCUMULATE may hold across a full accumulate plus
            # a snapshot write; queueing on it would stall the loop (and
            # with it every connection), so mutations never run inline
            # when durability is on.
            return True
        if op is Op.READ:
            return request.count >= OFFLOAD_BYTES
        if op is Op.WRITE:
            return request.payload_nbytes >= OFFLOAD_BYTES
        if op is Op.CREATE:
            return request.count >= OFFLOAD_BYTES  # zeroing a big segment
        return False

    def _handle_inline(
        self, conn: _Connection, request: Message, out: Optional[memoryview]
    ) -> None:
        """Serve a request on the loop thread, with the same crash guard
        as the pool path: an unexpected exception from one frame — a
        non-UTF-8 name payload, a bad dtype string — costs that one
        connection, never the event loop."""
        try:
            response = self.core.handle(request, out, tenant=conn.tenant)
        except Exception:  # noqa: BLE001 - keep the server alive
            logger.exception("SMB handler crashed for peer %s", conn.peer)
            self._close_conn(conn)
            return
        self._start_write(conn, request, response)

    def _process(
        self, conn: _Connection, request: Message, out: Optional[memoryview]
    ) -> None:
        """Worker-pool body: run one request, post the completion."""
        try:
            response: Optional[Message] = self.core.handle(
                request, out, tenant=conn.tenant
            )
        except Exception:  # noqa: BLE001 - keep the server alive
            logger.exception("SMB handler crashed for peer %s", conn.peer)
            response = None
        self._completions.append((conn, request, response))
        self._wake_loop()

    # -- WAIT_UPDATE, event-style ---------------------------------------

    def _begin_wait(self, conn: _Connection, request: Message) -> None:
        """Park a WAIT_UPDATE without occupying any thread.

        A waiter callback is registered on the segment; when a mutation
        advances the version past the threshold, the callback re-submits
        the request to the pool, where ``handle`` now returns without
        blocking (the version check is first).  Until then the wait is
        one ``_waiters`` entry — hundreds of parked waiters leave the
        worker pool entirely free for the ops that wake them.

        A poll (``scale < 0``) never parks: the core answers it inline
        (version check first, ``TIMEOUT`` otherwise), so a ``0.0`` poll
        returns promptly instead of becoming an immortal waiter whose
        ``deadline=None`` expiry would never fire.
        """
        if request.scale < 0:
            self._handle_inline(conn, request, None)
            return
        try:
            if self.core._closing.is_set():
                raise ServerClosingError("server is shutting down")
            segment = self.core.pool.by_access_key(request.key)
        except SMBError as exc:
            self._start_write(conn, request, Message(
                op=request.op, status=Status.ERROR, payload=to_wire(exc)
            ))
            return
        timeout = request.scale if request.scale > 0 else None
        deadline = _monotonic() + timeout if timeout is not None else None

        def _on_update(_version: int) -> None:
            # Runs on whichever thread bumped the version; the lane hop
            # keeps response encoding/stats off the mutator's hot path
            # (and a woken wait queues fairly behind its tenant's bulk).
            with self._waiters_lock:
                self._waiters.pop(conn, None)
            self._lanes.submit(
                conn.tenant,
                _TenantLanes.MIN_COST,
                lambda: self._process(conn, request, None),
            )

        waiter = segment.add_waiter(request.count, _on_update)
        if waiter is None:  # already satisfied — answer inline, no block
            self._handle_inline(conn, request, None)
            return
        pending = _PendingWait(request, segment, waiter, deadline, timeout)
        with self._waiters_lock:
            self._waiters[conn] = pending
        # close() may have raced the registration: its condition broadcast
        # fires no callbacks, so finish the wait here or it parks forever.
        if self.core._closing.is_set() and waiter.claim():
            with self._waiters_lock:
                self._waiters.pop(conn, None)
            segment.remove_waiter(waiter)
            self._start_write(conn, request, Message(
                op=request.op, status=Status.ERROR,
                payload=to_wire(ServerClosingError("server is shutting down")),
            ))

    def _next_wait_deadline(self) -> Optional[float]:
        with self._waiters_lock:
            deadlines = [
                p.deadline for p in self._waiters.values()
                if p.deadline is not None
            ]
        return min(deadlines) if deadlines else None

    def _expire_waits(self) -> None:
        """Time out parked waits whose deadline has passed (loop thread)."""
        if not self._waiters:
            return
        now = _monotonic()
        expired: List[Tuple[_Connection, _PendingWait]] = []
        with self._waiters_lock:
            for conn, pending in list(self._waiters.items()):
                if pending.deadline is None or now < pending.deadline:
                    continue
                if pending.waiter.claim():
                    del self._waiters[conn]
                    expired.append((conn, pending))
                # claim lost: a mutator is finishing this wait right now
                # and pops the entry itself.
        for conn, pending in expired:
            pending.segment.remove_waiter(pending.waiter)
            exc = NotificationTimeout(
                pending.request.key, pending.request.count,
                pending.timeout or 0.0,
            )
            tel = self.core._telemetry
            if tel is None:
                tel = _telemetry_current()
            if tel.enabled:
                tel.registry.inc("smb/server/errors/TIMEOUT")
            self._start_write(conn, pending.request, Message(
                op=pending.request.op, status=Status.TIMEOUT,
                payload=str(exc).encode(),
            ))

    def _cancel_wait(self, conn: _Connection) -> None:
        with self._waiters_lock:
            pending = self._waiters.pop(conn, None)
        if pending is not None and pending.waiter.claim():
            pending.segment.remove_waiter(pending.waiter)

    def _start_write(
        self, conn: _Connection, request: Message, response: Message
    ) -> None:
        header = response.encode_header()
        view = response.payload_view()
        conn.out_views = [memoryview(header)]
        if view.nbytes:
            conn.out_views.append(view)
        conn.close_after_write = request.op is Op.SHUTDOWN
        conn.state = _Connection.WRITE
        self._selector.register(conn.sock, selectors.EVENT_WRITE, conn)
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.out_views:
            try:
                sent = conn.sock.sendmsg(conn.out_views)
            except (BlockingIOError, InterruptedError):
                return  # selector will call back when writable
            except OSError:
                self._close_conn(conn)
                return
            while sent:
                first = conn.out_views[0]
                if sent >= first.nbytes:
                    sent -= first.nbytes
                    conn.out_views.pop(0)
                else:
                    conn.out_views[0] = first[sent:]
                    sent = 0
        # Response fully flushed.
        if conn.close_after_write:
            self._close_conn(conn)
            # A client-initiated SHUTDOWN stops the whole server — and
            # unlike the threaded predecessor it also severs every *other*
            # connection, so no peer stays parked in recv until process
            # exit.  Teardown happens in _loop_main's finally.
            self._stop.set()
            return
        conn.request = None
        conn.state = _Connection.HEADER
        conn.have, conn.need = 0, HEADER_SIZE
        self._selector.modify(conn.sock, selectors.EVENT_READ, conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.dead:
            return
        conn.dead = True
        self._cancel_wait(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._conns.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass

    def _teardown(self, clean: bool) -> None:
        """Release every socket and wake every parked wait (loop thread,
        or the caller's thread if the loop never ran)."""
        try:
            self._listener.close()
        except OSError:
            pass
        if clean:
            # Final snapshot + refuse/wake waits.
            self.core.close()
        else:
            # kill(): wake waits and release the journal file handle
            # (mimicking the OS reclaiming it on death) WITHOUT the final
            # snapshot that core.close() would write.
            self.core._closing.set()
            if self.core._store is not None:
                self.core._store.close()

            def _wake(segment) -> None:
                with segment.lock:
                    segment.updated.notify_all()

            self.core.pool.for_each(_wake)
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        self._conns.clear()
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
            self._selector = None
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
