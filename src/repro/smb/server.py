"""The Soft Memory Box server.

Two layers live here:

* :class:`SMBServer` — the transport-agnostic request processor.  It owns a
  :class:`~repro.smb.memory.MemoryPool` and maps each protocol
  :class:`~repro.smb.protocol.Op` onto pool/segment operations.  Cumulative
  global-weight updates are processed **exclusively** per destination
  segment, exactly as the paper requires for eq. (7).
* :class:`TcpSMBServer` — a threaded TCP front-end.  Each connected worker
  gets a handler thread; this mirrors the paper's single memory server
  multiplexing many Infiniband queue pairs.

The server also keeps :class:`ServerStats` (bytes moved, op counts) which the
Fig. 7 bandwidth benchmark reads.
"""

from __future__ import annotations

import contextlib
import logging
import os
import socket
import threading
from time import perf_counter as _perf_counter
from typing import Dict, Optional, Tuple, Union

from time import monotonic as _monotonic

from ..telemetry import MetricsRegistry, TelemetrySession
from ..telemetry import current as _telemetry_current
from .errors import (
    NotificationTimeout,
    ServerClosingError,
    SMBConnectionError,
    SMBError,
    to_wire,
)
from .journal import (
    RENDEZVOUS_NAME,
    DurabilityStore,
    PoolImage,
    SegmentImage,
    write_rendezvous,
)
from .memory import DEFAULT_POOL_CAPACITY, MemoryPool
from .protocol import (
    HELLO,
    Message,
    Op,
    Status,
    recv_exact,
    recv_message,
    send_message,
)

logger = logging.getLogger(__name__)

#: Trace-lane pid for the SMB server (workers occupy their rank).
SMB_SERVER_TRACE_PID = 9999


class ServerStats:
    """Counters the server maintains for bandwidth/benchmark reporting.

    Backed by a :class:`~repro.telemetry.MetricsRegistry` — its own
    private one by default, or a shared session registry so a
    telemetry-enabled run folds the server counters into its snapshot.
    Byte totals and per-op counts live in *separate namespaces*
    (``bytes_read`` vs ``ops/READ``), so an opcode can never shadow the
    byte counters the Fig. 7 benchmark reads (the key-collision hazard
    of the old flat-dict implementation).
    """

    _RESERVED = ("bytes_read", "bytes_written")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def record(self, op: Op, nbytes: int = 0) -> None:
        """Account one operation of ``op`` moving ``nbytes`` payload bytes."""
        self.registry.inc(f"smb/server/ops/{op.name}")
        if op is Op.READ:
            self.registry.inc("smb/server/bytes_read", nbytes)
        elif op in (Op.WRITE, Op.ACCUMULATE):
            self.registry.inc("smb/server/bytes_written", nbytes)

    @property
    def bytes_read(self) -> int:
        """Total payload bytes served by READ operations."""
        return self.registry.counter("smb/server/bytes_read").value

    @property
    def bytes_written(self) -> int:
        """Total payload bytes absorbed by WRITE/ACCUMULATE operations."""
        return self.registry.counter("smb/server/bytes_written").value

    @property
    def op_counts(self) -> Dict[str, int]:
        """Per-opcode operation counts."""
        prefix = "smb/server/ops/"
        return {
            name[len(prefix):]: self.registry.counter(name).value
            for name in self.registry.names()
            if name.startswith(prefix)
        }

    def counters(self) -> Dict[str, int]:
        """Return a plain-dict copy safe to serialise.

        Shape is unchanged from the original dataclass implementation
        (``bytes_read``/``bytes_written`` plus one key per opcode), which
        the Fig. 7 benchmark and ``SMBClient.stats()`` rely on.  An op
        name that would collide with a reserved key is emitted under an
        ``op/`` prefix instead of silently overwriting it.
        """
        data = {"bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}
        for name, count in self.op_counts.items():
            key = name if name not in self._RESERVED else f"op/{name}"
            data[key] = count
        return data


class SMBServer:
    """Transport-agnostic SMB request processor.

    One instance may be driven directly by in-process clients (see
    :class:`~repro.smb.transport.InProcTransport`) and simultaneously by a
    :class:`TcpSMBServer` front-end; the pool and its locks make both safe.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_POOL_CAPACITY,
        telemetry: Optional[TelemetrySession] = None,
        journal_dir: Optional[Union[str, os.PathLike]] = None,
        snapshot_interval: float = 30.0,
        journal_ops: bool = True,
    ) -> None:
        self.pool = MemoryPool(capacity)
        self._telemetry = telemetry
        tel = telemetry if telemetry is not None else _telemetry_current()
        # Fold server counters into the session registry when one is
        # recording, so `telemetry report` sees them; otherwise the
        # stats keep their own private registry (always-on counting —
        # the Fig. 7 benchmark reads them regardless of telemetry mode).
        self.stats = ServerStats(tel.registry if tel.enabled else None)
        self._accumulate_lock = threading.Lock()
        # Requests waiting on (or holding) the accumulate lock; exported
        # as the ``smb/server/queue/accumulate`` gauge — the autoscale
        # controller's direct read on the serialised-T.A3 bottleneck.
        self._accumulate_pending = 0
        self._accumulate_pending_lock = threading.Lock()
        self._closing = threading.Event()
        # -- durability (off unless a journal directory is given) --------
        #: Restart counter: 0 for a fresh pool, +1 per recovery.  Carried
        #: in ATTACH responses so clients can observe server restarts.
        self.epoch = 0
        self._store: Optional[DurabilityStore] = None
        self._snapshot_interval = snapshot_interval
        self._last_snapshot = _monotonic()
        self._journal_lock = threading.Lock()
        if journal_dir is not None:
            self._store = DurabilityStore(journal_dir, journal_ops=journal_ops)
            if self._store.has_state():
                self._recover()
            else:
                # Seed the directory so a crash before the first interval
                # still leaves a recoverable (empty) generation behind.
                self._write_snapshot_locked()

    def _recover(self) -> None:
        """Rehydrate pool, key table, versions and epoch from disk."""
        assert self._store is not None
        image = self._store.recover()
        for seg in image.segments:
            self.pool.restore_segment(
                name=seg.name,
                shm_key=seg.shm_key,
                data=seg.data,
                version=seg.version,
                owner=seg.owner,
            )
        self.pool.advance_keys(image.shm_minted, image.access_minted)
        self.epoch = image.epoch + 1
        # Attaches are not journaled, so ``access_minted`` undershoots
        # whatever the dead life handed out after its last snapshot;
        # epoch-salting the sequence makes collisions impossible instead
        # of merely unlikely.
        self.pool.reseed_access_keys(self.epoch)
        self.stats.registry.inc("smb/recovery/recoveries")
        self.stats.registry.inc(
            "smb/recovery/restored_segments", len(image.segments)
        )
        logger.info(
            "recovered %d segment(s) from %s (epoch %d)",
            len(image.segments), self._store.directory, self.epoch,
        )
        # The recovered image plus any replayed journal becomes the new
        # baseline snapshot, so the next crash recovers from one file.
        self._write_snapshot_locked()

    def _pool_image(self) -> PoolImage:
        segments = [
            SegmentImage(
                name=segment.name,
                shm_key=segment.shm_key,
                data=segment.buffer.copy(),
                version=segment.version,
                owner=segment.owner,
            )
            for segment in self.pool.segments().values()
        ]
        return PoolImage(
            capacity=self.pool.capacity,
            epoch=self.epoch,
            seq=0,  # assigned by the store
            shm_minted=self.pool.shm_minted,
            access_minted=self.pool.access_minted,
            segments=segments,
        )

    def _write_snapshot_locked(self) -> int:
        """Write a snapshot; caller holds (or doesn't need) the journal
        lock — this is the unsynchronised core."""
        assert self._store is not None
        seq = self._store.write_snapshot(self._pool_image())
        self._last_snapshot = _monotonic()
        self.stats.registry.inc("smb/recovery/snapshots")
        return seq

    def take_snapshot(self) -> int:
        """Force a durable snapshot now; returns its sequence number."""
        if self._store is None:
            raise SMBError("server has no journal directory configured")
        with self._journal_lock:
            return self._write_snapshot_locked()

    def _mutation_guard(self) -> contextlib.AbstractContextManager:
        """Lock held across {mutate + journal-append} so the journal's
        record order always matches the pool's effect order.  A no-op
        when durability is off — the hot path stays lock-free."""
        if self._store is None:
            return contextlib.nullcontext()
        return self._journal_lock

    def _journal(self, record: Message) -> None:
        """Append one mutation record; caller holds the journal lock."""
        if self._store is None:
            return
        self._store.append(record)
        if _monotonic() - self._last_snapshot >= self._snapshot_interval:
            self._write_snapshot_locked()

    def close(self) -> None:
        """Refuse new waits and wake every blocked WAIT_UPDATE handler.

        Long notification waits are the only place a handler thread can
        park indefinitely; on shutdown they must unwind rather than pin
        threads (and, for TCP, connections) forever.

        With durability on, a final snapshot is written so a *clean*
        shutdown always restarts bit-exactly regardless of journal mode.
        """
        self._closing.set()
        if self._store is not None:
            try:
                with self._journal_lock:
                    self._write_snapshot_locked()
            except OSError:
                logger.exception("final snapshot failed during close")
            self._store.close()
        def _wake(segment) -> None:
            with segment.lock:
                segment.updated.notify_all()
        self.pool.for_each(_wake)

    def handle(
        self, request: Message, out: Optional[memoryview] = None
    ) -> Message:
        """Process one request and return the response message.

        Protocol errors never escape: every :class:`SMBError` is converted
        into an ``ERROR`` response carrying the message text so remote
        clients can re-raise a faithful exception.  With telemetry
        recording, every request is timed into a per-opcode histogram
        and (in trace mode) emitted on the server's trace lane.

        ``out`` is the in-process zero-copy seam: a READ whose result fits
        is copied *once*, segment to caller buffer, under the segment
        lock — the function-call analogue of a one-sided RDMA Read — and
        the response payload is a view of ``out``.
        """
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if not tel.enabled:
            return self._handle(request, out)
        trace = tel.trace
        if trace is not None:
            trace.name_process(SMB_SERVER_TRACE_PID, "smb-server")
        ts_us = trace.now_us() if trace is not None else 0.0
        start = _perf_counter()
        response = self._handle(request, out)
        elapsed = _perf_counter() - start
        tel.registry.observe(
            f"smb/server/time/{request.op.name}", elapsed
        )
        if response.status is not Status.OK:
            tel.registry.inc(
                f"smb/server/errors/{response.status.name}"
            )
        if trace is not None:
            # One tid per handler thread so concurrent requests render
            # as parallel tracks instead of overlapping on one line.
            trace.complete(
                name=request.op.name, pid=SMB_SERVER_TRACE_PID,
                tid=threading.get_ident() & 0xFFFF,
                ts_us=ts_us, dur_us=elapsed * 1e6, cat="smb",
            )
        return response

    def _handle(
        self, request: Message, out: Optional[memoryview] = None
    ) -> Message:
        try:
            return self._dispatch(request, out)
        except NotificationTimeout as exc:
            return Message(op=request.op, status=Status.TIMEOUT,
                           payload=str(exc).encode())
        except SMBError as exc:
            return Message(op=request.op, status=Status.ERROR,
                           payload=to_wire(exc))

    def _track_accumulate_queue(self, delta: int) -> None:
        """Maintain the ``smb/server/queue/accumulate`` depth gauge."""
        with self._accumulate_pending_lock:
            self._accumulate_pending += delta
            depth = self._accumulate_pending
        self.stats.registry.set("smb/server/queue/accumulate", depth)

    def _dispatch(
        self, req: Message, out: Optional[memoryview] = None
    ) -> Message:
        if req.op is Op.CREATE:
            name = bytes(req.payload).decode()
            with self._mutation_guard():
                segment = self.pool.create(name, req.count)
                self._journal(Message(op=Op.CREATE, key=segment.shm_key,
                                      count=req.count, payload=req.payload))
            self.stats.record(req.op)
            return Message(op=req.op, key=segment.shm_key)

        if req.op is Op.ATTACH:
            expected = req.count if req.count else None
            segment = self.pool.by_shm_key(req.key)
            access_key = self.pool.attach(req.key, expected)
            self.stats.record(req.op)
            # key2/count were unused in ATTACH responses; they now carry
            # the server epoch and segment version so re-attaching
            # clients can verify what survived a restart.
            return Message(op=req.op, key=access_key, key2=self.epoch,
                           count=segment.version)

        if req.op is Op.LOOKUP:
            segment = self.pool.by_name(bytes(req.payload).decode())
            self.stats.record(req.op)
            return Message(op=req.op, key=segment.shm_key,
                           count=segment.size)

        if req.op is Op.READ:
            segment = self.pool.by_access_key(req.key)
            data: "memoryview | bytes"
            if out is not None and req.count <= len(out):
                nbytes = segment.read_into(req.offset, out[:req.count])
                data = out[:nbytes]
            else:
                data = segment.read(req.offset, req.count)
            self.stats.record(req.op, len(data))
            return Message(op=req.op, key=req.key, count=segment.version,
                           payload=data)

        if req.op is Op.WRITE:
            segment = self.pool.by_access_key(req.key)
            with self._mutation_guard():
                version = segment.write(req.offset, req.payload)
                self._journal(Message(op=Op.WRITE, key=segment.shm_key,
                                      offset=req.offset,
                                      payload=req.payload))
            self.stats.record(req.op, len(req.payload))
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.ACCUMULATE:
            dst = self.pool.by_access_key(req.key)
            src = self.pool.by_access_key(req.key2)
            # The SMB server "exclusively processes the cumulative update
            # requests of global weights from each worker" (paper T.A3):
            # serialise all accumulates through one lock, on top of the
            # per-segment locks taken inside accumulate_from.
            self._track_accumulate_queue(+1)
            try:
                with self._mutation_guard(), self._accumulate_lock:
                    version = dst.accumulate_from(
                        src,
                        scale=req.scale,
                        offset=req.offset,
                        count=req.count or None,
                    )
                    self._journal(Message(op=Op.ACCUMULATE, key=dst.shm_key,
                                          key2=src.shm_key, offset=req.offset,
                                          count=req.count, scale=req.scale))
            finally:
                self._track_accumulate_queue(-1)
            self.stats.record(req.op, (req.count or src.size // 4) * 4)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.FREE:
            with self._mutation_guard():
                self.pool.free(req.key)
                self._journal(Message(op=Op.FREE, key=req.key))
            self.stats.record(req.op)
            return Message(op=req.op)

        if req.op is Op.WAIT_UPDATE:
            segment = self.pool.by_access_key(req.key)
            timeout = req.scale if req.scale > 0 else None
            # Wait in bounded slices so close() can interrupt a handler
            # parked on a notification that will never come.
            deadline = _monotonic() + timeout if timeout is not None else None
            version = segment.version
            while version <= req.count:
                if self._closing.is_set():
                    raise ServerClosingError("server is shutting down")
                wait = 0.5
                if deadline is not None:
                    wait = min(wait, deadline - _monotonic())
                    if wait <= 0:
                        raise NotificationTimeout(
                            req.key, req.count, timeout or 0.0
                        )
                version = segment.wait_for_update(req.count, wait)
            self.stats.record(req.op)
            return Message(op=req.op, key=req.key, count=version)

        if req.op is Op.VERSION:
            segment = self.pool.by_access_key(req.key)
            self.stats.record(req.op)
            return Message(op=req.op, key=req.key, count=segment.version)

        if req.op is Op.STATS:
            import json

            payload = json.dumps(self.stats.counters()).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.SNAPSHOT:
            seq = self.take_snapshot()
            self.stats.record(req.op)
            return Message(op=req.op, key=seq, key2=self.epoch)

        if req.op is Op.LIST:
            import json

            inventory = [
                {
                    "name": segment.name,
                    "nbytes": segment.size,
                    "version": segment.version,
                    "owner": segment.owner,
                }
                for segment in self.pool.segments().values()
            ]
            payload = json.dumps(
                {
                    "segments": sorted(
                        inventory, key=lambda item: item["name"]
                    ),
                    "capacity": self.pool.capacity,
                    "used": self.pool.used,
                }
            ).encode()
            return Message(op=req.op, payload=payload)

        if req.op is Op.SHUTDOWN:
            return Message(op=req.op)

        raise SMBError(f"unhandled opcode: {req.op!r}")


class TcpSMBServer:
    """Threaded TCP front-end for an :class:`SMBServer`.

    Usage::

        with TcpSMBServer(capacity=1 << 28) as server:
            client = SMBClient.connect(server.address)
            ...

    Each accepted connection is validated with the protocol ``HELLO`` magic
    and then served request-by-request on its own thread until the peer
    disconnects or sends ``SHUTDOWN``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = DEFAULT_POOL_CAPACITY,
        core: Optional[SMBServer] = None,
        telemetry: Optional[TelemetrySession] = None,
        journal_dir: Optional[Union[str, os.PathLike]] = None,
        snapshot_interval: float = 30.0,
        journal_ops: bool = True,
    ) -> None:
        self.core = core if core is not None else SMBServer(
            capacity,
            telemetry=telemetry,
            journal_dir=journal_dir,
            snapshot_interval=snapshot_interval,
            journal_ops=journal_ops,
        )
        self._journal_dir = journal_dir
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "TcpSMBServer":
        """Begin accepting connections on a background thread.

        With a journal directory configured, the rendezvous file is
        (re)published first: a restarted server usually lands on a new
        ephemeral port, and clients in their grace window re-resolve the
        address through this file.
        """
        if self._journal_dir is not None:
            write_rendezvous(
                os.path.join(os.fspath(self._journal_dir), RENDEZVOUS_NAME),
                self.address,
                epoch=self.core.epoch,
            )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="smb-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listener; handler threads drain.

        Handler threads parked in a WAIT_UPDATE are woken through
        :meth:`SMBServer.close` so shutdown never leaves pinned threads
        behind.
        """
        self._stop.set()
        self.core.close()
        try:
            self._listener.close()
        except OSError:  # already closed
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def kill(self) -> None:
        """Die abruptly: sever every connection, skip the clean-shutdown
        snapshot.  Chaos drills use this to emulate ``kill -9`` on an
        in-process server — recovery must come from the journal
        directory, exactly as it would after a real process death.
        """
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        # Wake WAIT_UPDATE handler threads and release the journal file
        # handle (mimicking the OS reclaiming it on death) WITHOUT the
        # final snapshot that core.close() would write.
        self.core._closing.set()
        if self.core._store is not None:
            self.core._store.close()

        def _wake(segment) -> None:
            with segment.lock:
                segment.updated.notify_all()

        self.core.pool.for_each(_wake)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "TcpSMBServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed during stop()
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"smb-conn-{peer[1]}",
                daemon=True,
            )
            handler.start()
            self._handlers.append(handler)

    def _serve_connection(self, conn: socket.socket, peer: object) -> None:
        with self._conns_lock:
            self._conns.append(conn)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_exact(conn, len(HELLO))
            if hello != HELLO:
                logger.warning("rejecting non-SMB client from %s", peer)
                return
            # Per-connection pooled buffers: request payloads (WRITE data)
            # and READ responses land in these instead of a fresh
            # payload-sized allocation per message.  Grown on demand to
            # the largest payload seen, so steady-state training traffic
            # allocates nothing.  Safe to reuse each iteration because a
            # request is fully handled (segment copy + journal append are
            # synchronous) before the next recv touches the buffer.
            recv_buf = bytearray(1 << 16)
            read_buf = bytearray(0)
            while not self._stop.is_set():
                request = recv_message(conn, memoryview(recv_buf))
                if request.payload_nbytes > len(recv_buf):
                    recv_buf = bytearray(request.payload_nbytes)
                out: Optional[memoryview] = None
                if request.op is Op.READ and request.count > 0:
                    if request.count > len(read_buf):
                        read_buf = bytearray(request.count)
                    out = memoryview(read_buf)
                response = self.core.handle(request, out)
                send_message(conn, response)
                if request.op is Op.SHUTDOWN:
                    self._stop.set()
                    self._listener.close()
                    break
        except SMBConnectionError:
            pass  # peer went away; normal teardown
        except Exception:  # noqa: BLE001 - keep the server alive
            logger.exception("SMB handler crashed for peer %s", peer)
        finally:
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            conn.close()
