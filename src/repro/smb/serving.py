"""Parameter-serving read tier: replicas, snapshot rings, read caches.

Training hammers the primary SMB pool with writes and accumulates; the
*serving* side of the house — evaluation jobs, checkpoint shippers, the
HTTP model gateway — only ever reads, and mostly reads the same few
segments (``W_g``) over and over.  Pointing that read fan-out at the
primary steals bandwidth from the training loop.  This module adds the
read tier the ShmCaffe deployment story implies:

* :class:`ReadCache` — a byte-bounded LRU keyed by
  ``(shm_key, version, nbytes)``.  Because a key names one immutable
  version of a segment, entries never go stale: a new version is a new
  key, and the old entry simply ages out.  Plugs into
  :class:`~repro.smb.client.SMBClient` (``cache=``) and the gateway.
* :class:`ReplicaServer` — subscribes to a configurable set of primary
  segments with ``wait_update`` long-polls, mirrors each update into its
  own read-only :class:`~repro.smb.server.SMBServer` core (stamping the
  *primary's* version numbers via :meth:`Segment.install`), and retains
  the last ``ring_depth`` versions per segment in a snapshot ring so
  version-pinned reads keep working after the primary has moved on.
  Front it with :class:`~repro.smb.server.TcpSMBServer` (``core=``) to
  serve remote readers, or read in-process via :meth:`ReplicaServer.read`.

The replica is where the wait/version bugfix sweep pays off: its
subscription loops run ``wait_update(last_seen, timeout=None)`` forever,
so a primary that recovers *below* ``last_seen`` must surface
:class:`~repro.smb.errors.VersionRegressionError` (rather than park the
loop) for the replica to resync.  The snapshot ring is deliberately kept
across a resync: pinned reads of pre-crash versions still serve.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from time import monotonic
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .client import SMBClient
from .errors import (
    NotificationTimeout,
    SMBError,
    TransportClosedError,
    UnknownKeyError,
    VersionRegressionError,
    is_retryable,
)
from .memory import DEFAULT_POOL_CAPACITY, DEFAULT_TENANT
from .server import SMBServer

logger = logging.getLogger(__name__)

#: Snapshot versions retained per mirrored segment.
DEFAULT_RING_DEPTH = 8

#: Default byte budget for a :class:`ReadCache` built from an ``int``.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


class VersionNotAvailableError(SMBError):
    """A pinned read asked for a version nobody retains any more.

    Raised by :meth:`ReplicaServer.read` when the requested version is
    not the replica's current one, has aged out of the snapshot ring,
    and the primary has moved past it too.  Fatal: the bytes are gone.
    """

    def __init__(self, name: str, requested: int, current: int) -> None:
        super().__init__(
            f"version {requested} of segment {name!r} is not available "
            f"(current is {current}; older snapshots aged out of the ring)"
        )
        self.name = name
        self.requested = requested
        self.current = current


class ReadCache:
    """Thread-safe byte-bounded LRU of immutable segment snapshots.

    Keys are ``(shm_key, version, nbytes)`` tuples; a hit returns the
    exact bytes that segment held at that version.  Entries are immutable
    by construction — a mutation on the server mints a new version and
    therefore a new key — so the only invalidation that ever matters is
    a server *recovery*, which may re-mint version numbers over different
    bytes; :meth:`invalidate` handles that per segment.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, int, int], bytes]" = (
            OrderedDict()
        )
        self._used = 0
        self.hits = 0
        self.misses = 0

    def _registry(self):
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        return tel.registry if tel.enabled else None

    def get(self, key: Tuple[int, int, int]) -> Optional[bytes]:
        """Return the cached bytes for ``key``, or None on a miss."""
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        registry = self._registry()
        if registry is not None:
            registry.inc(
                "serve/cache/hit" if data is not None else "serve/cache/miss"
            )
        return data

    def put(self, key: Tuple[int, int, int], data: bytes) -> None:
        """Insert one immutable snapshot; evicts LRU entries to fit.

        An entry bigger than the whole cache is silently not cached —
        thrashing the entire cache for one oversized read helps nobody.
        """
        nbytes = len(data)
        if nbytes > self.capacity_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._used -= len(old)
            self._entries[key] = data
            self._used += nbytes
            while self._used > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._used -= len(evicted)

    def invalidate(self, shm_key: Optional[int] = None) -> None:
        """Drop entries for one segment, or everything (``None``).

        Called on server recovery: a recovered epoch re-mints version
        numbers, so ``(shm_key, version)`` may now alias different bytes.
        """
        with self._lock:
            if shm_key is None:
                self._entries.clear()
                self._used = 0
                return
            stale = [k for k in self._entries if k[0] == shm_key]
            for key in stale:
                self._used -= len(self._entries.pop(key))

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _SnapshotRing:
    """Last-``depth`` versions of one segment, oldest evicted first."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self._lock = threading.Lock()
        self._snapshots: "OrderedDict[int, bytes]" = OrderedDict()

    def push(self, version: int, data: bytes) -> None:
        with self._lock:
            self._snapshots[version] = data
            self._snapshots.move_to_end(version)
            while len(self._snapshots) > self.depth:
                self._snapshots.popitem(last=False)

    def get(self, version: int) -> Optional[bytes]:
        with self._lock:
            return self._snapshots.get(version)

    def versions(self) -> List[int]:
        with self._lock:
            return list(self._snapshots)


class _Subscription:
    """Book-keeping for one mirrored segment."""

    def __init__(self, name: str, ring_depth: int) -> None:
        self.name = name
        self.ring = _SnapshotRing(ring_depth)
        self.ready = threading.Event()
        self.version = 0
        self.resyncs = 0
        self.last_update_at: Optional[float] = None


class ReplicaServer:
    """Read-only mirror of a chosen set of primary segments.

    The replica owns an in-process :class:`SMBServer` core whose pool
    holds the mirrored bytes at the *primary's* version numbers; expose
    it over any transport (``TcpSMBServer(core=replica.core)``) or read
    in-process through :meth:`read`.  One daemon thread per segment runs
    the subscription loop: ``wait_update`` long-poll, ``read_into``,
    :meth:`Segment.install`.

    ``connect`` is a zero-argument factory returning a *fresh*
    :class:`SMBClient` bound to the primary — transport-agnostic and
    tenant-aware (pin the tenant in the factory).  Each subscription
    thread gets its own client so long-polls never serialise behind one
    notify channel; one more client serves pinned-read fallbacks.

    Staleness bound: a replica read lags the primary by at most one
    notification round-trip plus one segment read (milliseconds on
    loopback); :data:`serve/replica/lag` records how many primary
    versions each apply coalesced.
    """

    def __init__(
        self,
        connect: Callable[[], SMBClient],
        segments: Sequence[str],
        tenant: str = DEFAULT_TENANT,
        ring_depth: int = DEFAULT_RING_DEPTH,
        capacity: int = DEFAULT_POOL_CAPACITY,
        telemetry: Optional[TelemetrySession] = None,
        name: str = "replica",
    ) -> None:
        if not segments:
            raise ValueError("a replica needs at least one segment to mirror")
        if ring_depth < 1:
            raise ValueError(f"ring_depth must be >= 1, got {ring_depth}")
        self.name = name
        self.tenant = tenant
        self._connect = connect
        self._telemetry = telemetry
        self.core = SMBServer(capacity=capacity, telemetry=telemetry)
        self._subs: Dict[str, _Subscription] = {
            seg: _Subscription(seg, ring_depth) for seg in segments
        }
        self._threads: List[threading.Thread] = []
        self._clients: List[SMBClient] = []
        self._clients_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False
        self._fallback: Optional[SMBClient] = None
        self._fallback_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ReplicaServer":
        if self._started:
            raise RuntimeError("replica already started")
        self._started = True
        for sub in self._subs.values():
            thread = threading.Thread(
                target=self._run_subscription,
                args=(sub,),
                name=f"{self.name}-sub-{sub.name}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def stop(self) -> None:
        """Stop subscriptions; closing the clients wakes parked waits."""
        self._stopping.set()
        with self._clients_lock:
            clients = list(self._clients)
            self._clients.clear()
        for client in clients:
            client.close()
        with self._fallback_lock:
            if self._fallback is not None:
                self._fallback.close()
                self._fallback = None
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "ReplicaServer":
        return self if self._started else self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until every subscription finished its initial sync."""
        deadline = monotonic() + timeout if timeout is not None else None
        for sub in self._subs.values():
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(deadline - monotonic(), 0.0)
            if not sub.ready.wait(remaining):
                return False
        return True

    # -- the read API the gateway programs against ------------------------

    def serves(self, name: str, tenant: Optional[str] = None) -> bool:
        """Whether this replica mirrors ``name`` (in ``tenant``)."""
        if tenant is not None and tenant != self.tenant:
            return False
        return name in self._subs

    def segment_names(self) -> List[str]:
        return list(self._subs)

    def read(
        self,
        name: str,
        version: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Tuple[int, bytes]:
        """Serve one versioned read; returns ``(version, bytes)``.

        ``version=None`` serves the replica's current snapshot.  A
        pinned read of version ``v`` is served from the local pool (if
        current) or the snapshot ring; only on a ring miss does the
        replica fall back to one primary read — and only a primary
        still *at* ``v`` can satisfy it.

        Raises:
            UnknownKeyError: ``name`` is not a segment this replica
                mirrors (or it has not finished its initial sync).
            VersionNotAvailableError: The pinned version is gone
                everywhere.
        """
        sub = self._subs.get(name)
        if sub is None or not sub.ready.is_set():
            raise UnknownKeyError(0)
        segment = self.core.pool.by_name(name, tenant=self.tenant)
        with segment.lock:
            current = segment.version
            if version is None or version == current:
                data = segment.buffer.tobytes()
                self._count_read(len(data))
                return current, data
        snapshot = sub.ring.get(version)
        if snapshot is not None:
            self._record("serve/replica/ring_hit")
            self._count_read(len(snapshot))
            return version, snapshot
        return self._primary_fallback(sub, version, current)

    def _primary_fallback(
        self, sub: _Subscription, version: int, current: int
    ) -> Tuple[int, bytes]:
        """Last resort for a pinned miss: ask the primary directly.

        Useful when the replica lags (the reader pinned a version the
        primary just minted): the primary is still at that version, so
        the read both serves the request and warms the mirror.
        """
        self._record("serve/replica/fallback")
        try:
            client = self._fallback_client()
            shm_key, nbytes = client.lookup(sub.name)
            access_key = client.attach(shm_key, nbytes)
            buf = bytearray(nbytes)
            got = client.read_into(access_key, buf)
        except SMBError as exc:
            raise VersionNotAvailableError(
                sub.name, version, current
            ) from exc
        if got != version:
            raise VersionNotAvailableError(sub.name, version, current)
        data = bytes(buf)
        sub.ring.push(got, data)
        self._count_read(len(data))
        return got, data

    def _fallback_client(self) -> SMBClient:
        with self._fallback_lock:
            if self._fallback is None:
                self._fallback = self._connect()
            return self._fallback

    def version(self, name: str) -> int:
        """The replica's current version of ``name`` (0 before sync)."""
        sub = self._subs.get(name)
        if sub is None:
            raise UnknownKeyError(0)
        return sub.version

    def lag_info(self) -> Dict[str, Dict[str, object]]:
        """Per-segment mirror state (diagnostics, CLI)."""
        return {
            name: {
                "version": sub.version,
                "ready": sub.ready.is_set(),
                "resyncs": sub.resyncs,
                "ring": sub.ring.versions(),
            }
            for name, sub in self._subs.items()
        }

    # -- subscription machinery -------------------------------------------

    def _registry(self):
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        return tel.registry if tel.enabled else None

    def _record(self, counter: str, value: int = 1) -> None:
        registry = self._registry()
        if registry is not None:
            registry.inc(counter, value)

    def _count_read(self, nbytes: int) -> None:
        registry = self._registry()
        if registry is not None:
            registry.inc("serve/replica/reads")
            registry.inc(f"serve/replica/tenant/{self.tenant}/reads")
            registry.inc("serve/replica/bytes_read", nbytes)

    def _make_client(self) -> Optional[SMBClient]:
        """One subscription client, tracked so stop() can wake its wait."""
        if self._stopping.is_set():
            return None
        client = self._connect()
        with self._clients_lock:
            if self._stopping.is_set():
                client.close()
                return None
            self._clients.append(client)
        return client

    def _run_subscription(self, sub: _Subscription) -> None:
        """Mirror one segment until stop(): sync, long-poll, apply."""
        while not self._stopping.is_set():
            try:
                client = self._make_client()
            except SMBError:
                # Primary down and the factory has no grace window of
                # its own; keep knocking until stop() or it comes back.
                self._stopping.wait(0.2)
                continue
            if client is None:
                return
            try:
                self._subscribe_once(client, sub)
                return  # clean exit (stop() closed the client)
            except (TransportClosedError, SMBError) as exc:
                if self._stopping.is_set():
                    return
                if isinstance(exc, SMBError) and not is_retryable(exc):
                    logger.error(
                        "replica %s: subscription for %r failed: %s",
                        self.name, sub.name, exc,
                    )
                    return
                logger.warning(
                    "replica %s: connection to primary lost for %r (%s); "
                    "reconnecting", self.name, sub.name, exc,
                )
                self._stopping.wait(0.2)
            finally:
                with self._clients_lock:
                    if client in self._clients:
                        self._clients.remove(client)
                client.close()

    def _subscribe_once(self, client: SMBClient, sub: _Subscription) -> None:
        """One subscription session over one client connection."""
        shm_key, nbytes = client.lookup(sub.name)
        access_key = client.attach(shm_key, nbytes)
        local = self._local_segment(sub.name, nbytes)
        buf = bytearray(nbytes)
        version = client.read_into(access_key, buf)
        self._apply(sub, local, bytes(buf), version, force=False)
        while not self._stopping.is_set():
            try:
                new = client.wait_update(access_key, sub.version, timeout=None)
            except NotificationTimeout:
                continue
            except VersionRegressionError as regress:
                # The primary recovered below our mirror.  Resync from
                # the recovered state — forcing the install so the local
                # version matches the primary again — but KEEP the ring:
                # pinned reads of pre-crash versions must still serve.
                sub.resyncs += 1
                self._record("serve/replica/resyncs")
                logger.warning(
                    "replica %s: primary regressed for %r (%s); resyncing",
                    self.name, sub.name, regress,
                )
                version = client.read_into(access_key, buf)
                self._apply(sub, local, bytes(buf), version, force=True)
                continue
            version = client.read_into(access_key, buf)
            if version < new:
                # A racing writer cannot roll READ below the version the
                # wait reported; a *recovery* between the two calls can.
                # Treat it as a regression: force-resync to what we read.
                sub.resyncs += 1
                self._record("serve/replica/resyncs")
                self._apply(sub, local, bytes(buf), version, force=True)
                continue
            self._apply(sub, local, bytes(buf), version, force=False)

    def _local_segment(self, name: str, nbytes: int):
        pool = self.core.pool
        try:
            return pool.by_name(name, tenant=self.tenant)
        except UnknownKeyError:
            try:
                return pool.create(
                    name, nbytes, owner=self.name, tenant=self.tenant
                )
            except SMBError:
                # Raced another (re)subscription; the segment exists now.
                return pool.by_name(name, tenant=self.tenant)

    def _apply(
        self,
        sub: _Subscription,
        local,
        data: bytes,
        version: int,
        force: bool,
    ) -> None:
        """Install one mirrored snapshot locally and retain it in the ring."""
        previous = sub.version
        local.install(data, version, force=force)
        sub.ring.push(version, data)
        sub.version = version
        sub.last_update_at = monotonic()
        registry = self._registry()
        if registry is not None:
            registry.inc("serve/replica/updates")
            if version > previous:
                # How many primary versions this apply coalesced: 0 means
                # the mirror saw every update, N means N were skipped
                # while we were reading/applying the previous one.
                registry.observe(
                    "serve/replica/lag", float(version - previous - 1)
                )
        if not sub.ready.is_set():
            sub.ready.set()
