"""Client library for the Soft Memory Box.

This is the API ShmCaffe's distributed training manager programs against
(paper Sec. III-A/III-B): create remote shared memory, attach by SHM key,
RDMA-style read/write, server-side accumulation between segments, and update
notification.

Two convenience layers sit on top of the raw byte operations:

* :class:`RemoteArray` — a typed window onto a segment, reading and writing
  NumPy arrays.  The global weight buffer ``W_g`` and each worker's private
  increment buffer ``ΔW_x`` (paper Fig. 5) are ``RemoteArray`` instances.
* :class:`ControlBlock` — a small int64 segment used for sharing training
  progress (``Iter_x`` counters and a stop flag) between workers, which is
  how ShmCaffe aligns termination (paper Sec. III-E).
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import threading
import time
from time import perf_counter as _perf_counter
from typing import Dict, Optional, Protocol, Tuple, Union

import numpy as np

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from . import errors
from .memory import DEFAULT_TENANT
from .protocol import Buffer, Message, Op, Status, encode_wait_timeout
from .retry import NO_RETRY, RetryPolicy
from .server import SMBServer
from .transport import InProcTransport, TcpTransport, Transport

logger = logging.getLogger(__name__)


def _writable_byte_view(out: object) -> memoryview:
    """Normalise a caller-supplied output buffer to a writable byte view.

    Accepts a NumPy array, ``bytearray`` or ``memoryview`` (anything
    exposing a writable C-contiguous buffer).  This is the contract of
    every ``read_into``-style API: the bytes land *in this buffer*, so it
    must be flat, writable and contiguous.
    """
    view = memoryview(out)  # type: ignore[arg-type]
    if view.readonly:
        raise ValueError("output buffer must be writable")
    if view.format == "B" and view.ndim == 1:
        return view
    try:
        return view.cast("B")
    except TypeError as exc:
        raise ValueError(
            f"output buffer must be C-contiguous: {exc}"
        ) from exc


def _aliases(payload: Buffer, view: memoryview) -> bool:
    """Whether ``payload`` is already a view of ``view``'s backing buffer."""
    return isinstance(payload, memoryview) and payload.obj is view.obj

class ReadCacheLike(Protocol):
    """What :class:`SMBClient` needs from a read cache.

    The reference implementation is
    :class:`~repro.smb.serving.ReadCache`; anything matching this
    protocol plugs in (keys are ``(shm_key, version, nbytes)`` tuples,
    values are the immutable payload bytes of that exact version).
    """

    def get(self, key: Tuple[int, int, int]) -> Optional[bytes]: ...

    def put(self, key: Tuple[int, int, int], data: bytes) -> None: ...

    def invalidate(self, shm_key: Optional[int] = None) -> None: ...


#: Ops whose ``key`` slot carries an access key (``key2`` too for
#: ACCUMULATE) and therefore must be re-mapped after a server restart.
_ACCESS_KEY_OPS = frozenset(
    {Op.READ, Op.WRITE, Op.ACCUMULATE, Op.VERSION, Op.WAIT_UPDATE}
)


@dataclasses.dataclass
class _Attachment:
    """Client-side record of one segment attachment.

    The *held* access key is what the caller (``RemoteArray`` etc.)
    keeps; access keys die with the server process, so after a restart
    the client transparently re-attaches by the stable SHM key and maps
    the held key onto the freshly minted ``current`` key.
    """

    held_key: int
    shm_key: int
    expected_nbytes: Optional[int]
    current_key: int
    epoch: int
    version: int
    #: A server recovery rolled this segment back below a version the
    #: caller had already seen.  ``wait_update`` surfaces it as a typed
    #: :class:`~repro.smb.errors.VersionRegressionError` (instead of
    #: parking forever against the recovered epoch); the flag clears
    #: once the caller waits from a version the recovered epoch covers.
    regressed: bool = False


def _raise_remote(payload: bytes) -> None:
    """Re-raise a server-side SMBError from its wire representation.

    Structured subclasses come back through their real constructors (see
    :func:`repro.smb.errors.from_wire`), so handlers that inspect e.g.
    :attr:`CapacityError.available` work across the TCP hop.
    """
    raise errors.from_wire(payload)


class SMBClient:
    """Handle to one SMB server, usable from one worker's threads.

    Construct via :meth:`in_process` (shared-address-space emulation of
    RDMA) or :meth:`connect` (TCP, true multi-process sharing).

    Args:
        transport: The request/response channel to the server.
        telemetry: Session receiving op timings/byte counters; defaults
            to the process-wide session.
        retry_policy: Transient-fault handling (see
            :class:`~repro.smb.retry.RetryPolicy`).  The default fails
            fast (no retries), preserving pre-fault-tolerance semantics;
            pass :data:`~repro.smb.retry.DEFAULT_RETRY_POLICY` or your
            own for resilient operation.
        cache: Opt-in read cache.  An ``int`` is a byte capacity for a
            fresh :class:`~repro.smb.serving.ReadCache`; any object with
            ``get``/``put``/``invalidate`` works.  Full-segment
            :meth:`read` results are cached under ``(shm_key, version)``
            — entries are immutable snapshots, so a hit is served with
            no server op.  Invalidation rides the existing notify
            channel: a ``wait_update`` (or any op) observing a newer
            version advances the attachment's tracked version, after
            which the stale entry can no longer be served; a server
            recovery drops the segment's entries outright (recovered
            version numbers may be re-minted with different bytes).
    """

    def __init__(
        self,
        transport: Transport,
        telemetry: Optional[TelemetrySession] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tenant: str = DEFAULT_TENANT,
        cache: "Optional[Union[int, ReadCacheLike]]" = None,
    ) -> None:
        self._transport = transport
        #: Namespace this client's name-based ops resolve in.  The
        #: transport carries it on the wire (``SMB2`` hello); this copy
        #: is informational — shown in telemetry and admin tooling.
        self.tenant = tenant
        self._telemetry = telemetry
        self._retry = retry_policy if retry_policy is not None else NO_RETRY
        self._retry_rng = self._retry.make_rng()
        # held access key -> attachment record / current server key.  The
        # map lets every op keep using the key the caller was handed even
        # after a server restart invalidated it (see _try_reattach).
        self._attach_lock = threading.Lock()
        self._attachments: Dict[int, _Attachment] = {}
        self._key_map: Dict[int, int] = {}
        if isinstance(cache, int):
            from .serving import ReadCache

            cache = ReadCache(cache, telemetry=telemetry)
        self._cache: Optional[ReadCacheLike] = cache
        #: Last server epoch observed via ATTACH (None before the first).
        self.server_epoch: Optional[int] = None
        #: How many transparent re-attachments this client performed.
        self.reattachments = 0

    @classmethod
    def in_process(
        cls,
        server: SMBServer,
        telemetry: Optional[TelemetrySession] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tenant: str = DEFAULT_TENANT,
        cache: "Optional[Union[int, ReadCacheLike]]" = None,
    ) -> "SMBClient":
        """Attach directly to an in-process server core."""
        return cls(
            InProcTransport(server, tenant=tenant),
            telemetry, retry_policy, tenant=tenant, cache=cache,
        )

    @classmethod
    def connect(
        cls,
        address: Tuple[str, int],
        telemetry: Optional[TelemetrySession] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rendezvous: Optional[Union[str, os.PathLike]] = None,
        server_down_grace: float = 0.0,
        tenant: str = DEFAULT_TENANT,
        cache: "Optional[Union[int, ReadCacheLike]]" = None,
    ) -> "SMBClient":
        """Connect to a :class:`~repro.smb.server.TcpSMBServer`.

        Args:
            address: Static server endpoint.
            telemetry: Session receiving op timings/byte counters.
            retry_policy: Transient-fault handling.
            rendezvous: Optional ``endpoint.json`` path published by a
                journaled server; re-read on every reconnect so the
                client finds a restarted server on a fresh port.
            server_down_grace: Seconds each (re)connect keeps retrying a
                dead endpoint before giving up — the bounded window that
                turns a server restart into a recoverable outage.
            tenant: Namespace every name-based op (CREATE/LOOKUP/LIST/
                FREE) resolves in; carried in the connection handshake.
        """
        policy = retry_policy if retry_policy is not None else NO_RETRY
        transport = TcpTransport(
            address,
            timeout=policy.connect_timeout,
            request_timeout=policy.request_timeout,
            rendezvous=rendezvous,
            server_down_grace=server_down_grace,
            tenant=tenant,
        )
        return cls(
            transport, telemetry, retry_policy, tenant=tenant, cache=cache
        )

    @classmethod
    def connect_local(
        cls,
        path: Union[str, os.PathLike],
        telemetry: Optional[TelemetrySession] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tenant: str = DEFAULT_TENANT,
        cache: "Optional[Union[int, ReadCacheLike]]" = None,
    ) -> "SMBClient":
        """Connect to a co-located server over its shared-memory doorway.

        ``path`` is the UNIX socket published by a
        :class:`~repro.smb.shm_transport.ShmSMBServer`.  Data moves
        through a per-connection shared-memory block instead of the TCP
        stack, so large co-located READ/WRITE is a single memcpy.
        """
        from .shm_transport import ShmTransport

        policy = retry_policy if retry_policy is not None else NO_RETRY
        transport = ShmTransport(
            path, timeout=policy.request_timeout, tenant=tenant
        )
        return cls(
            transport, telemetry, retry_policy, tenant=tenant, cache=cache
        )

    def close(self) -> None:
        """Release the underlying transport."""
        self._transport.close()

    def __enter__(self) -> "SMBClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- raw segment operations ------------------------------------------

    def _call(
        self, request: Message, out: Optional[memoryview] = None
    ) -> Message:
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if not tel.enabled:
            return self._call_raw(request, out)
        start = _perf_counter()
        response = self._call_raw(request, out)
        elapsed = _perf_counter() - start
        name = request.op.name
        tel.registry.observe(f"smb/client/time/{name}", elapsed)
        if request.op is Op.READ:
            tel.registry.inc("smb/client/bytes_read", len(response.payload))
        elif request.op is Op.WRITE:
            tel.registry.inc(
                "smb/client/bytes_written", request.payload_nbytes
            )
        return response

    def _call_raw(
        self, request: Message, out: Optional[memoryview] = None
    ) -> Message:
        """One operation, retried per the client's policy.

        Transient failures (see :func:`repro.smb.errors.is_retryable`)
        are re-issued up to ``max_attempts`` times with jittered
        exponential backoff; a persistent fault surfaces as
        :class:`~repro.smb.errors.RetryExhaustedError` so the training
        layer can degrade instead of crashing.  Fatal server verdicts
        (unknown key, capacity, range) propagate immediately.
        """
        policy = self._retry
        attempt = 0
        reattached: set = set()
        while True:
            attempt += 1
            try:
                response = self._transport.request(
                    self._translate(request), out
                )
            except errors.SMBError as exc:
                if not errors.is_retryable(exc):
                    raise
                if attempt >= policy.max_attempts:
                    if policy.max_attempts > 1:
                        raise errors.RetryExhaustedError(
                            request.op.name, attempt, f"{type(exc).__name__}: {exc}"
                        ) from exc
                    raise  # retries disabled: keep the original error
                self._count_retry(request.op)
                time.sleep(policy.backoff(attempt, self._retry_rng))
                continue
            if response.status is Status.TIMEOUT:
                # scale < 0 is the poll encoding, not a real duration.
                raise errors.NotificationTimeout(
                    request.key, request.count, max(request.scale, 0.0)
                )
            if response.status is Status.ERROR:
                exc = errors.from_wire(response.payload)
                # A restarted server forgot every access key it ever
                # minted.  If the unknown key belongs to one of our
                # registered attachments, re-attach by the stable SHM
                # key and re-issue the op (bounded: once per held key
                # per call).
                if (
                    isinstance(exc, errors.UnknownKeyError)
                    and request.op in _ACCESS_KEY_OPS
                    and self._try_reattach(exc.key, reattached)
                ):
                    if request.op is Op.WAIT_UPDATE:
                        # Re-issuing a wait past the recovered version
                        # would park forever; surface the regression
                        # instead of silently re-arming.
                        self._check_regression(request.key, request.count)
                    continue
                raise exc
            if self._attachments and request.op in _ACCESS_KEY_OPS:
                # Track the newest version seen per attachment so a
                # post-restart re-attach can tell how much (if anything)
                # the recovered buffer lost.
                record = self._attachments.get(request.key)
                if record is not None and response.count > record.version:
                    record.version = response.count
            return response

    def _translate(self, request: Message) -> Message:
        """Re-map held access keys onto the server's current keys."""
        if not self._key_map or request.op not in _ACCESS_KEY_OPS:
            return request
        key = self._key_map.get(request.key, request.key)
        key2 = request.key2
        if request.op is Op.ACCUMULATE:
            key2 = self._key_map.get(request.key2, request.key2)
        if key == request.key and key2 == request.key2:
            return request
        return dataclasses.replace(request, key=key, key2=key2)

    def _register_attachment(
        self,
        held_key: int,
        shm_key: int,
        expected_nbytes: Optional[int],
        epoch: int,
        version: int,
    ) -> None:
        with self._attach_lock:
            self._attachments[held_key] = _Attachment(
                held_key=held_key,
                shm_key=shm_key,
                expected_nbytes=expected_nbytes,
                current_key=held_key,
                epoch=epoch,
                version=version,
            )
            self.server_epoch = epoch

    def _try_reattach(self, dead_key: int, reattached: set) -> bool:
        """Re-attach the segment whose *current* key the server rejected.

        Returns True when the held->current mapping was refreshed and the
        caller should re-issue its request; False when the key is not one
        of ours (a genuinely unknown key must surface to the caller).
        """
        with self._attach_lock:
            record = next(
                (a for a in self._attachments.values()
                 if a.current_key == dead_key),
                None,
            )
        if record is None or record.held_key in reattached:
            return False
        reattached.add(record.held_key)
        response = self._call(
            Message(
                op=Op.ATTACH,
                key=record.shm_key,
                count=record.expected_nbytes or 0,
            )
        )
        with self._attach_lock:
            new_epoch = response.key2
            if record.epoch != new_epoch:
                logger.info(
                    "server restart observed for segment shm_key=%#x: "
                    "epoch %d -> %d, version %d -> %d",
                    record.shm_key, record.epoch, new_epoch,
                    record.version, response.count,
                )
            if response.count < record.version:
                # Snapshot-only durability may restore an older buffer;
                # the lost deltas are bounded by the snapshot cadence
                # (see docs/fault_tolerance.md) but worth surfacing.
                logger.warning(
                    "segment shm_key=%#x came back at version %d "
                    "(last seen %d): deltas since the last snapshot "
                    "were lost",
                    record.shm_key, response.count, record.version,
                )
                record.regressed = True
            if record.epoch != new_epoch and self._cache is not None:
                # A recovered server re-mints version numbers; cached
                # (shm_key, version) entries may alias different bytes.
                self._cache.invalidate(record.shm_key)
            record.current_key = response.key
            record.epoch = new_epoch
            record.version = response.count
            self._key_map[record.held_key] = response.key
            self.server_epoch = new_epoch
            self.reattachments += 1
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if tel.enabled:
            tel.registry.inc("smb/recovery/reattach")
        return True

    def _count_retry(self, op: Op) -> None:
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if tel.enabled:
            tel.registry.inc("smb/client/retries")
            tel.registry.inc(f"smb/client/retries/{op.name}")

    def create_buffer(self, name: str, nbytes: int) -> int:
        """Create a named segment; returns its SHM key (master worker)."""
        response = self._call(
            Message(op=Op.CREATE, count=nbytes, payload=name.encode())
        )
        return response.key

    def lookup(self, name: str) -> Tuple[int, int]:
        """Resolve a segment name to ``(shm_key, size_in_bytes)``."""
        response = self._call(Message(op=Op.LOOKUP, payload=name.encode()))
        return response.key, response.count

    def attach(self, shm_key: int, expected_nbytes: Optional[int] = None) -> int:
        """Exchange a broadcast SHM key for an access key (slave worker).

        The attachment is remembered client-side: if the server restarts
        and forgets the access key, any later op transparently
        re-attaches by this SHM key and keeps the returned key valid
        from the caller's point of view.
        """
        response = self._call(
            Message(op=Op.ATTACH, key=shm_key, count=expected_nbytes or 0)
        )
        self._register_attachment(
            held_key=response.key,
            shm_key=shm_key,
            expected_nbytes=expected_nbytes,
            epoch=response.key2,
            version=response.count,
        )
        return response.key

    @staticmethod
    def _check_payload(op: Op, expected: int, payload: Buffer) -> None:
        """Reject short/oversized response payloads loudly.

        A stale or truncated response would otherwise surface far
        downstream as a wrong-sized array; see
        :class:`~repro.smb.errors.PayloadSizeError`.
        """
        got = len(payload)
        if got != expected:
            raise errors.PayloadSizeError(op.name, expected, got)

    def read(self, access_key: int, nbytes: int, offset: int = 0) -> bytes:
        """RDMA-Read ``nbytes`` from the segment.

        With a read cache configured, a whole-segment read (``offset ==
        0``) of an attached segment is served locally when a cached
        entry matches the attachment's last-seen version; the version
        advances through the ordinary ops and ``wait_update``, which is
        what invalidates stale entries.

        Raises:
            errors.PayloadSizeError: If the response payload length does
                not match ``nbytes``.
        """
        cache = self._cache
        record: Optional[_Attachment] = None
        if cache is not None and offset == 0:
            with self._attach_lock:
                record = self._attachments.get(access_key)
            if record is not None and not record.regressed:
                cached = cache.get((record.shm_key, record.version, nbytes))
                if cached is not None:
                    return cached
        response = self._call(
            Message(op=Op.READ, key=access_key, offset=offset, count=nbytes)
        )
        self._check_payload(Op.READ, nbytes, response.payload)
        payload = response.payload
        data = payload if isinstance(payload, bytes) else bytes(payload)
        if cache is not None and offset == 0 and record is not None:
            # Insert strictly under the version the wire reported for
            # *these* bytes — never the attachment's "latest seen",
            # which a concurrent notify may already have advanced past
            # this payload.
            cache.put((record.shm_key, response.count, nbytes), data)
        return data

    def read_into(
        self,
        access_key: int,
        out: Union[np.ndarray, bytearray, memoryview],
        offset: int = 0,
    ) -> int:
        """RDMA-Read ``len(out)`` bytes straight into ``out`` (zero-copy).

        The steady-state read primitive: the response payload is received
        (TCP) or copied (in-process) directly into the caller's buffer —
        no intermediate bytes objects, no model-size garbage per
        iteration.  Returns the segment's version at read time.

        Args:
            out: Writable C-contiguous buffer (NumPy array, bytearray or
                memoryview); its byte length is the read size.
            offset: Byte offset into the segment.

        Raises:
            errors.PayloadSizeError: If the server returned a payload of
                a different length (``out`` may then hold partial data).
        """
        view = _writable_byte_view(out)
        nbytes = view.nbytes
        response = self._call(
            Message(op=Op.READ, key=access_key, offset=offset, count=nbytes),
            out=view,
        )
        self._check_payload(Op.READ, nbytes, response.payload)
        if not _aliases(response.payload, view):
            # Transport could not use the buffer (e.g. a wrapper that
            # ignores ``out``); land the bytes where the caller asked.
            np.frombuffer(view, dtype=np.uint8)[:] = np.frombuffer(
                response.payload, dtype=np.uint8
            )
        return response.count

    def write(
        self,
        access_key: int,
        data: Union[bytes, bytearray, memoryview, np.ndarray],
        offset: int = 0,
    ) -> int:
        """RDMA-Write bytes/array into the segment; returns new version.

        A C-contiguous NumPy array is sent as a memoryview of its own
        storage (vectored send) — no ``tobytes()`` copy; non-contiguous
        input is compacted first because the wire needs contiguity.
        """
        payload: Buffer
        if isinstance(data, np.ndarray):
            payload = memoryview(np.ascontiguousarray(data)).cast("B")
        else:
            payload = data
        response = self._call(
            Message(
                op=Op.WRITE, key=access_key, offset=offset, payload=payload
            )
        )
        return response.count

    def accumulate(
        self,
        dst_access_key: int,
        src_access_key: int,
        count: int = 0,
        scale: float = 1.0,
        offset: int = 0,
        dtype: str = "float32",
    ) -> int:
        """Server-side ``dst += scale * src`` over ``count`` elements.

        ``count == 0`` means "the whole source segment".  This implements the
        paper's eq. (7): the worker first writes ``ΔW_x`` to its private
        segment, then asks the server to fold it into ``W_g``.

        ``dtype`` names the element type both regions are interpreted as;
        it rides in the (otherwise unused) request payload, and an empty
        payload means float32 — so old clients keep working against new
        servers and vice versa.
        """
        response = self._call(
            Message(
                op=Op.ACCUMULATE,
                key=dst_access_key,
                key2=src_access_key,
                offset=offset,
                count=count,
                scale=scale,
                payload=b"" if dtype == "float32" else dtype.encode(),
            )
        )
        return response.count

    def free(self, shm_key: int) -> None:
        """Deallocate a segment."""
        self._call(Message(op=Op.FREE, key=shm_key))

    def version(self, access_key: int) -> int:
        """Current mutation counter of a segment."""
        return self._call(Message(op=Op.VERSION, key=access_key)).count

    def wait_update(
        self,
        access_key: int,
        version: int,
        timeout: Optional[float] = None,
    ) -> int:
        """Block until the segment advances past ``version``.

        Args:
            access_key: Segment to watch.
            version: Last version the caller has seen.
            timeout: Seconds to wait.  ``None`` (the default) waits
                forever; ``0.0`` polls — one immediate version check
                that raises :class:`~repro.smb.errors.NotificationTimeout`
                if the segment has not advanced, instead of parking.

        Returns:
            The new version.

        Raises:
            errors.NotificationTimeout: If the timeout expired first (or
                a ``0.0`` poll found no update).
            errors.VersionRegressionError: If the server recovered to a
                state whose segment version is *below* ``version`` —
                this wait could never complete; re-read the segment and
                wait from the recovered version instead.
        """
        self._check_regression(access_key, version)
        response = self._call(
            Message(op=Op.WAIT_UPDATE, key=access_key, count=version,
                    scale=encode_wait_timeout(timeout))
        )
        return response.count

    def _check_regression(self, access_key: int, version: int) -> None:
        """Refuse a wait that a recovery-induced regression made futile.

        A segment that came back below the caller's ``version`` may
        never re-reach it; waiting would park forever.  Waiting from a
        version the recovered segment already covers proves the caller
        resynced, so the flag clears.
        """
        with self._attach_lock:
            record = self._attachments.get(access_key)
            if record is None or not record.regressed:
                return
            if version > record.version:
                raise errors.VersionRegressionError(
                    record.shm_key, version, record.version, record.epoch
                )
            record.regressed = False

    def stats(self) -> dict:
        """Server statistics (bytes moved, op counts)."""
        response = self._call(Message(op=Op.STATS))
        return json.loads(response.payload.decode())

    def list_segments(self) -> dict:
        """Segment inventory plus capacity accounting (administration)."""
        response = self._call(Message(op=Op.LIST))
        return json.loads(response.payload.decode())

    def create_tenant(self, name: str, quota: Optional[int] = None) -> int:
        """Provision (or re-provision) a namespace with a byte quota.

        Administrative: any connection may issue it, matching the trust
        model of ``FREE``/``SHUTDOWN``.  ``quota=None`` means unlimited.
        Returns the effective quota (0 encodes unlimited on the wire).
        """
        response = self._call(
            Message(
                op=Op.TENANT_CREATE,
                count=quota if quota is not None else 0,
                payload=name.encode(),
            )
        )
        return response.count

    def tenant_stats(self) -> dict:
        """Per-namespace usage, quotas and op counters (administration)."""
        response = self._call(Message(op=Op.TENANT_STATS))
        return json.loads(response.payload.decode())

    def shutdown_server(self) -> None:
        """Ask a TCP server to stop (administrative)."""
        self._call(Message(op=Op.SHUTDOWN))

    def request_snapshot(self) -> Tuple[int, int]:
        """Force the server to write a durable snapshot *now*.

        Returns:
            ``(seq, epoch)`` of the snapshot just written.

        Raises:
            errors.SMBError: If the server runs without a journal
                directory (durability disabled).
        """
        response = self._call(Message(op=Op.SNAPSHOT))
        return response.key, response.key2

    # -- typed conveniences -----------------------------------------------

    def create_array(
        self, name: str, count: int, dtype: str = "float32"
    ) -> "RemoteArray":
        """Create a segment sized for ``count`` elements and attach to it."""
        nbytes = count * np.dtype(dtype).itemsize
        shm_key = self.create_buffer(name, nbytes)
        access_key = self.attach(shm_key, nbytes)
        return RemoteArray(self, name, shm_key, access_key, count, dtype)

    def attach_array(
        self, name: str, shm_key: int, count: int, dtype: str = "float32"
    ) -> "RemoteArray":
        """Attach to an existing segment by its broadcast SHM key."""
        nbytes = count * np.dtype(dtype).itemsize
        access_key = self.attach(shm_key, nbytes)
        return RemoteArray(self, name, shm_key, access_key, count, dtype)


class RemoteArray:
    """Typed view of one remote segment (e.g. ``W_g`` or a ``ΔW_x``)."""

    def __init__(
        self,
        client: SMBClient,
        name: str,
        shm_key: int,
        access_key: int,
        count: int,
        dtype: str = "float32",
    ) -> None:
        self._client = client
        self.name = name
        self.shm_key = shm_key
        self.access_key = access_key
        self.count = count
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        """Segment size in bytes."""
        return self.count * self.dtype.itemsize

    def _check_out(self, out: np.ndarray) -> np.ndarray:
        """Validate a caller-supplied read destination."""
        if not isinstance(out, np.ndarray):
            raise TypeError(
                f"out must be a numpy array, got {type(out).__name__}"
            )
        if out.dtype != self.dtype:
            raise ValueError(
                f"out dtype {out.dtype} != segment dtype {self.dtype}"
            )
        if out.size != self.count:
            raise ValueError(
                f"out holds {out.size} elements, segment has {self.count}"
            )
        if not out.flags.c_contiguous or not out.flags.writeable:
            raise ValueError("out must be C-contiguous and writable")
        return out

    def read(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Fetch the whole segment as a typed array (RDMA Read).

        Args:
            out: Optional preallocated destination (same dtype and element
                count, C-contiguous, writable).  When given, the segment
                bytes are received *directly into it* and ``out`` itself
                is returned — the steady-state SEASGD loop reuses one
                buffer instead of allocating a model-size array per
                iteration.  Without ``out`` a fresh array is allocated
                (still filled in place: one copy total).
        """
        if out is None:
            out = np.empty(self.count, dtype=self.dtype)
        else:
            out = self._check_out(out)
        self._client.read_into(self.access_key, out)
        return out

    def read_into(self, out: np.ndarray) -> int:
        """Fill ``out`` from the segment; returns the version read.

        Same zero-copy path as :meth:`read` with ``out=``, exposed
        separately for callers that want the version number.
        """
        return self._client.read_into(self.access_key, self._check_out(out))

    def write(self, values: np.ndarray) -> int:
        """Overwrite the whole segment (RDMA Write).

        Contiguous float32 input is sent without any userspace copy
        (vectored send of a memoryview onto ``values``).
        """
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {values.size}"
            )
        return self._client.write(self.access_key, values)

    def accumulate_into(self, dst: "RemoteArray", scale: float = 1.0) -> int:
        """Server-side ``dst += scale * self`` (eq. (7))."""
        if dst.count != self.count:
            raise ValueError(
                f"element count mismatch: {self.count} vs {dst.count}"
            )
        if dst.dtype != self.dtype:
            raise ValueError(
                f"dtype mismatch: {self.dtype.name} vs {dst.dtype.name}"
            )
        return self._client.accumulate(
            dst.access_key,
            self.access_key,
            count=self.count,
            scale=scale,
            dtype=self.dtype.name,
        )

    def version(self) -> int:
        """Current mutation counter."""
        return self._client.version(self.access_key)

    def wait_update(
        self, version: int, timeout: Optional[float] = None
    ) -> int:
        """Block until someone mutates the segment.

        ``timeout=None`` waits forever; ``0.0`` polls (see
        :meth:`SMBClient.wait_update`).
        """
        return self._client.wait_update(self.access_key, version, timeout)

    def free(self) -> None:
        """Deallocate the segment on the server."""
        self._client.free(self.shm_key)


@dataclasses.dataclass(frozen=True)
class SlotClaim:
    """Proof of a successful slot claim: the slot and its generation."""

    slot: int
    generation: int


class ControlBlock:
    """Shared training-progress block (paper Sec. III-E, "control info").

    Layout (``2 * capacity + 1`` int64 values): one *progress* slot per
    unit of capacity, then one *generation* counter per slot, then the
    shared stop flag.  Workers publish their own progress slot and read
    everyone's to decide when to terminate.

    Slots are **dynamically allocated** so the fleet can change size
    mid-run (elastic membership):

    * an unclaimed slot holds the :data:`FREE` sentinel and is invisible
      to the termination criteria;
    * :meth:`claim` takes the lowest claimable slot (or a requested one),
      bumps its generation counter and resets its progress to 0;
    * :meth:`release` returns a retiring worker's slot to :data:`FREE` so
      a later joiner can reclaim it — the generation counter is *kept*,
      which is what makes reclaims detectable;
    * a worker that loses its SMB path for good marks itself **dead** by
      negating its slot: value ``-(completed + 1)``.  Survivors decode
      that with :meth:`decode_progress` and rescale their termination
      criteria over the live fleet.  Dead slots stay claimable: the dead
      encoding survives until a re-joining worker claims the slot.

    Fixed fleets are the degenerate case: :meth:`create` pre-claims every
    slot by default (progress 0, generation 1), which reproduces the
    historical one-slot-per-rank behaviour exactly.

    Generation stamping: callers that pass their claim's ``generation``
    to :meth:`publish_progress`/:meth:`mark_dead`/:meth:`release` get a
    :class:`~repro.smb.errors.StaleGenerationError` if the slot was
    reclaimed out from under them — a retired-then-forgotten worker fails
    loudly instead of corrupting its successor's counter.  The check is a
    read-then-write, so *claims* themselves must be serialised by the
    caller (the membership registry does; the fixed-fleet launch path
    claims disjoint slots).
    """

    STOP_CLEAR = 0
    #: Sentinel marking an unclaimed progress slot (int64 min — never a
    #: valid progress value and never a valid dead encoding).
    FREE = int(np.iinfo(np.int64).min)

    def __init__(self, array: RemoteArray, capacity: int) -> None:
        expected = 2 * capacity + 1
        if array.count != expected or array.dtype != np.dtype("int64"):
            raise ValueError(
                f"control block needs {expected} int64 slots, "
                f"got {array.count} x {array.dtype}"
            )
        self._array = array
        self.capacity = capacity
        #: Historical alias: a fixed fleet's block is sized to its ranks.
        self.num_workers = capacity

    @classmethod
    def create(
        cls,
        client: SMBClient,
        name: str,
        capacity: int,
        preclaimed: Optional[int] = None,
    ) -> "ControlBlock":
        """Master-side creation of the control segment.

        ``preclaimed`` slots start claimed (progress 0, generation 1) —
        the default pre-claims *all* of them, the fixed-fleet layout.
        Elastic jobs pass the launch worker count (or 0) and let workers
        claim their slots explicitly.
        """
        array = client.create_array(name, 2 * capacity + 1, dtype="int64")
        block = cls(array, capacity)
        block.reset(preclaimed)
        return block

    def reset(self, preclaimed: Optional[int] = None) -> None:
        """(Re)initialise every slot; see :meth:`create` for semantics.

        Also used when a run adopts a control segment that survived a
        server recovery: the previous run's counters must not leak into
        the new fleet's termination decisions.
        """
        claimed = self.capacity if preclaimed is None else preclaimed
        if not 0 <= claimed <= self.capacity:
            raise ValueError(
                f"preclaimed {claimed} out of range [0, {self.capacity}]"
            )
        values = np.full(2 * self.capacity + 1, 0, dtype=np.int64)
        values[claimed:self.capacity] = self.FREE
        values[self.capacity:self.capacity + claimed] = 1  # generations
        self._array.write(values)

    @classmethod
    def attach(
        cls, client: SMBClient, name: str, shm_key: int, capacity: int
    ) -> "ControlBlock":
        """Slave-side attachment using the broadcast SHM key."""
        array = client.attach_array(
            name, shm_key, 2 * capacity + 1, dtype="int64"
        )
        return cls(array, capacity)

    @property
    def shm_key(self) -> int:
        """Creation key to broadcast to other workers."""
        return self._array.shm_key

    # -- raw slot IO -------------------------------------------------------

    def _write_slot(self, slot: int, value: int) -> None:
        data = np.asarray([value], dtype=np.int64)
        self._array._client.write(
            self._array.access_key, data, offset=slot * 8
        )

    def _write_generation(self, slot: int, generation: int) -> None:
        data = np.asarray([generation], dtype=np.int64)
        self._array._client.write(
            self._array.access_key, data, offset=(self.capacity + slot) * 8
        )

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.capacity:
            raise ValueError(f"rank {slot} out of range")

    def _check_generation(self, slot: int, generation: Optional[int]) -> None:
        if generation is None:
            return
        current = int(self.read_generations()[slot])
        if current != generation:
            raise errors.StaleGenerationError(slot, generation, current)

    # -- slot allocation ---------------------------------------------------

    def claim(
        self, slot: Optional[int] = None
    ) -> SlotClaim:
        """Claim a slot for a (re)joining worker; returns its generation.

        Claimable slots are :data:`FREE` ones and **dead** ones (a worker
        that degraded out leaves its dead encoding behind; a re-joiner
        takes the slot over).  Without an explicit ``slot`` the lowest
        claimable slot wins; with one, that exact slot must be claimable.
        Raises :class:`~repro.smb.errors.SlotsExhaustedError` when every
        slot is held by a live worker.

        Not atomic against concurrent claims — the membership registry
        (or the launcher's disjoint slot assignment) serialises them.
        """
        values = self.read_progress()
        claimable = (values == self.FREE) | (values < 0)
        if slot is None:
            open_slots = np.flatnonzero(claimable)
            if open_slots.size == 0:
                raise errors.SlotsExhaustedError(self.capacity)
            slot = int(open_slots[0])
        else:
            self._check_slot(slot)
            if not bool(claimable[slot]):
                raise errors.SlotsExhaustedError(self.capacity)
        generation = int(self.read_generations()[slot]) + 1
        self._write_generation(slot, generation)
        self._write_slot(slot, 0)
        return SlotClaim(slot=slot, generation=generation)

    def release(self, slot: int, generation: Optional[int] = None) -> None:
        """Return a retiring worker's slot to the :data:`FREE` pool.

        The generation counter stays where the claim left it (strictly
        monotonic per slot), so the next claim's bump still supersedes
        every stamp this worker ever held.
        """
        self._check_slot(slot)
        self._check_generation(slot, generation)
        self._write_slot(slot, self.FREE)

    # -- progress protocol -------------------------------------------------

    def publish_progress(
        self, rank: int, iteration: int,
        generation: Optional[int] = None,
    ) -> None:
        """Record that the worker on slot ``rank`` completed ``iteration``
        iterations; with ``generation``, fail if the slot was reclaimed."""
        self._check_slot(rank)
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        self._check_generation(rank, generation)
        self._write_slot(rank, iteration)

    def read_progress(self) -> np.ndarray:
        """All slots' completed-iteration counters (raw slot values).

        Dead workers appear as negative values and unclaimed slots as
        :data:`FREE`; most callers want :meth:`decode_progress` instead.
        """
        return self._array.read()[: self.capacity]

    def read_generations(self) -> np.ndarray:
        """Every slot's current generation counter."""
        return self._array.read()[self.capacity: 2 * self.capacity]

    def mark_dead(
        self, rank: int, completed_iterations: int,
        generation: Optional[int] = None,
    ) -> None:
        """Record that slot ``rank`` lost its SMB path after
        ``completed_iterations``.

        The slot keeps the completed count (negated, offset by one so even
        0 iterations encodes as a distinct negative value); survivors see
        the worker as dead and rescale their stop criteria.  The slot
        stays claimable by a re-joining worker.
        """
        self._check_slot(rank)
        self._check_generation(rank, generation)
        self._write_slot(rank, -(completed_iterations + 1))

    @staticmethod
    def decode_progress(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split raw slot values into ``(progress, alive)`` arrays.

        ``progress`` holds each worker's completed-iteration count whether
        it is alive or dead; ``alive`` is the boolean liveness mask.
        Unclaimed (:data:`FREE`) slots decode as not-alive with progress 0
        — like dead slots, they are excluded from every criterion.
        """
        values = np.asarray(values, dtype=np.int64)
        alive = values >= 0
        dead = ~alive & (values != ControlBlock.FREE)
        progress = np.zeros_like(values)
        progress[alive] = values[alive]
        progress[dead] = -values[dead] - 1
        return progress, alive

    def live_progress(self) -> Tuple[np.ndarray, np.ndarray]:
        """Decoded ``(progress, alive)`` for the whole fleet."""
        return self.decode_progress(self.read_progress())

    def live_count(self) -> int:
        """How many slots are currently held by live workers.

        The elastic exchange rescales eqs. (5)-(7) over this count (the
        EASGD ``alpha = beta / p`` stability rule with *p* read live).
        """
        return int((self.read_progress() >= 0).sum())

    def signal_stop(self, code: int = 1) -> None:
        """Raise the shared stop flag with a nonzero reason code."""
        if code == self.STOP_CLEAR:
            raise ValueError("stop code must be nonzero")
        value = np.asarray([code], dtype=np.int64)
        self._array._client.write(
            self._array.access_key, value, offset=2 * self.capacity * 8
        )

    def stop_code(self) -> int:
        """Current stop flag (0 means keep training)."""
        return int(self._array.read()[2 * self.capacity])
