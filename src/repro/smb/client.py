"""Client library for the Soft Memory Box.

This is the API ShmCaffe's distributed training manager programs against
(paper Sec. III-A/III-B): create remote shared memory, attach by SHM key,
RDMA-style read/write, server-side accumulation between segments, and update
notification.

Two convenience layers sit on top of the raw byte operations:

* :class:`RemoteArray` — a typed window onto a segment, reading and writing
  NumPy arrays.  The global weight buffer ``W_g`` and each worker's private
  increment buffer ``ΔW_x`` (paper Fig. 5) are ``RemoteArray`` instances.
* :class:`ControlBlock` — a small int64 segment used for sharing training
  progress (``Iter_x`` counters and a stop flag) between workers, which is
  how ShmCaffe aligns termination (paper Sec. III-E).
"""

from __future__ import annotations

import json
from time import perf_counter as _perf_counter
from typing import Optional, Tuple, Union

import numpy as np

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from . import errors
from .protocol import Message, Op, Status
from .server import SMBServer
from .transport import InProcTransport, TcpTransport, Transport

_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        errors.SMBError,
        errors.SMBConnectionError,
        errors.SMBProtocolError,
        errors.UnknownKeyError,
        errors.CapacityError,
        errors.SegmentRangeError,
        errors.SegmentExistsError,
        errors.AccessDeniedError,
        errors.NotificationTimeout,
    )
}


def _raise_remote(payload: bytes) -> None:
    """Re-raise a server-side SMBError from its wire representation."""
    text = payload.decode(errors="replace")
    name, _, detail = text.partition(":")
    cls = _ERROR_TYPES.get(name, errors.SMBError)
    # Error subclasses have structured constructors; reconstruct generically.
    exc = errors.SMBError.__new__(cls)
    Exception.__init__(exc, detail)
    raise exc


class SMBClient:
    """Handle to one SMB server, usable from one worker's threads.

    Construct via :meth:`in_process` (shared-address-space emulation of
    RDMA) or :meth:`connect` (TCP, true multi-process sharing).
    """

    def __init__(
        self,
        transport: Transport,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self._transport = transport
        self._telemetry = telemetry

    @classmethod
    def in_process(
        cls,
        server: SMBServer,
        telemetry: Optional[TelemetrySession] = None,
    ) -> "SMBClient":
        """Attach directly to an in-process server core."""
        return cls(InProcTransport(server), telemetry)

    @classmethod
    def connect(
        cls,
        address: Tuple[str, int],
        telemetry: Optional[TelemetrySession] = None,
    ) -> "SMBClient":
        """Connect to a :class:`~repro.smb.server.TcpSMBServer`."""
        return cls(TcpTransport(address), telemetry)

    def close(self) -> None:
        """Release the underlying transport."""
        self._transport.close()

    def __enter__(self) -> "SMBClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- raw segment operations ------------------------------------------

    def _call(self, request: Message) -> Message:
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if not tel.enabled:
            return self._call_raw(request)
        start = _perf_counter()
        response = self._call_raw(request)
        elapsed = _perf_counter() - start
        name = request.op.name
        tel.registry.observe(f"smb/client/time/{name}", elapsed)
        if request.op is Op.READ:
            tel.registry.inc("smb/client/bytes_read", len(response.payload))
        elif request.op is Op.WRITE:
            tel.registry.inc("smb/client/bytes_written", len(request.payload))
        return response

    def _call_raw(self, request: Message) -> Message:
        response = self._transport.request(request)
        if response.status is Status.TIMEOUT:
            raise errors.NotificationTimeout(request.key, request.count, request.scale)
        if response.status is Status.ERROR:
            _raise_remote(response.payload)
        return response

    def create_buffer(self, name: str, nbytes: int) -> int:
        """Create a named segment; returns its SHM key (master worker)."""
        response = self._call(
            Message(op=Op.CREATE, count=nbytes, payload=name.encode())
        )
        return response.key

    def lookup(self, name: str) -> Tuple[int, int]:
        """Resolve a segment name to ``(shm_key, size_in_bytes)``."""
        response = self._call(Message(op=Op.LOOKUP, payload=name.encode()))
        return response.key, response.count

    def attach(self, shm_key: int, expected_nbytes: Optional[int] = None) -> int:
        """Exchange a broadcast SHM key for an access key (slave worker)."""
        response = self._call(
            Message(op=Op.ATTACH, key=shm_key, count=expected_nbytes or 0)
        )
        return response.key

    def read(self, access_key: int, nbytes: int, offset: int = 0) -> bytes:
        """RDMA-Read ``nbytes`` from the segment."""
        response = self._call(
            Message(op=Op.READ, key=access_key, offset=offset, count=nbytes)
        )
        return response.payload

    def write(
        self,
        access_key: int,
        data: Union[bytes, np.ndarray],
        offset: int = 0,
    ) -> int:
        """RDMA-Write bytes/array into the segment; returns new version."""
        if isinstance(data, np.ndarray):
            data = np.ascontiguousarray(data).tobytes()
        response = self._call(
            Message(op=Op.WRITE, key=access_key, offset=offset, payload=data)
        )
        return response.count

    def accumulate(
        self,
        dst_access_key: int,
        src_access_key: int,
        count: int = 0,
        scale: float = 1.0,
        offset: int = 0,
    ) -> int:
        """Server-side ``dst += scale * src`` over ``count`` float32 elements.

        ``count == 0`` means "the whole source segment".  This implements the
        paper's eq. (7): the worker first writes ``ΔW_x`` to its private
        segment, then asks the server to fold it into ``W_g``.
        """
        response = self._call(
            Message(
                op=Op.ACCUMULATE,
                key=dst_access_key,
                key2=src_access_key,
                offset=offset,
                count=count,
                scale=scale,
            )
        )
        return response.count

    def free(self, shm_key: int) -> None:
        """Deallocate a segment."""
        self._call(Message(op=Op.FREE, key=shm_key))

    def version(self, access_key: int) -> int:
        """Current mutation counter of a segment."""
        return self._call(Message(op=Op.VERSION, key=access_key)).count

    def wait_update(
        self, access_key: int, version: int, timeout: float = 0.0
    ) -> int:
        """Block until the segment advances past ``version``.

        Args:
            access_key: Segment to watch.
            version: Last version the caller has seen.
            timeout: Seconds to wait; 0 waits forever.

        Returns:
            The new version.

        Raises:
            errors.NotificationTimeout: If the timeout expired first.
        """
        response = self._call(
            Message(op=Op.WAIT_UPDATE, key=access_key, count=version,
                    scale=timeout)
        )
        return response.count

    def stats(self) -> dict:
        """Server statistics (bytes moved, op counts)."""
        response = self._call(Message(op=Op.STATS))
        return json.loads(response.payload.decode())

    def list_segments(self) -> dict:
        """Segment inventory plus capacity accounting (administration)."""
        response = self._call(Message(op=Op.LIST))
        return json.loads(response.payload.decode())

    def shutdown_server(self) -> None:
        """Ask a TCP server to stop (administrative)."""
        self._call(Message(op=Op.SHUTDOWN))

    # -- typed conveniences -----------------------------------------------

    def create_array(
        self, name: str, count: int, dtype: str = "float32"
    ) -> "RemoteArray":
        """Create a segment sized for ``count`` elements and attach to it."""
        nbytes = count * np.dtype(dtype).itemsize
        shm_key = self.create_buffer(name, nbytes)
        access_key = self.attach(shm_key, nbytes)
        return RemoteArray(self, name, shm_key, access_key, count, dtype)

    def attach_array(
        self, name: str, shm_key: int, count: int, dtype: str = "float32"
    ) -> "RemoteArray":
        """Attach to an existing segment by its broadcast SHM key."""
        nbytes = count * np.dtype(dtype).itemsize
        access_key = self.attach(shm_key, nbytes)
        return RemoteArray(self, name, shm_key, access_key, count, dtype)


class RemoteArray:
    """Typed view of one remote segment (e.g. ``W_g`` or a ``ΔW_x``)."""

    def __init__(
        self,
        client: SMBClient,
        name: str,
        shm_key: int,
        access_key: int,
        count: int,
        dtype: str = "float32",
    ) -> None:
        self._client = client
        self.name = name
        self.shm_key = shm_key
        self.access_key = access_key
        self.count = count
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        """Segment size in bytes."""
        return self.count * self.dtype.itemsize

    def read(self) -> np.ndarray:
        """Fetch the whole segment as a typed array (RDMA Read)."""
        data = self._client.read(self.access_key, self.nbytes)
        return np.frombuffer(data, dtype=self.dtype).copy()

    def write(self, values: np.ndarray) -> int:
        """Overwrite the whole segment (RDMA Write)."""
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {values.size}"
            )
        return self._client.write(self.access_key, values)

    def accumulate_into(self, dst: "RemoteArray", scale: float = 1.0) -> int:
        """Server-side ``dst += scale * self`` (eq. (7))."""
        if dst.count != self.count:
            raise ValueError(
                f"element count mismatch: {self.count} vs {dst.count}"
            )
        return self._client.accumulate(
            dst.access_key, self.access_key, count=self.count, scale=scale
        )

    def version(self) -> int:
        """Current mutation counter."""
        return self._client.version(self.access_key)

    def wait_update(self, version: int, timeout: float = 0.0) -> int:
        """Block until someone mutates the segment."""
        return self._client.wait_update(self.access_key, version, timeout)

    def free(self) -> None:
        """Deallocate the segment on the server."""
        self._client.free(self.shm_key)


class ControlBlock:
    """Shared training-progress block (paper Sec. III-E, "control info").

    Layout: one int64 slot per worker holding its completed-iteration count,
    followed by one stop-flag slot.  Workers publish their own slot and read
    everyone's to decide when to terminate.
    """

    STOP_CLEAR = 0

    def __init__(self, array: RemoteArray, num_workers: int) -> None:
        expected = num_workers + 1
        if array.count != expected or array.dtype != np.dtype("int64"):
            raise ValueError(
                f"control block needs {expected} int64 slots, "
                f"got {array.count} x {array.dtype}"
            )
        self._array = array
        self.num_workers = num_workers

    @classmethod
    def create(
        cls, client: SMBClient, name: str, num_workers: int
    ) -> "ControlBlock":
        """Master-side creation of the control segment."""
        array = client.create_array(name, num_workers + 1, dtype="int64")
        return cls(array, num_workers)

    @classmethod
    def attach(
        cls, client: SMBClient, name: str, shm_key: int, num_workers: int
    ) -> "ControlBlock":
        """Slave-side attachment using the broadcast SHM key."""
        array = client.attach_array(
            name, shm_key, num_workers + 1, dtype="int64"
        )
        return cls(array, num_workers)

    @property
    def shm_key(self) -> int:
        """Creation key to broadcast to other workers."""
        return self._array.shm_key

    def publish_progress(self, rank: int, iteration: int) -> None:
        """Record that ``rank`` has completed ``iteration`` iterations."""
        if not 0 <= rank < self.num_workers:
            raise ValueError(f"rank {rank} out of range")
        value = np.asarray([iteration], dtype=np.int64)
        self._array._client.write(
            self._array.access_key, value, offset=rank * 8
        )

    def read_progress(self) -> np.ndarray:
        """All workers' completed-iteration counters."""
        return self._array.read()[: self.num_workers]

    def signal_stop(self, code: int = 1) -> None:
        """Raise the shared stop flag with a nonzero reason code."""
        if code == self.STOP_CLEAR:
            raise ValueError("stop code must be nonzero")
        value = np.asarray([code], dtype=np.int64)
        self._array._client.write(
            self._array.access_key, value, offset=self.num_workers * 8
        )

    def stop_code(self) -> int:
        """Current stop flag (0 means keep training)."""
        return int(self._array.read()[self.num_workers])
