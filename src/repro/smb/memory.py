"""Remote shared-memory segments and the server-side memory pool.

This module models the memory half of the Soft Memory Box: a *memory
providing node* grants a fixed amount of RAM, and distributed workers carve
it into named :class:`Segment` objects.  Two kinds of keys exist, mirroring
the paper's Fig. 2:

* the **SHM key** — handed out at creation time and broadcast by the master
  worker to everyone who should share the segment;
* the **access key** — returned by the server when a worker *attaches* the
  segment, standing in for the Infiniband remote key that enables RDMA.

Segments are byte-addressed (the SMB server stores bytes, not tensors); the
client library layers dtype views on top.  Each segment carries a
monotonically increasing *version* so workers can wait for updates, which is
how ShmCaffe shares training-progress control info.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor, wait as _futures_wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from .errors import (
    AccessDeniedError,
    CapacityError,
    QuotaExceededError,
    SegmentExistsError,
    SegmentRangeError,
    UnknownKeyError,
)

#: Default granted memory of a pool, matching the paper's 256 GB memory
#: server scaled down to something a laptop test suite can allocate.
DEFAULT_POOL_CAPACITY = 1 << 30  # 1 GiB

#: The legacy namespace every pre-tenancy caller lands in.  Its segments
#: keep their bare names on the wire and in snapshots, so single-job
#: deployments (and their journals) are bit-compatible with PR 7.
DEFAULT_TENANT = "default"


def _validate_tenant(tenant: str) -> None:
    if not tenant or "/" in tenant:
        raise ValueError(f"invalid tenant name: {tenant!r}")

#: Accumulates moving at least this many bytes are split into chunks and
#: applied on the shared worker pool below.  Numpy releases the GIL for
#: the element-wise add, so disjoint chunks genuinely run in parallel;
#: chunk results are bit-exact because each element is touched by exactly
#: one chunk.  Below the threshold the fork/join overhead costs more than
#: the copy saves.
PARALLEL_ACCUMULATE_BYTES = 4 << 20  # 4 MiB

#: CPU niceness of bulk-lane threads (accumulate chunk workers here, and
#: the server's request worker pool).  Bulk transfers are
#: throughput-bound and tolerate scheduling delay; small control ops are
#: latency-bound and do not.  Demoting only the bulk threads lets the OS
#: scheduler enforce that split whenever the machine is CPU-saturated: a
#: tenant streaming whole-model accumulates cannot starve another
#: tenant's 1 KiB reads off the run queue.  On an idle machine niceness
#: has no effect, so bulk throughput is unchanged when there is no one
#: to be fair to.
BULK_LANE_NICE = 10

_ACCUMULATE_WORKERS = max(2, min(8, (os.cpu_count() or 2)))
_accumulate_pool: Optional[ThreadPoolExecutor] = None
_accumulate_pool_lock = threading.Lock()


def enter_bulk_priority(nice: int = BULK_LANE_NICE) -> None:
    """Demote the calling thread to background (bulk-lane) CPU priority.

    Linux exposes per-thread niceness through ``setpriority`` on the
    thread id; lowering priority never needs privileges.  Platforms (or
    sandboxes) without the call simply keep default priority — fairness
    then degrades gracefully to the deficit-round-robin queueing alone.
    """
    try:
        os.setpriority(  # type: ignore[attr-defined]
            os.PRIO_PROCESS, threading.get_native_id(), nice
        )
    except (AttributeError, OSError):  # non-Linux, or denied by sandbox
        pass


def _accumulate_executor() -> ThreadPoolExecutor:
    global _accumulate_pool
    if _accumulate_pool is None:
        with _accumulate_pool_lock:
            if _accumulate_pool is None:
                _accumulate_pool = ThreadPoolExecutor(
                    max_workers=_ACCUMULATE_WORKERS,
                    thread_name_prefix="smb-accum",
                    initializer=enter_bulk_priority,
                )
    return _accumulate_pool


def _parallel_add(dst: np.ndarray, src: np.ndarray, scale: float) -> None:
    """``dst += scale * src`` split over the accumulate pool.

    Called with both segment locks held, so the per-destination
    exclusivity the paper requires is preserved — only the element-wise
    add itself is parallelised.  Chunks are disjoint element ranges, so
    the result is bit-exact with the serial loop.
    """
    total = dst.size
    chunks = min(_ACCUMULATE_WORKERS, max(1, total // (1 << 18)))
    if chunks <= 1:
        if scale == 1.0:
            dst += src
        else:
            dst += scale * src
        return
    step = -(-total // chunks)  # ceil division

    def _add(lo: int) -> None:
        hi = min(lo + step, total)
        if scale == 1.0:
            dst[lo:hi] += src[lo:hi]
        else:
            dst[lo:hi] += scale * src[lo:hi]

    pool = _accumulate_executor()
    futures = [pool.submit(_add, lo) for lo in range(0, total, step)]
    done, _ = _futures_wait(futures)
    for future in done:
        future.result()  # propagate the first chunk failure, if any


class SegmentWaiter:
    """One registered update-notification callback (:meth:`Segment.add_waiter`).

    Three things race to finish a waiter — the version bump that
    satisfies it, a timeout, and connection teardown — so completion is
    claim-based: :meth:`claim` returns ``True`` exactly once, and only
    the winner acts.
    """

    __slots__ = ("threshold", "_callback", "_lock", "_claimed")

    def __init__(self, threshold: int, callback: Callable[[int], None]) -> None:
        self.threshold = threshold
        self._callback = callback
        self._lock = threading.Lock()
        self._claimed = False

    def claim(self) -> bool:
        """Take ownership of completing this waiter; ``True`` exactly once."""
        with self._lock:
            if self._claimed:
                return False
            self._claimed = True
            return True

    def fire(self, version: int) -> None:
        """Invoke the callback if nothing else completed the waiter first."""
        if self.claim():
            self._callback(version)


def _key_sequence(start: int) -> Iterator[int]:
    """Yield an endless stream of distinct integer keys.

    Keys are deliberately non-zero and non-sequential-looking (a stride is
    applied) so tests that confuse SHM keys with access keys fail loudly
    instead of accidentally working.
    """
    return itertools.count(start, 2654435761 % (1 << 31))


@dataclass
class Segment:
    """One allocation inside the SMB server's granted memory.

    Attributes:
        name: Human-readable segment name chosen by its creator.
        shm_key: Creation key; broadcast to workers that should share this.
        buffer: Backing byte storage.  Dtype views are layered client-side.
        version: Bumped on every mutation; supports update notification.
        owner: Identifier of the creating client (informational).
    """

    name: str
    shm_key: int
    buffer: np.ndarray
    owner: str = ""
    tenant: str = DEFAULT_TENANT
    version: int = 0
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    updated: threading.Condition = field(init=False, repr=False)
    _waiters: List[SegmentWaiter] = field(
        init=False, default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        self.updated = threading.Condition(self.lock)

    @property
    def size(self) -> int:
        """Segment size in bytes."""
        return int(self.buffer.nbytes)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise SegmentRangeError(offset, nbytes, self.size)

    def read(self, offset: int, nbytes: int) -> bytes:
        """Return ``nbytes`` bytes starting at ``offset`` (RDMA Read)."""
        self._check_range(offset, nbytes)
        with self.lock:
            return self.buffer[offset:offset + nbytes].tobytes()

    def read_into(self, offset: int, out: memoryview) -> int:
        """Copy ``len(out)`` bytes starting at ``offset`` straight into
        ``out`` (the zero-copy RDMA Read: one copy, segment to caller
        buffer, taken under the segment lock for a consistent snapshot).

        Returns the number of bytes copied.
        """
        nbytes = len(out)
        self._check_range(offset, nbytes)
        with self.lock:
            np.frombuffer(out, dtype=np.uint8)[:] = (
                self.buffer[offset:offset + nbytes]
            )
        return nbytes

    def install(
        self, data: bytes, version: int, force: bool = False
    ) -> int:
        """Overwrite the whole buffer and *set* the version (mirroring).

        Unlike :meth:`write`, which bumps the local counter, this stamps
        the version a *primary* server assigned — so a replica's pool
        reports the same version numbers as the pool it mirrors and
        version-pinned reads line up across the tiers.  Waiters fire
        exactly as for a write.  A stale install (``version`` at or
        below the current one) is dropped so racing subscription reads
        can never roll a replica backwards; ``force=True`` overrides
        that guard when the primary itself regressed (recovery resync).
        """
        self._check_range(0, len(data))
        with self.lock:
            if not force and version <= self.version:
                return self.version
            self.buffer[: len(data)] = np.frombuffer(data, dtype=np.uint8)
            self.version = version
            self.updated.notify_all()
            ready = self._take_ready_waiters()
        for waiter in ready:
            waiter.fire(version)
        return version

    def write(self, offset: int, data: bytes) -> int:
        """Store ``data`` at ``offset`` (RDMA Write); returns new version."""
        self._check_range(offset, len(data))
        with self.lock:
            self.buffer[offset:offset + len(data)] = np.frombuffer(
                data, dtype=np.uint8
            )
            self.version += 1
            self.updated.notify_all()
            version = self.version
            ready = self._take_ready_waiters()
        for waiter in ready:
            waiter.fire(version)
        return version

    def accumulate_from(
        self,
        src: "Segment",
        dtype: str = "float32",
        scale: float = 1.0,
        offset: int = 0,
        src_offset: int = 0,
        count: Optional[int] = None,
    ) -> int:
        """Add ``scale * src`` into this segment element-wise.

        This is the one piece of compute the SMB server offers (eq. (7) of
        the paper runs here: ``W_g += ΔW_x``).  Locks are taken in a global
        order (by ``shm_key``) so concurrent accumulates between overlapping
        segment pairs cannot deadlock.

        Args:
            src: Source segment whose contents are added into this one.
            dtype: Element type both regions are interpreted as.
            scale: Scalar multiplier applied to the source elements.
            offset: Byte offset into this (destination) segment.
            src_offset: Byte offset into the source segment.
            count: Number of *elements*; defaults to the rest of the source.

        Returns:
            The destination segment's new version number.
        """
        itemsize = np.dtype(dtype).itemsize
        if count is None:
            count = (src.size - src_offset) // itemsize
        nbytes = count * itemsize
        self._check_range(offset, nbytes)
        src._check_range(src_offset, nbytes)

        first, second = sorted((self, src), key=lambda s: s.shm_key)
        with first.lock, second.lock:
            dst_view = self.buffer[offset:offset + nbytes].view(dtype)
            src_view = src.buffer[src_offset:src_offset + nbytes].view(dtype)
            # Aliased operands (self-accumulate, or overlapping ranges of
            # one segment) must take the serial path: numpy's ufunc
            # overlap detection buffers the source there, while disjoint
            # chunk threads would read ranges another chunk is writing.
            # Both views are contiguous 1-D slices, so may_share_memory's
            # bounds check is an exact interval-overlap test.
            if nbytes >= PARALLEL_ACCUMULATE_BYTES and not np.may_share_memory(
                dst_view, src_view
            ):
                _parallel_add(dst_view, src_view, scale)
            elif scale == 1.0:
                dst_view += src_view
            else:
                dst_view += scale * src_view
            self.version += 1
            self.updated.notify_all()
            version = self.version
            ready = self._take_ready_waiters()
        for waiter in ready:
            waiter.fire(version)
        return version

    def wait_for_update(
        self, version: int, timeout: Optional[float] = None
    ) -> int:
        """Block until the segment version exceeds ``version``.

        Returns the current version, which may still equal ``version`` if
        ``timeout`` expired; callers decide whether that is an error.
        """
        with self.lock:
            self.updated.wait_for(
                lambda: self.version > version, timeout=timeout
            )
            return self.version

    def add_waiter(
        self, version: int, callback: Callable[[int], None]
    ) -> Optional[SegmentWaiter]:
        """Register ``callback(new_version)`` to fire once the segment
        version exceeds ``version``.

        This is the non-blocking counterpart of :meth:`wait_for_update`:
        an event-loop server registers a waiter instead of parking a
        thread on the condition.  Returns the waiter handle, or ``None``
        if the version has already advanced (the caller should answer
        immediately).  The callback runs on the mutating thread with
        **no segment locks held**; timeouts and cancellation are the
        caller's job (:meth:`SegmentWaiter.claim` arbitrates the race).
        """
        with self.lock:
            if self.version > version:
                return None
            waiter = SegmentWaiter(version, callback)
            self._waiters.append(waiter)
            return waiter

    def remove_waiter(self, waiter: SegmentWaiter) -> None:
        """Deregister a waiter (timeout or connection teardown)."""
        with self.lock:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass  # already fired and pruned

    def _take_ready_waiters(self) -> List[SegmentWaiter]:
        """Pop every waiter the current version satisfies (lock held)."""
        if not self._waiters:
            return []
        ready = [w for w in self._waiters if self.version > w.threshold]
        if ready:
            self._waiters = [
                w for w in self._waiters if self.version <= w.threshold
            ]
        return ready


@dataclass
class TenantGrant:
    """Per-namespace admission state: the byte quota and what it holds.

    ``quota is None`` means the namespace is bounded only by the pool's
    granted capacity — the legacy single-job behaviour, and what an
    unknown namespace auto-vivifies to on first contact.
    """

    name: str
    quota: Optional[int] = None
    used: int = 0
    segments: int = 0

    def stats(self) -> Dict[str, object]:
        return {
            "quota": self.quota,
            "used": self.used,
            "segments": self.segments,
        }


class MemoryPool:
    """Accounting and lookup for every segment in one SMB server.

    The pool enforces the granted-capacity limit, mints SHM keys and access
    keys, and maps both key kinds back to segments.  All public methods are
    thread-safe; the server calls them from many client-handler threads.

    Segments live in per-tenant *namespaces*: a segment created by tenant
    ``t`` is stored under the qualified name ``t/name`` (the ``default``
    tenant keeps bare names for wire- and journal-compatibility with
    single-job deployments).  Name-based operations (create / by_name /
    free / segments) are namespace-scoped; key-based operations are not —
    SHM and access keys act as capabilities, exactly like the Infiniband
    rkeys they stand in for.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._by_shm_key: Dict[int, Segment] = {}
        self._by_name: Dict[str, Segment] = {}
        self._by_access_key: Dict[int, Segment] = {}
        self._shm_keys = _key_sequence(start=0x5348_0001)
        self._access_keys = _key_sequence(start=0x4143_0001)
        self._used = 0
        self._tenants: Dict[str, TenantGrant] = {
            DEFAULT_TENANT: TenantGrant(DEFAULT_TENANT)
        }
        # Counters of how many keys of each kind were ever minted, so a
        # restored pool can advance its generators past every key a
        # previous server life handed out (see advance_keys).
        self._shm_minted = 0
        self._access_minted = 0

    # -- tenancy ------------------------------------------------------------

    @staticmethod
    def qualify(tenant: str, name: str) -> str:
        """Map a tenant-local segment name to its pool-wide name."""
        if tenant == DEFAULT_TENANT:
            return name
        return f"{tenant}/{name}"

    @staticmethod
    def split_name(qualified: str) -> tuple:
        """Invert :meth:`qualify`: ``(tenant, bare_name)``.

        Exact for names :meth:`qualify` produced for *named* tenants,
        because :meth:`create` rejects ``/`` inside their bare names.
        Default-tenant names may legitimately contain ``/`` (the legacy
        elastic-job convention prefixes segment names with
        ``"<job>/"``), so callers that know the owning tenant — restore
        paths, scoped listings — must pass it explicitly instead of
        parsing.
        """
        if "/" in qualified:
            tenant, _, bare = qualified.partition("/")
            return tenant, bare
        return DEFAULT_TENANT, qualified

    def _grant(self, tenant: str) -> TenantGrant:
        """Fetch (auto-vivifying) a tenant's grant; ``_lock`` held."""
        grant = self._tenants.get(tenant)
        if grant is None:
            grant = TenantGrant(tenant)
            self._tenants[tenant] = grant
        return grant

    def create_tenant(
        self, tenant: str, quota: Optional[int] = None
    ) -> TenantGrant:
        """Create (or re-grant) a namespace with a byte quota.

        Idempotent on purpose — journal replay re-applies TENANT_CREATE
        records, and re-granting is how an admin resizes a quota.  A
        quota below the namespace's current usage is allowed: existing
        segments stay, further CREATEs are denied until usage drops.
        """
        _validate_tenant(tenant)
        if quota is not None and quota <= 0:
            raise ValueError(f"quota must be positive, got {quota}")
        with self._lock:
            grant = self._grant(tenant)
            grant.quota = quota
            return grant

    def tenants(self) -> Dict[str, TenantGrant]:
        """Snapshot of every namespace grant, keyed by tenant name."""
        with self._lock:
            return dict(self._tenants)

    def tenant_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-namespace admission stats (quota / used / segment count)."""
        with self._lock:
            return {
                name: grant.stats()
                for name, grant in sorted(self._tenants.items())
            }

    @property
    def capacity(self) -> int:
        """Total granted bytes."""
        return self._capacity

    @property
    def used(self) -> int:
        """Bytes currently allocated to live segments."""
        with self._lock:
            return self._used

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        with self._lock:
            return self._capacity - self._used

    def create(
        self,
        name: str,
        nbytes: int,
        owner: str = "",
        tenant: str = DEFAULT_TENANT,
    ) -> Segment:
        """Create a named segment and return it (master-worker operation).

        Admission is checked against the *tenant's* quota grant before the
        pool capacity, so one namespace cannot starve another of its
        granted headroom.

        Raises:
            SegmentExistsError: If ``name`` is already live in this tenant.
            QuotaExceededError: If the tenant's quota cannot fit ``nbytes``.
            CapacityError: If the pool cannot fit ``nbytes`` more.
            ValueError: If ``nbytes`` is not positive, or a *named*
                tenant's ``name`` contains the namespace separator ``/``.

        The default tenant may use ``/`` in names — the legacy
        elastic-job convention namespaces segments client-side with a
        ``"<job>/"`` prefix, and those deployments must keep working
        unchanged.  A legacy name that happens to spell an existing
        named tenant's qualified name collides in the shared directory
        and raises :class:`SegmentExistsError`, never silently aliases.
        """
        if nbytes <= 0:
            raise ValueError(f"segment size must be positive, got {nbytes}")
        _validate_tenant(tenant)
        if tenant != DEFAULT_TENANT and "/" in name:
            raise ValueError(f"segment name must not contain '/': {name!r}")
        qualified = self.qualify(tenant, name)
        with self._lock:
            if qualified in self._by_name:
                raise SegmentExistsError(qualified)
            grant = self._grant(tenant)
            if grant.quota is not None and grant.used + nbytes > grant.quota:
                raise QuotaExceededError(
                    tenant, nbytes, grant.quota, grant.used
                )
            if self._used + nbytes > self._capacity:
                raise CapacityError(nbytes, self._capacity - self._used)
            segment = Segment(
                name=qualified,
                shm_key=next(self._shm_keys),
                buffer=np.zeros(nbytes, dtype=np.uint8),
                owner=owner,
                tenant=tenant,
            )
            self._shm_minted += 1
            self._by_shm_key[segment.shm_key] = segment
            self._by_name[qualified] = segment
            self._used += nbytes
            grant.used += nbytes
            grant.segments += 1
            return segment

    def attach(self, shm_key: int, expected_nbytes: Optional[int] = None) -> int:
        """Grant an access key for an existing segment (slave operation).

        Mirrors Fig. 2: a worker presents the broadcast SHM key (plus the
        size it expects, which is validated) and receives the access key it
        will use for RDMA-style reads/writes.
        """
        segment = self.by_shm_key(shm_key)
        if expected_nbytes is not None and expected_nbytes != segment.size:
            raise SegmentRangeError(0, expected_nbytes, segment.size)
        with self._lock:
            access_key = next(self._access_keys)
            self._access_minted += 1
            self._by_access_key[access_key] = segment
            return access_key

    def by_shm_key(self, shm_key: int) -> Segment:
        """Look a segment up by its creation key."""
        with self._lock:
            try:
                return self._by_shm_key[shm_key]
            except KeyError:
                raise UnknownKeyError(shm_key) from None

    def by_access_key(self, access_key: int) -> Segment:
        """Look a segment up by a previously granted access key."""
        with self._lock:
            try:
                return self._by_access_key[access_key]
            except KeyError:
                raise UnknownKeyError(access_key) from None

    def by_name(
        self, name: str, tenant: Optional[str] = DEFAULT_TENANT
    ) -> Segment:
        """Look a segment up by its tenant-local name.

        ``tenant=None`` treats ``name`` as already qualified (server
        internals, diagnostics); any other value scopes the lookup to
        that namespace.
        """
        qualified = name if tenant is None else self.qualify(tenant, name)
        with self._lock:
            try:
                return self._by_name[qualified]
            except KeyError:
                raise UnknownKeyError(0) from None

    def free(self, shm_key: int, tenant: Optional[str] = None) -> None:
        """Release a segment and every access key pointing at it.

        ``tenant`` scopes the release: a namespace may only free its own
        segments (``None`` skips the check — server internals and the
        legacy single-job path).
        """
        with self._lock:
            segment = self._by_shm_key.get(shm_key)
            if segment is None:
                raise UnknownKeyError(shm_key)
            if tenant is not None and segment.tenant != tenant:
                raise AccessDeniedError(
                    f"segment {segment.name!r} belongs to tenant "
                    f"{segment.tenant!r}, not {tenant!r}"
                )
            del self._by_shm_key[shm_key]
            del self._by_name[segment.name]
            stale = [
                key for key, seg in self._by_access_key.items()
                if seg is segment
            ]
            for key in stale:
                del self._by_access_key[key]
            self._used -= segment.size
            grant = self._tenants.get(segment.tenant)
            if grant is not None:
                grant.used = max(0, grant.used - segment.size)
                grant.segments = max(0, grant.segments - 1)

    @property
    def shm_minted(self) -> int:
        """How many SHM keys this pool has ever minted."""
        with self._lock:
            return self._shm_minted

    @property
    def access_minted(self) -> int:
        """How many access keys this pool has ever minted."""
        with self._lock:
            return self._access_minted

    def restore_segment(
        self,
        name: str,
        shm_key: int,
        data: np.ndarray,
        version: int = 0,
        owner: str = "",
        tenant: Optional[str] = None,
    ) -> Segment:
        """Rebuild a segment from durable state, keeping its SHM key.

        Recovery must preserve SHM keys: clients re-attach to a restarted
        server by the SHM key the master broadcast before the crash, so
        the key is segment identity, not a per-life handle.  Call
        :meth:`advance_keys` afterwards so freshly minted keys never
        collide with restored ones.

        ``tenant`` is the namespace to account the segment to.  Pass it
        whenever the durable record carries it; the ``None`` fallback
        parses the qualified name, which misreads a legacy default-tenant
        name like ``"job1/W_g"`` as belonging to tenant ``job1``.
        """
        nbytes = int(data.nbytes)
        if tenant is None:
            tenant, _ = self.split_name(name)
        with self._lock:
            if name in self._by_name:
                raise SegmentExistsError(name)
            if shm_key in self._by_shm_key:
                raise SegmentExistsError(f"shm_key {shm_key:#x}")
            if self._used + nbytes > self._capacity:
                raise CapacityError(nbytes, self._capacity - self._used)
            segment = Segment(
                name=name,
                shm_key=shm_key,
                buffer=np.ascontiguousarray(data, dtype=np.uint8).reshape(-1),
                owner=owner,
                tenant=tenant,
            )
            segment.version = version
            self._by_shm_key[shm_key] = segment
            self._by_name[name] = segment
            self._used += nbytes
            grant = self._grant(tenant)
            grant.used += nbytes
            grant.segments += 1
            return segment

    def reseed_access_keys(self, salt: int) -> None:
        """Mint future access keys from a salted, disjoint subsequence.

        Access keys die with the server process, but clients may still
        *present* pre-crash keys after a recovery.  The snapshot's
        ``access_minted`` count undershoots (attaches are not journaled),
        so advancing the generator is not enough: a recovered pool could
        re-mint a key some client still holds for a *different* segment,
        and that stale key would silently resolve instead of raising
        :class:`UnknownKeyError` — the error the client re-attach logic
        keys off.  Both key sequences are arithmetic with the same
        stride, so any ``0 < salt < stride`` (the server uses the
        recovery epoch) yields a sequence provably disjoint from every
        earlier life's.
        """
        if salt < 0:
            raise ValueError(f"salt must be non-negative, got {salt}")
        with self._lock:
            self._access_keys = _key_sequence(start=0x4143_0001 + salt)

    def advance_keys(self, shm_minted: int, access_minted: int) -> None:
        """Skip the key generators past a previous life's mint counts.

        The generators are deterministic arithmetic sequences, so a
        restored pool that replayed ``shm_minted`` creations would
        otherwise re-mint exactly the keys the dead server handed out —
        colliding with restored SHM keys and, worse, making a client's
        stale access key silently resolve to the wrong segment.
        """
        with self._lock:
            while self._shm_minted < shm_minted:
                next(self._shm_keys)
                self._shm_minted += 1
            while self._access_minted < access_minted:
                next(self._access_keys)
                self._access_minted += 1

    def segments(self, tenant: Optional[str] = None) -> Dict[str, Segment]:
        """Snapshot of live segments keyed by (qualified) name.

        ``tenant`` restricts the view to one namespace; ``None`` returns
        every segment in the pool (durability, shutdown, diagnostics).
        """
        with self._lock:
            if tenant is None:
                return dict(self._by_name)
            return {
                name: seg for name, seg in self._by_name.items()
                if seg.tenant == tenant
            }

    def for_each(self, fn: Callable[[Segment], None]) -> None:
        """Apply ``fn`` to every live segment (used by server shutdown)."""
        for segment in self.segments().values():
            fn(segment)
