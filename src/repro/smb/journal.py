"""Durability for the SMB server: snapshots, an op journal, rendezvous.

The Soft Memory Box is the one component every worker depends on; losing
the server process must not discard ``W_g`` (the elastic centre EASGD
anchors the fleet to).  This module gives a server a *journal directory*
holding three kinds of files:

* ``snapshot-<seq>.npz`` — an atomically written, versioned image of the
  whole memory pool: every segment's bytes, name, SHM key, version and
  owner, plus the pool's key-mint counters and the server *epoch*.
  Snapshots are written on an interval and on the ``SNAPSHOT`` opcode.
* ``journal-<seq>.log`` — an append-only log of every mutating operation
  (CREATE/WRITE/ACCUMULATE/FREE) applied *after* snapshot ``seq``, framed
  as ordinary protocol :class:`~repro.smb.protocol.Message` records with
  **SHM keys** in the key slots (access keys die with the process).
  Replaying the journal on top of its snapshot reproduces the pool
  bit-exactly, versions included, so a ``kill -9`` loses nothing.
* ``endpoint.json`` — the rendezvous file: the address (and epoch) the
  live server currently listens on.  A restarted server may land on a
  new port; clients re-resolve through this file during their
  ``server_down`` grace window.

Atomicity: snapshots go through ``<name>.tmp`` + fsync + ``os.replace``;
journal appends are flushed per record and a truncated tail record (a
crash mid-append) is tolerated — replay stops at the first incomplete
record, which by construction is an operation whose response was never
sent.

Recovery picks the highest-``seq`` snapshot that loads cleanly, replays
its journal, and bumps the epoch, so every restart is observable to
clients that care (the ``ATTACH`` response carries the epoch).
"""

from __future__ import annotations

import json
import logging
import os
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .errors import SMBError
from .memory import DEFAULT_TENANT
from .protocol import HEADER_FORMAT, HEADER_SIZE, Message, Op

logger = logging.getLogger(__name__)

PathLike = Union[str, os.PathLike]

#: Current snapshot format; bumped on incompatible layout changes.
SNAPSHOT_FORMAT = 1

#: File-name patterns inside a journal directory.
SNAPSHOT_PATTERN = "snapshot-{seq:08d}.npz"
JOURNAL_PATTERN = "journal-{seq:08d}.log"
RENDEZVOUS_NAME = "endpoint.json"


class JournalError(SMBError):
    """A journal directory held no usable state or corrupt metadata."""


# -- atomic JSON publication -------------------------------------------------
#
# Shared by the rendezvous file and the elastic-membership registry
# (:mod:`repro.smb.membership`): both are small JSON documents that other
# processes poll while a writer republishes them, so every publication
# must go write-temp + ``os.replace`` — a reader either sees the previous
# complete document or the new complete document, never a partial write.

def publish_json(path: PathLike, document: Dict[str, object]) -> None:
    """Atomically replace ``path`` with ``document`` serialised as JSON.

    The temp file lands in the destination directory (``os.replace``
    requires same-filesystem) and is unlinked on failure, so a crashed
    writer leaves the previous published document untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(document))
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: PathLike) -> Optional[Dict[str, object]]:
    """Load a published JSON document; ``None`` when unusable.

    Missing or unreadable files (and non-object payloads) return ``None``
    so pollers fall back and try again on their next attempt; with
    :func:`publish_json` on the write side a *partial* document is never
    observable.
    """
    try:
        body = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return body if isinstance(body, dict) else None


# -- rendezvous --------------------------------------------------------------

def write_rendezvous(
    path: PathLike, address: Tuple[str, int], epoch: int = 0
) -> None:
    """Atomically publish a server's current address (and epoch)."""
    publish_json(path, {
        "host": address[0], "port": address[1], "epoch": epoch,
        "pid": os.getpid(),
    })


def read_rendezvous(path: PathLike) -> Optional[Tuple[str, int]]:
    """Resolve ``(host, port)`` from a rendezvous file; None if unusable.

    Unreadable, missing, or half-written files return ``None`` so callers
    (the transport's reconnect loop) fall back to their static address
    and try again on the next attempt.
    """
    body = read_json(path)
    if body is None:
        return None
    try:
        return str(body["host"]), int(body["port"])
    except (KeyError, ValueError, TypeError):
        return None


# -- snapshot payload --------------------------------------------------------

@dataclass
class SegmentImage:
    """One segment as captured in (or restored from) a snapshot."""

    name: str
    shm_key: int
    data: np.ndarray  # uint8 bytes
    version: int
    owner: str = ""
    #: Owning namespace, carried explicitly because the qualified name
    #: alone is ambiguous: a legacy default-tenant name like
    #: ``"job1/W_g"`` is indistinguishable from tenant ``job1``'s ``W_g``.
    tenant: str = DEFAULT_TENANT


@dataclass
class PoolImage:
    """Everything needed to rebuild a memory pool bit-exactly."""

    capacity: int
    epoch: int
    seq: int
    shm_minted: int
    access_minted: int
    segments: List[SegmentImage] = field(default_factory=list)
    #: Tenant grants as ``{"name": str, "quota": Optional[int]}`` —
    #: usage is not stored; it is re-derived from the restored segments'
    #: tenant fields, which keeps the snapshot non-redundant.
    tenants: List[Dict[str, object]] = field(default_factory=list)


def _atomic_savez(path: Path, payload: Dict[str, np.ndarray]) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DurabilityStore:
    """Snapshot + journal persistence for one server's memory pool.

    Not thread-safe by itself: the server serialises all calls behind its
    journal lock (mutation order in the journal must match effect order,
    which the coarse lock guarantees).

    Args:
        directory: The journal directory; created if missing.
        journal_ops: Append mutations between snapshots.  With ``False``
            only snapshots persist and a crash loses every delta since
            the last one (the documented lost-delta bound); with ``True``
            (default) recovery is bit-exact.
    """

    def __init__(self, directory: PathLike, journal_ops: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_ops = journal_ops
        self.seq = 0
        self._journal_file = None

    # -- write path -------------------------------------------------------

    def write_snapshot(self, image: PoolImage) -> int:
        """Persist a pool image as the next snapshot; returns its seq.

        The matching (empty) journal is opened afterwards, so any
        mutation that lands after this call is replayed on top of this
        snapshot during recovery.
        """
        self.seq += 1
        image.seq = self.seq
        meta = {
            "format": SNAPSHOT_FORMAT,
            "seq": image.seq,
            "epoch": image.epoch,
            "capacity": image.capacity,
            "shm_minted": image.shm_minted,
            "access_minted": image.access_minted,
            "tenants": image.tenants,
            "segments": [
                {
                    "name": seg.name,
                    "shm_key": seg.shm_key,
                    "version": seg.version,
                    "owner": seg.owner,
                    "nbytes": int(seg.data.nbytes),
                    "tenant": seg.tenant,
                }
                for seg in image.segments
            ],
        }
        payload: Dict[str, np.ndarray] = {
            "__meta__": np.frombuffer(
                json.dumps(meta).encode(), dtype=np.uint8
            ).copy(),
        }
        for seg in image.segments:
            payload[f"seg/{seg.name}"] = seg.data
        path = self.directory / SNAPSHOT_PATTERN.format(seq=self.seq)
        _atomic_savez(path, payload)
        self._open_journal(self.seq)
        self._prune(keep_before=self.seq)
        return self.seq

    def _open_journal(self, seq: int) -> None:
        if self._journal_file is not None:
            self._journal_file.close()
            self._journal_file = None
        if not self.journal_ops:
            return
        path = self.directory / JOURNAL_PATTERN.format(seq=seq)
        self._journal_file = open(path, "ab")

    def append(self, record: Message) -> None:
        """Durably log one mutating operation (SHM keys in key slots)."""
        if self._journal_file is None:
            return
        self._journal_file.write(record.encode())
        self._journal_file.flush()

    def _prune(self, keep_before: int) -> None:
        """Drop superseded snapshot/journal generations (keep latest 2)."""
        for kind in ("snapshot-*.npz", "journal-*.log"):
            for path in sorted(self.directory.glob(kind))[:-2]:
                try:
                    path.unlink()
                except OSError:
                    pass

    def close(self) -> None:
        if self._journal_file is not None:
            self._journal_file.close()
            self._journal_file = None

    # -- read path --------------------------------------------------------

    def has_state(self) -> bool:
        """Whether the directory holds at least one snapshot."""
        return bool(sorted(self.directory.glob("snapshot-*.npz")))

    def recover(self) -> PoolImage:
        """Load the newest usable snapshot and replay its journal.

        Returns the recovered :class:`PoolImage` (journal already
        applied); raises :class:`JournalError` when no snapshot loads.
        The store's own seq counter continues from the recovered seq so
        the next snapshot supersedes it.
        """
        candidates = sorted(self.directory.glob("snapshot-*.npz"),
                            reverse=True)
        last_error: Optional[Exception] = None
        for path in candidates:
            try:
                image = _load_snapshot(path)
            except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
                last_error = exc
                logger.warning("skipping unreadable snapshot %s: %s",
                               path.name, exc)
                continue
            journal = self.directory / JOURNAL_PATTERN.format(seq=image.seq)
            if journal.exists():
                _replay_journal(journal, image)
            self.seq = image.seq
            return image
        raise JournalError(
            f"no usable snapshot in {self.directory}"
            + (f" (last error: {last_error})" if last_error else "")
        )


def _load_snapshot(path: Path) -> PoolImage:
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode())
        if meta.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {meta.get('format')!r}"
            )
        segments = []
        for entry in meta["segments"]:
            data = archive[f"seg/{entry['name']}"].astype(np.uint8).copy()
            if data.nbytes != entry["nbytes"]:
                raise ValueError(
                    f"segment {entry['name']!r}: snapshot holds "
                    f"{data.nbytes} bytes, metadata says {entry['nbytes']}"
                )
            segments.append(SegmentImage(
                name=entry["name"],
                shm_key=int(entry["shm_key"]),
                data=data,
                version=int(entry["version"]),
                owner=str(entry.get("owner", "")),
                # Pre-tenancy snapshots carry no tenant key; everything
                # they hold lived in the implicit default namespace.
                tenant=str(entry.get("tenant", DEFAULT_TENANT)),
            ))
    return PoolImage(
        capacity=int(meta["capacity"]),
        epoch=int(meta["epoch"]),
        seq=int(meta["seq"]),
        shm_minted=int(meta["shm_minted"]),
        access_minted=int(meta["access_minted"]),
        segments=segments,
        # Pre-tenancy snapshots carry no grants; they restore as a pool
        # holding only the implicit default namespace.
        tenants=[dict(entry) for entry in meta.get("tenants", [])],
    )


def _replay_journal(path: Path, image: PoolImage) -> None:
    """Apply journal records to a pool image, in order, tolerating a
    truncated tail (the crash may have landed mid-append)."""
    by_key: Dict[int, SegmentImage] = {
        seg.shm_key: seg for seg in image.segments
    }
    data = path.read_bytes()
    offset = 0
    applied = 0
    while offset + HEADER_SIZE <= len(data):
        header = data[offset:offset + HEADER_SIZE]
        paylen = struct.unpack(HEADER_FORMAT, header)[-1]
        end = offset + HEADER_SIZE + paylen
        if end > len(data):
            break  # truncated tail record: op never acked, drop it
        try:
            record = Message.decode(header, data[offset + HEADER_SIZE:end])
        except SMBError:
            break  # corrupt tail; everything before it already applied
        offset = end
        _apply_record(record, image, by_key)
        applied += 1
    if applied:
        logger.info("replayed %d journaled op(s) from %s", applied, path.name)


def _apply_record(
    record: Message,
    image: PoolImage,
    by_key: Dict[int, SegmentImage],
) -> None:
    if record.op is Op.CREATE:
        payload = bytes(record.payload)
        # ``offset`` carries the byte length of the ``"<tenant>/"``
        # prefix in the qualified name (0 = default namespace).  Replay
        # must not *parse* the name: a legacy default-tenant name may
        # itself contain ``/`` (the old client-side job-prefix
        # convention).  Pre-tenancy records have offset 0 and land in
        # the default namespace unchanged.
        tenant = (
            payload[:record.offset - 1].decode()
            if record.offset else DEFAULT_TENANT
        )
        seg = SegmentImage(
            name=payload.decode(),
            shm_key=record.key,
            data=np.zeros(record.count, dtype=np.uint8),
            version=0,
            tenant=tenant,
        )
        image.segments.append(seg)
        by_key[seg.shm_key] = seg
        image.shm_minted += 1
        return
    if record.op is Op.FREE:
        seg = by_key.pop(record.key, None)
        if seg is not None:
            image.segments.remove(seg)
        return
    if record.op is Op.TENANT_CREATE:
        name = record.payload.decode()
        quota: Optional[int] = record.count if record.count > 0 else None
        for entry in image.tenants:
            if entry.get("name") == name:
                entry["quota"] = quota
                return
        image.tenants.append({"name": name, "quota": quota})
        return
    seg = by_key.get(record.key)
    if seg is None:
        logger.warning("journal references unknown SHM key %#x; skipping",
                       record.key)
        return
    if record.op is Op.WRITE:
        seg.data[record.offset:record.offset + len(record.payload)] = (
            np.frombuffer(record.payload, dtype=np.uint8)
        )
        seg.version += 1
        return
    if record.op is Op.ACCUMULATE:
        src = by_key.get(record.key2)
        if src is None:
            logger.warning(
                "journal ACCUMULATE references unknown source %#x; skipping",
                record.key2,
            )
            return
        # The record payload carries the element dtype name; empty means
        # float32 (pre-dtype journals replay unchanged).
        dtype = bytes(record.payload).decode() if record.payload_nbytes else "float32"
        itemsize = np.dtype(dtype).itemsize
        count = record.count or (src.data.nbytes // itemsize)
        nbytes = count * itemsize
        dst_view = seg.data[record.offset:record.offset + nbytes].view(dtype)
        src_view = src.data[:nbytes].view(dtype)
        if record.scale == 1.0:
            dst_view += src_view
        else:
            dst_view += record.scale * src_view
        seg.version += 1
        return
    logger.warning("unexpected journal opcode %r; skipping", record.op)
