"""Exception hierarchy for the Soft Memory Box (SMB) framework.

The paper's SMB server is a thin remote-memory service: it can fail in a
small number of well-defined ways (unknown keys, exhausted capacity,
out-of-range accesses, protocol violations).  Every failure surfaces as a
subclass of :class:`SMBError` so callers can catch the whole family with one
``except`` clause.
"""

from __future__ import annotations


class SMBError(Exception):
    """Base class for all SMB failures."""


class SMBConnectionError(SMBError):
    """The transport to the SMB server failed (connect, send, or receive)."""


class SMBProtocolError(SMBError):
    """A malformed or unexpected message was seen on the wire."""


class UnknownKeyError(SMBError):
    """An SHM key or access key does not name a live segment."""

    def __init__(self, key: int) -> None:
        super().__init__(f"unknown SMB key: {key:#x}")
        self.key = key


class CapacityError(SMBError):
    """The server's granted memory pool cannot satisfy an allocation."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"cannot allocate {requested} bytes; only {available} available"
        )
        self.requested = requested
        self.available = available


class SegmentRangeError(SMBError):
    """A read/write/accumulate touched bytes outside a segment."""

    def __init__(self, offset: int, nbytes: int, size: int) -> None:
        super().__init__(
            f"access [{offset}, {offset + nbytes}) exceeds segment size {size}"
        )
        self.offset = offset
        self.nbytes = nbytes
        self.size = size


class SegmentExistsError(SMBError):
    """A named segment was created twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"segment already exists: {name!r}")
        self.name = name


class AccessDeniedError(SMBError):
    """An operation was attempted with a key lacking the required rights."""


class NotificationTimeout(SMBError):
    """A wait-for-update request expired before the segment changed."""

    def __init__(self, key: int, version: int, timeout: float) -> None:
        super().__init__(
            f"segment {key:#x} did not advance past version {version} "
            f"within {timeout:.3f}s"
        )
        self.key = key
        self.version = version
        self.timeout = timeout
