"""Exception hierarchy for the Soft Memory Box (SMB) framework.

The paper's SMB server is a thin remote-memory service: it can fail in a
small number of well-defined ways (unknown keys, exhausted capacity,
out-of-range accesses, protocol violations).  Every failure surfaces as a
subclass of :class:`SMBError` so callers can catch the whole family with one
``except`` clause.

Failures split into two fault classes the retry layer cares about:

* **transient** — the transport hiccuped (lost connection, injected fault,
  request timed out on the wire).  :func:`is_retryable` returns True and
  :class:`~repro.smb.retry.RetryPolicy` governs how often to try again.
* **fatal** — the server understood the request and rejected it (unknown
  key, capacity, range).  Retrying would return the same answer, so these
  propagate immediately.

Server-side errors cross the TCP wire via :func:`to_wire`/:func:`from_wire`,
which round-trip the *constructor arguments* so structured attributes (e.g.
:attr:`CapacityError.available`) survive the hop instead of being dropped by
a message-only reconstruction.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple, Type


class SMBError(Exception):
    """Base class for all SMB failures."""


class SMBConnectionError(SMBError):
    """The transport to the SMB server failed (connect, send, or receive).

    Transient by definition: the request may never have reached the server,
    so the retry layer treats this whole subtree (except
    :class:`TransportClosedError` and :class:`RetryExhaustedError`) as
    safe to try again.
    """


class TransportClosedError(SMBConnectionError):
    """The local transport was closed; no amount of retrying will help."""


class FaultInjectedError(SMBConnectionError):
    """A :class:`~repro.smb.faults.FaultInjectingTransport` fired (chaos)."""


class RetryExhaustedError(SMBConnectionError):
    """A transient failure persisted through every allowed retry attempt.

    Raised by :class:`~repro.smb.client.SMBClient` with the last transient
    error as ``__cause__``; the training layer reads this as "the SMB
    server is gone for me" and degrades (marks the worker dead) instead of
    crashing the job.
    """

    def __init__(self, op: str, attempts: int, last_error: str) -> None:
        super().__init__(
            f"{op} failed after {attempts} attempt(s); last error: "
            f"{last_error}"
        )
        self.op = op
        self.attempts = attempts
        self.last_error = last_error


class SMBProtocolError(SMBError):
    """A malformed or unexpected message was seen on the wire."""


class PayloadSizeError(SMBProtocolError):
    """A response payload did not match the byte count the request asked for.

    A short (or oversized) READ payload silently yields a wrong-sized —
    or stale — array downstream, which is far harder to debug than a
    loud protocol failure at the call site.  The client validates every
    READ/read_into payload length and raises this instead.
    """

    def __init__(self, op: str, expected: int, got: int) -> None:
        super().__init__(
            f"{op} returned {got} payload byte(s), expected {expected}"
        )
        self.op = op
        self.expected = expected
        self.got = got


class UnknownKeyError(SMBError):
    """An SHM key or access key does not name a live segment."""

    def __init__(self, key: int) -> None:
        super().__init__(f"unknown SMB key: {key:#x}")
        self.key = key


class CapacityError(SMBError):
    """The server's granted memory pool cannot satisfy an allocation."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"cannot allocate {requested} bytes; only {available} available"
        )
        self.requested = requested
        self.available = available


class QuotaExceededError(CapacityError):
    """A tenant's CREATE was denied by its namespace byte quota.

    The pool itself may have room — admission is checked against the
    *tenant's grant* first (see :meth:`MemoryPool.create_tenant`), so one
    namespace filling up never consumes another namespace's headroom.
    Fatal like :class:`CapacityError`: retrying returns the same answer
    until the tenant frees segments or an admin raises the grant.
    """

    def __init__(
        self, tenant: str, requested: int, quota: int, used: int
    ) -> None:
        SMBError.__init__(
            self,
            f"tenant {tenant!r} over quota: requested {requested} bytes "
            f"with {used}/{quota} already used"
        )
        self.tenant = tenant
        self.requested = requested
        self.quota = quota
        self.used = used
        self.available = max(0, quota - used)


class SegmentRangeError(SMBError):
    """A read/write/accumulate touched bytes outside a segment."""

    def __init__(self, offset: int, nbytes: int, size: int) -> None:
        super().__init__(
            f"access [{offset}, {offset + nbytes}) exceeds segment size {size}"
        )
        self.offset = offset
        self.nbytes = nbytes
        self.size = size


class SegmentExistsError(SMBError):
    """A named segment was created twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"segment already exists: {name!r}")
        self.name = name


class AccessDeniedError(SMBError):
    """An operation was attempted with a key lacking the required rights."""


class NotificationTimeout(SMBError):
    """A wait-for-update request expired before the segment changed."""

    def __init__(self, key: int, version: int, timeout: float) -> None:
        super().__init__(
            f"segment {key:#x} did not advance past version {version} "
            f"within {timeout:.3f}s"
        )
        self.key = key
        self.version = version
        self.timeout = timeout


class VersionRegressionError(SMBError):
    """A segment came back at a *lower* version after server recovery.

    Snapshot-only durability can restore an older buffer; a subscription
    loop built on ``wait_update(last_seen)`` would then park forever —
    the recovered segment may never re-reach ``last_seen``.  The client
    raises this instead so the caller (a replica, a read cache) resyncs
    from the recovered version rather than hanging.  Fatal on purpose:
    retrying the same wait returns the same answer.
    """

    def __init__(
        self, shm_key: int, last_seen: int, current: int, epoch: int
    ) -> None:
        super().__init__(
            f"segment shm_key={shm_key:#x} regressed to version {current} "
            f"(last seen {last_seen}) after recovery to epoch {epoch}; "
            "re-read the segment and wait from the recovered version"
        )
        self.shm_key = shm_key
        self.last_seen = last_seen
        self.current = current
        self.epoch = epoch


class ServerClosingError(SMBError):
    """The server is shutting down and will not serve this request."""


class MembershipError(SMBError):
    """The elastic-membership protocol was violated (registry or slots)."""


class SlotsExhaustedError(MembershipError):
    """Every control-block slot is held by a live worker; nobody can join.

    Fatal by construction: the fleet is at capacity and retrying the claim
    returns the same answer until some member leaves or dies.  Callers
    (the autoscale controller, ``spawn_worker``) treat this as "wait for a
    leave", not as a transient fault.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"all {capacity} membership slot(s) are claimed by live workers"
        )
        self.capacity = capacity


class StaleGenerationError(MembershipError):
    """A worker used a slot generation that a later claim superseded.

    Slots are generation-stamped: every claim bumps the slot's generation
    counter, so a worker that was retired (or presumed dead) and whose
    slot was reclaimed by a later joiner fails loudly here instead of
    silently corrupting the new owner's progress counter.
    """

    def __init__(self, slot: int, held: int, current: int) -> None:
        super().__init__(
            f"slot {slot} generation moved on: held {held}, current "
            f"{current} — the slot was reclaimed by a later joiner"
        )
        self.slot = slot
        self.held = held
        self.current = current


# -- fault classification ---------------------------------------------------

def is_retryable(exc: BaseException) -> bool:
    """Whether a failed SMB operation is worth re-issuing.

    Connection-level failures are transient (the peer may come back, the
    transport reconnects); everything the server *decided* (unknown key,
    capacity, range, denied access) is deterministic and fatal.  A closed
    local transport and an already-exhausted retry budget are terminal by
    construction.
    """
    if isinstance(exc, (TransportClosedError, RetryExhaustedError)):
        return False
    return isinstance(exc, SMBConnectionError)


# -- wire representation ----------------------------------------------------

#: Constructor-argument attribute names per error class, in positional
#: order.  Only classes with structured constructors appear here; the rest
#: round-trip as a plain message.
_WIRE_ARGS: Dict[str, Tuple[str, ...]] = {
    "PayloadSizeError": ("op", "expected", "got"),
    "UnknownKeyError": ("key",),
    "CapacityError": ("requested", "available"),
    "QuotaExceededError": ("tenant", "requested", "quota", "used"),
    "SegmentRangeError": ("offset", "nbytes", "size"),
    "SegmentExistsError": ("name",),
    "NotificationTimeout": ("key", "version", "timeout"),
    "VersionRegressionError": ("shm_key", "last_seen", "current", "epoch"),
    "RetryExhaustedError": ("op", "attempts", "last_error"),
    "SlotsExhaustedError": ("capacity",),
    "StaleGenerationError": ("slot", "held", "current"),
}

_WIRE_TYPES: Dict[str, Type[SMBError]] = {}


def _wire_types() -> Dict[str, Type[SMBError]]:
    if not _WIRE_TYPES:
        stack: list = [SMBError]
        while stack:
            cls = stack.pop()
            _WIRE_TYPES[cls.__name__] = cls
            stack.extend(cls.__subclasses__())
    return _WIRE_TYPES


def to_wire(exc: SMBError) -> bytes:
    """Serialise an SMB error for an ``ERROR`` response payload.

    Format: ``ClassName:{json}`` where the JSON object carries the
    human-readable ``message`` and, when the class has a structured
    constructor whose attributes are all present, its positional ``args``.
    """
    name = type(exc).__name__
    body: Dict[str, object] = {"message": str(exc)}
    fields = _WIRE_ARGS.get(name)
    if fields is not None:
        try:
            body["args"] = [getattr(exc, field) for field in fields]
        except AttributeError:
            pass  # half-constructed instance; message-only fallback
    return f"{name}:{json.dumps(body)}".encode()


def from_wire(payload: bytes) -> SMBError:
    """Rebuild the error an ``ERROR`` response payload describes.

    Structured classes are reconstructed through their real constructor so
    attribute-inspecting handlers keep working across the TCP hop; anything
    unrecognised (foreign class name, legacy ``Name:detail`` payloads,
    un-JSON-decodable detail) degrades to a message-only instance of the
    closest known class.
    """
    text = payload.decode(errors="replace")
    name, _, detail = text.partition(":")
    cls = _wire_types().get(name, SMBError)
    message = detail
    args = None
    try:
        body = json.loads(detail)
    except (json.JSONDecodeError, ValueError):
        body = None
    if isinstance(body, dict):
        message = str(body.get("message", detail))
        args = body.get("args")
    if args is not None:
        try:
            return cls(*args)
        except (TypeError, ValueError):
            pass  # constructor drifted; fall back to message-only
    exc = SMBError.__new__(cls)
    Exception.__init__(exc, message)
    return exc
