"""Striping parameters across multiple SMB servers (the paper's future work).

The evaluated system uses a single memory server, whose HCA bandwidth
bounds every exchange ("Because the communication bandwidth of the single
SMB server is bound to the bandwidth of the network interface, the
communication overhead increases significantly", Sec. III-D); the
conclusion plans "to improve the performance of the SMB framework by
using multiple SMB servers".  This module implements that plan:

* :class:`ShardedArray` — one logical float32 vector striped over K
  segments, each on its own SMB server.  It exposes the same
  ``read`` / ``write`` / ``accumulate_into`` / ``version`` surface as
  :class:`~repro.smb.client.RemoteArray`, so the SEASGD worker runs on it
  unchanged (duck typing is the integration test).
* :func:`create_sharded_array` / :func:`attach_sharded_array` — the
  master/slave sides of the Fig. 2 choreography, generalised to K
  servers: creation returns one SHM key per shard, and those keys are
  what the master broadcasts.

Striping is contiguous and balanced: shard ``i`` holds
``counts[i] ~ ceil(count / K)`` elements.  Accumulates remain per-shard
server-side additions, so the no-parameter-server property is preserved
exactly — just K accumulators instead of one.

**Parallel fan-out.**  Shard operations run concurrently on a small
shared thread pool (one task per remote shard; the first stripe runs on
the calling thread), so K servers give ~K-way transfer overlap instead
of a sequential walk that re-serialises the very bottleneck striping was
meant to remove.  Stripes are disjoint slices of the logical vector, so
parallel execution is bit-exact with the sequential order.

**Version aggregation.**  ``write`` / ``accumulate_into`` return the
*sum* of the new per-shard versions — the same monotone scale as
:meth:`ShardedArray.version` (which also sums) — so version-based
wait/update logic observes every stripe, not just the last one written.
Per-stripe detail is available from :meth:`ShardedArray.shard_versions`.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from .client import RemoteArray, SMBClient

T = TypeVar("T")

#: Upper bound on fan-out worker threads shared by every ShardedArray in
#: the process.  Shard requests block in socket syscalls (or short
#: segment copies), so a modest pool gives full overlap for realistic
#: shard counts without unbounded thread growth.
MAX_FANOUT_THREADS = 16

_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


def _fanout_executor() -> ThreadPoolExecutor:
    """The process-wide shard fan-out pool (created on first use).

    The pool used to live for the whole process with no way to release
    its threads; :func:`shutdown_fanout_executor` now tears it down
    (and is registered via ``atexit`` so interpreter shutdown never
    races pool threads against module teardown).  A later shard op
    after a shutdown simply re-creates the pool.
    """
    global _executor
    with _executor_lock:
        if _executor is None:
            workers = min(MAX_FANOUT_THREADS, max(4, os.cpu_count() or 4))
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="smb-shard"
            )
        return _executor


def shutdown_fanout_executor(wait: bool = True) -> None:
    """Stop the shared fan-out pool; the next shard op recreates it.

    Safe to call any number of times, from tests tearing down a fleet or
    from embedders that want zero background threads between runs.
    """
    global _executor
    with _executor_lock:
        executor, _executor = _executor, None
    if executor is not None:
        executor.shutdown(wait=wait)


atexit.register(shutdown_fanout_executor, wait=False)


def _fan_out(tasks: Sequence[Callable[[], T]]) -> List[T]:
    """Run shard tasks concurrently; results in task order.

    The first task runs on the calling thread (it would otherwise idle
    in ``result()``), the rest on the shared pool.  Exceptions propagate
    after every submitted task has settled, so no shard op is silently
    abandoned mid-flight.
    """
    if len(tasks) == 1:
        return [tasks[0]()]
    pool = _fanout_executor()
    futures: List[Future] = [pool.submit(task) for task in tasks[1:]]
    results: List[T] = []
    first_error: Optional[BaseException] = None
    try:
        results.append(tasks[0]())
    except BaseException as exc:  # noqa: BLE001 - re-raised below
        first_error = exc
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return results


def shard_counts(count: int, num_shards: int) -> List[int]:
    """Balanced contiguous stripe sizes (first shards get the remainder)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > count:
        raise ValueError(
            f"cannot stripe {count} elements over {num_shards} shards"
        )
    base, remainder = divmod(count, num_shards)
    return [base + (1 if i < remainder else 0) for i in range(num_shards)]


class ShardedArray:
    """One logical array striped over several SMB servers.

    Drop-in for :class:`RemoteArray` from the worker's point of view; the
    shards are hidden behind the same operations, each touching only its
    own server — and, since each shard has its own server (and its own
    client transport), operations fan out concurrently.
    """

    def __init__(self, shards: Sequence[RemoteArray], name: str = "") -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self.name = name or self.shards[0].name
        if any(s.dtype != self.shards[0].dtype for s in self.shards):
            raise ValueError("shards must share a dtype")
        self.dtype = self.shards[0].dtype
        self.count = sum(shard.count for shard in self.shards)
        offsets = np.cumsum([0] + [s.count for s in self.shards])
        self._bounds: List[Tuple[int, int]] = [
            (int(offsets[i]), int(offsets[i + 1]))
            for i in range(len(self.shards))
        ]

    @property
    def nbytes(self) -> int:
        """Logical array size in bytes."""
        return self.count * self.dtype.itemsize

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def shm_keys(self) -> List[int]:
        """Per-shard creation keys, in stripe order (what gets broadcast)."""
        return [shard.shm_key for shard in self.shards]

    def read(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather all stripes into one contiguous array (parallel).

        Each stripe is read *directly into its slice* of the destination
        (``RemoteArray.read(out=...)``), so the gather costs zero
        intermediate allocations; the K per-server transfers overlap on
        the fan-out pool.
        """
        if out is None:
            out = np.empty(self.count, dtype=self.dtype)
        else:
            if not isinstance(out, np.ndarray):
                raise TypeError(
                    f"out must be a numpy array, got {type(out).__name__}"
                )
            if out.dtype != self.dtype or out.size != self.count:
                raise ValueError(
                    f"out must hold {self.count} x {self.dtype}, "
                    f"got {out.size} x {out.dtype}"
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out must be C-contiguous and writable")
        flat = out.reshape(-1)
        _fan_out([
            (lambda s=shard, lo=lo, hi=hi: s.read(out=flat[lo:hi]))
            for shard, (lo, hi) in zip(self.shards, self._bounds)
        ])
        return out

    def write(self, values: np.ndarray) -> int:
        """Scatter a full-length array across the stripes (parallel).

        Returns the sum of the new per-shard versions — consistent with
        :meth:`version`, so callers comparing against a previously
        observed aggregate see *every* stripe's mutation (the old
        last-shard-only return could miss updates on other stripes).
        """
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {values.size}"
            )
        versions = _fan_out([
            (lambda s=shard, lo=lo, hi=hi: s.write(values[lo:hi]))
            for shard, (lo, hi) in zip(self.shards, self._bounds)
        ])
        return sum(versions)

    def accumulate_into(self, dst: "ShardedArray", scale: float = 1.0) -> int:
        """Per-shard server-side ``dst += scale * self`` (eq. (7), K-way).

        Both arrays must be striped identically (same shard layout on the
        same servers), which :func:`attach_sharded_array` guarantees for
        buffers created by :func:`create_sharded_array`.  The K
        accumulates run concurrently (they touch disjoint servers);
        returns the sum of the destination's new per-shard versions.
        """
        if not isinstance(dst, ShardedArray):
            raise TypeError("destination must be a ShardedArray")
        if dst.num_shards != self.num_shards or dst.count != self.count:
            raise ValueError(
                f"stripe layout mismatch: {self.num_shards}x{self.count} "
                f"vs {dst.num_shards}x{dst.count}"
            )
        versions = _fan_out([
            (lambda s=src_shard, d=dst_shard: s.accumulate_into(
                d, scale=scale
            ))
            for src_shard, dst_shard in zip(self.shards, dst.shards)
        ])
        return sum(versions)

    def shard_versions(self) -> List[int]:
        """Per-stripe mutation counters, in stripe order (parallel)."""
        return _fan_out([
            (lambda s=shard: s.version()) for shard in self.shards
        ])

    def version(self) -> int:
        """Sum of shard versions (monotone under any mutation).

        The same aggregate :meth:`write` and :meth:`accumulate_into`
        return, so ``array.write(v) == array.version()`` holds in the
        absence of concurrent mutators.
        """
        return sum(self.shard_versions())

    def free(self) -> None:
        """Deallocate every stripe."""
        for shard in self.shards:
            shard.free()


def create_sharded_array(
    clients: Sequence[SMBClient],
    name: str,
    count: int,
    dtype: str = "float32",
) -> ShardedArray:
    """Master-side creation: one stripe per client/server.

    Args:
        clients: One connected client per SMB server, in stripe order.
        name: Logical name; stripe ``i`` is stored as ``{name}.shard{i}``.
        count: Total element count.
        dtype: Element type.
    """
    counts = shard_counts(count, len(clients))
    shards = [
        client.create_array(f"{name}.shard{index}", shard_count, dtype=dtype)
        for index, (client, shard_count) in enumerate(zip(clients, counts))
    ]
    return ShardedArray(shards, name=name)


def attach_sharded_array(
    clients: Sequence[SMBClient],
    name: str,
    shm_keys: Sequence[int],
    count: int,
    dtype: str = "float32",
) -> ShardedArray:
    """Slave-side attachment from the broadcast per-shard SHM keys."""
    if len(clients) != len(shm_keys):
        raise ValueError(
            f"{len(clients)} clients for {len(shm_keys)} shard keys"
        )
    counts = shard_counts(count, len(clients))
    shards = [
        client.attach_array(
            f"{name}.shard{index}", key, shard_count, dtype=dtype
        )
        for index, (client, key, shard_count) in enumerate(
            zip(clients, shm_keys, counts)
        )
    ]
    return ShardedArray(shards, name=name)
