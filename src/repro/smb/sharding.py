"""Striping parameters across multiple SMB servers (the paper's future work).

The evaluated system uses a single memory server, whose HCA bandwidth
bounds every exchange ("Because the communication bandwidth of the single
SMB server is bound to the bandwidth of the network interface, the
communication overhead increases significantly", Sec. III-D); the
conclusion plans "to improve the performance of the SMB framework by
using multiple SMB servers".  This module implements that plan:

* :class:`ShardedArray` — one logical float32 vector striped over K
  segments, each on its own SMB server.  It exposes the same
  ``read`` / ``write`` / ``accumulate_into`` / ``version`` surface as
  :class:`~repro.smb.client.RemoteArray`, so the SEASGD worker runs on it
  unchanged (duck typing is the integration test).
* :func:`create_sharded_array` / :func:`attach_sharded_array` — the
  master/slave sides of the Fig. 2 choreography, generalised to K
  servers: creation returns one SHM key per shard, and those keys are
  what the master broadcasts.

Striping is contiguous and balanced: shard ``i`` holds
``counts[i] ~ ceil(count / K)`` elements.  Accumulates remain per-shard
server-side additions, so the no-parameter-server property is preserved
exactly — just K accumulators instead of one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .client import RemoteArray, SMBClient


def shard_counts(count: int, num_shards: int) -> List[int]:
    """Balanced contiguous stripe sizes (first shards get the remainder)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > count:
        raise ValueError(
            f"cannot stripe {count} elements over {num_shards} shards"
        )
    base, remainder = divmod(count, num_shards)
    return [base + (1 if i < remainder else 0) for i in range(num_shards)]


class ShardedArray:
    """One logical array striped over several SMB servers.

    Drop-in for :class:`RemoteArray` from the worker's point of view; the
    shards are hidden behind the same operations, each touching only its
    own server.
    """

    def __init__(self, shards: Sequence[RemoteArray], name: str = "") -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self.name = name or self.shards[0].name
        if any(s.dtype != self.shards[0].dtype for s in self.shards):
            raise ValueError("shards must share a dtype")
        self.dtype = self.shards[0].dtype
        self.count = sum(shard.count for shard in self.shards)
        offsets = np.cumsum([0] + [s.count for s in self.shards])
        self._bounds: List[Tuple[int, int]] = [
            (int(offsets[i]), int(offsets[i + 1]))
            for i in range(len(self.shards))
        ]

    @property
    def nbytes(self) -> int:
        """Logical array size in bytes."""
        return self.count * self.dtype.itemsize

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def shm_keys(self) -> List[int]:
        """Per-shard creation keys, in stripe order (what gets broadcast)."""
        return [shard.shm_key for shard in self.shards]

    def read(self) -> np.ndarray:
        """Gather all stripes into one contiguous array."""
        out = np.empty(self.count, dtype=self.dtype)
        for shard, (lo, hi) in zip(self.shards, self._bounds):
            out[lo:hi] = shard.read()
        return out

    def write(self, values: np.ndarray) -> int:
        """Scatter a full-length array across the stripes."""
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {values.size}"
            )
        version = 0
        for shard, (lo, hi) in zip(self.shards, self._bounds):
            version = shard.write(values[lo:hi])
        return version

    def accumulate_into(self, dst: "ShardedArray", scale: float = 1.0) -> int:
        """Per-shard server-side ``dst += scale * self`` (eq. (7), K-way).

        Both arrays must be striped identically (same shard layout on the
        same servers), which :func:`attach_sharded_array` guarantees for
        buffers created by :func:`create_sharded_array`.
        """
        if not isinstance(dst, ShardedArray):
            raise TypeError("destination must be a ShardedArray")
        if dst.num_shards != self.num_shards or dst.count != self.count:
            raise ValueError(
                f"stripe layout mismatch: {self.num_shards}x{self.count} "
                f"vs {dst.num_shards}x{dst.count}"
            )
        version = 0
        for src_shard, dst_shard in zip(self.shards, dst.shards):
            version = src_shard.accumulate_into(dst_shard, scale=scale)
        return version

    def version(self) -> int:
        """Sum of shard versions (monotone under any mutation)."""
        return sum(shard.version() for shard in self.shards)

    def free(self) -> None:
        """Deallocate every stripe."""
        for shard in self.shards:
            shard.free()


def create_sharded_array(
    clients: Sequence[SMBClient],
    name: str,
    count: int,
    dtype: str = "float32",
) -> ShardedArray:
    """Master-side creation: one stripe per client/server.

    Args:
        clients: One connected client per SMB server, in stripe order.
        name: Logical name; stripe ``i`` is stored as ``{name}.shard{i}``.
        count: Total element count.
        dtype: Element type.
    """
    counts = shard_counts(count, len(clients))
    shards = [
        client.create_array(f"{name}.shard{index}", shard_count, dtype=dtype)
        for index, (client, shard_count) in enumerate(zip(clients, counts))
    ]
    return ShardedArray(shards, name=name)


def attach_sharded_array(
    clients: Sequence[SMBClient],
    name: str,
    shm_keys: Sequence[int],
    count: int,
    dtype: str = "float32",
) -> ShardedArray:
    """Slave-side attachment from the broadcast per-shard SHM keys."""
    if len(clients) != len(shm_keys):
        raise ValueError(
            f"{len(clients)} clients for {len(shm_keys)} shard keys"
        )
    counts = shard_counts(count, len(clients))
    shards = [
        client.attach_array(
            f"{name}.shard{index}", key, shard_count, dtype=dtype
        )
        for index, (client, key, shard_count) in enumerate(
            zip(clients, shm_keys, counts)
        )
    ]
    return ShardedArray(shards, name=name)
