"""Local shared-memory transport: co-located READ/WRITE as a memcpy.

The paper's Soft Memory Box keeps the parameter segments in host shared
memory; a worker on the *same* node as the memory server should not pay
the TCP stack to reach memory it could simply map.  This transport gives
co-located clients that path:

* the server creates one :class:`multiprocessing.shared_memory.SharedMemory`
  block per connection and hands its name to the client over a UNIX
  domain socket;
* a request is the normal wire :class:`~repro.smb.protocol.Message` frame
  written *into* the block (header at offset 0, payload at
  :data:`DATA_OFFSET`) followed by an 8-byte **doorbell** over the UNIX
  socket — the doorbell is the only thing the kernel ever moves;
* the server parses the frame in place, serves READs straight into the
  block (segment → shm, one copy, via the ``handle(request, out=...)``
  zero-copy seam) and rings the doorbell back.

So a 64 MiB READ costs one ``memcpy`` plus two 8-byte socket round-trips,
instead of 64 MiB through loopback TCP in both kernels.

**Doorbell protocol** (8-byte signed big-endian int):

* client → server, positive ``n``: a request frame of ``n`` bytes is in
  the block.
* client → server, negative ``-n``: grow the block to at least ``n``
  bytes before the next request.
* server → client, negative ``-n``: *switch blocks* — a name record
  (u16 length + UTF-8 name) follows on the socket; the new block is
  ``n`` bytes.  Sent at handshake, as the grow acknowledgement, and
  spontaneously before a response too large for the current block.
* server → client, positive ``n``: a response frame of ``n`` bytes is in
  the (possibly just-switched) block.

Strict request/response means the block is always quiescent when it is
replaced, so growth never migrates in-flight data.

``WAIT_UPDATE`` runs on a lazily opened second connection (its own small
block), mirroring :class:`~repro.smb.transport.TcpTransport`'s
notification channel: a parked wait must never serialise the worker's
other thread, and waits are sliced so ``close()`` interrupts them.

The server end, :class:`ShmSMBServer`, serves each connection on its own
thread — co-located workers are bounded by the node's core count, so the
event-loop machinery of the TCP front-end would buy nothing here.  It
can share an :class:`~repro.smb.server.SMBServer` core with a
:class:`~repro.smb.server.TcpSMBServer`, giving one memory pool both a
remote and a local doorway.
"""

from __future__ import annotations

import logging
import os
import socket
import struct
import threading
from multiprocessing import shared_memory
from typing import List, Optional, Tuple, Union

from .errors import SMBConnectionError, SMBProtocolError, TransportClosedError
from .memory import DEFAULT_TENANT
from .protocol import (
    HEADER_FORMAT,
    HEADER_SIZE,
    Message,
    Op,
    Status,
    encode_hello,
    read_hello,
)
from .server import DEFAULT_POOL_CAPACITY, SMBServer

logger = logging.getLogger(__name__)

#: Payload region offset inside the block (past the 42-byte header,
#: rounded up for alignment).
DATA_OFFSET = 64

#: Initial per-connection block size; grown geometrically on demand.
DEFAULT_BLOCK_SIZE = 1 << 20  # 1 MiB

#: Notification-channel block size: WAIT_UPDATE frames are header-only.
NOTIFY_BLOCK_SIZE = 4096

#: Seconds a freshly accepted connection gets to complete the HELLO
#: handshake before its handler thread gives up — a client that connects
#: and never speaks must not pin a thread until stop().
HANDSHAKE_TIMEOUT = 10.0

_DOORBELL = struct.Struct("!q")


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except OSError as exc:
            raise SMBConnectionError(f"doorbell socket failed: {exc}") from exc
        if not chunk:
            raise SMBConnectionError("peer closed the doorbell socket")
        chunks.extend(chunk)
    return bytes(chunks)


def _send_all(sock: socket.socket, data: bytes) -> None:
    try:
        sock.sendall(data)
    except OSError as exc:
        raise SMBConnectionError(f"doorbell socket failed: {exc}") from exc


def _send_doorbell(sock: socket.socket, value: int) -> None:
    _send_all(sock, _DOORBELL.pack(value))


def _recv_doorbell(sock: socket.socket) -> int:
    return _DOORBELL.unpack(_recv_exact(sock, _DOORBELL.size))[0]


def _send_name_record(sock: socket.socket, name: str) -> None:
    encoded = name.encode()
    _send_all(sock, struct.pack("!H", len(encoded)) + encoded)


def _recv_name_record(sock: socket.socket) -> str:
    (length,) = struct.unpack("!H", _recv_exact(sock, 2))
    return _recv_exact(sock, length).decode()


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to a server-created block without resource tracking.

    The *server* owns the block's lifetime (it unlinks on connection
    teardown); the attaching side must not also claim it.  Python 3.13
    has ``track=False`` for exactly this.  On earlier versions a plain
    attach is the least-bad option: registration is set-based, so in the
    common same-process case (tests, benchmarks, in-process co-location)
    the server's ``unlink`` still balances the books; a separate client
    process may log a spurious leaked-object note from its resource
    tracker at exit.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _close_block(
    block: Optional[shared_memory.SharedMemory], unlink: bool = False
) -> None:
    if block is None:
        return
    try:
        block.close()
    except BufferError:
        # A view into the mapping is still alive somewhere; the mapping
        # stays until process exit, which is harmless — but the name must
        # still be released below.
        logger.warning("shm block %s closed with live views", block.name)
    except OSError:
        pass
    if unlink:
        try:
            block.unlink()
        except (FileNotFoundError, OSError):
            pass


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------


class _ShmChannel:
    """One doorbell socket plus its shared-memory block (client end)."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        timeout: float,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.shm: Optional[shared_memory.SharedMemory] = None
        try:
            self.sock.connect(os.fspath(path))
            self.sock.sendall(encode_hello(tenant))
            # Handshake is a switch record like any other.
            value = _recv_doorbell(self.sock)
            if value >= 0:
                raise SMBConnectionError(
                    f"bad shm handshake doorbell {value}"
                )
            self._attach_switch(-value)
        except (OSError, SMBConnectionError) as exc:
            self.close()
            if isinstance(exc, SMBConnectionError):
                raise
            raise SMBConnectionError(
                f"cannot connect to SMB shm server at {path}: {exc}"
            ) from exc

    def _attach_switch(self, size: int) -> None:
        name = _recv_name_record(self.sock)
        new = _attach_block(name)
        _close_block(self.shm)
        self.shm = new
        self.size = size

    def ensure(self, nbytes: int) -> None:
        """Make the block at least ``nbytes`` (geometric growth)."""
        if self.shm is not None and nbytes <= self.shm.size:
            return
        target = max(nbytes, (self.shm.size if self.shm else 0) * 2)
        _send_doorbell(self.sock, -target)
        value = _recv_doorbell(self.sock)
        if value >= 0:
            raise SMBConnectionError(f"bad grow acknowledgement {value}")
        self._attach_switch(-value)

    def exchange(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        payload = message.payload_view()
        expect = message.count if message.op is Op.READ else 0
        self.ensure(DATA_OFFSET + max(payload.nbytes, expect))
        assert self.shm is not None
        request_nbytes = DATA_OFFSET + payload.nbytes
        buf = self.shm.buf
        buf[:HEADER_SIZE] = message.encode_header()
        if payload.nbytes:
            buf[DATA_OFFSET:DATA_OFFSET + payload.nbytes] = payload
        # Drop our view before ringing: the server may switch blocks for
        # a large response, and a block with exported views cannot close.
        buf = None
        _send_doorbell(self.sock, request_nbytes)
        value = _recv_doorbell(self.sock)
        while value < 0:  # server grew the block for a large response
            self._attach_switch(-value)
            value = _recv_doorbell(self.sock)
        buf = self.shm.buf
        header = bytes(buf[:HEADER_SIZE])
        paylen = struct.unpack(HEADER_FORMAT, header)[-1]
        if out is not None and paylen <= len(out):
            out[:paylen] = buf[DATA_OFFSET:DATA_OFFSET + paylen]
            return Message.decode(header, out[:paylen])
        return Message.decode(header, bytes(buf[DATA_OFFSET:DATA_OFFSET + paylen]))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        _close_block(self.shm)
        self.shm = None


class ShmTransport:
    """Client transport over a local :class:`ShmSMBServer`.

    Satisfies the :class:`~repro.smb.transport.Transport` protocol.  One
    command channel carries every ordinary request under a lock;
    ``WAIT_UPDATE`` runs sliced on a lazily opened notification channel
    so a parked wait never blocks the worker's data-path thread.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        timeout: float = 30.0,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self._path = path
        self._timeout = timeout
        self._tenant = tenant
        self._lock = threading.Lock()
        self._notify_lock = threading.Lock()
        self._closed = threading.Event()
        self._cmd = _ShmChannel(path, timeout, tenant)
        self._notify: Optional[_ShmChannel] = None

    def request(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        if self._closed.is_set():
            raise TransportClosedError("transport is closed")
        if message.op is Op.WAIT_UPDATE:
            from .transport import _sliced_wait

            return _sliced_wait(self._notify_exchange, message, self._closed)
        with self._lock:
            return self._cmd.exchange(message, out)

    def _notify_exchange(self, message: Message) -> Message:
        with self._notify_lock:
            if self._closed.is_set():
                raise TransportClosedError("transport is closed")
            if self._notify is None:
                self._notify = _ShmChannel(
                    self._path, self._timeout, self._tenant
                )
            return self._notify.exchange(message)

    def close(self) -> None:
        self._closed.set()
        self._cmd.close()
        if self._notify is not None:
            self._notify.close()
            self._notify = None


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------


class ShmSMBServer:
    """UNIX-socket + shared-memory front-end for an :class:`SMBServer`.

    Usage::

        with ShmSMBServer(path="/tmp/smb.sock", capacity=1 << 28) as server:
            client = SMBClient.connect_local(server.path)
            ...

    Pass ``core=`` to share one memory pool with a
    :class:`~repro.smb.server.TcpSMBServer`: remote workers come in over
    TCP, co-located workers take the shm path, both see the same
    segments.

    Each connection gets a dedicated thread and a dedicated block —
    co-located clients are bounded by the node's cores, so threads are
    the simple and adequate dispatch model here.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        capacity: int = DEFAULT_POOL_CAPACITY,
        core: Optional[SMBServer] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.core = core if core is not None else SMBServer(capacity)
        self.path = os.fspath(path)
        self._block_size = block_size
        if os.path.exists(self.path):
            os.unlink(self.path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(64)
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._handlers: List[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShmSMBServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="smb-shm-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Sever every connection and join every handler thread."""
        self._stop.set()
        try:
            # Closing alone does not wake a thread blocked in accept() on
            # an AF_UNIX socket; shutdown() does (with EINVAL).
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self.core.close()
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        # Snapshot only after the accept thread is gone, so no handler
        # can be registered concurrently and slip past the join.
        with self._conns_lock:
            handlers, self._handlers = self._handlers, []
        for handler in handlers:
            handler.join(timeout=5.0)
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "ShmSMBServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed during stop()
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="smb-shm-conn",
                daemon=True,
            )
            handler.start()
            # Prune the dead before tracking the new: the list stays
            # bounded by *live* connections instead of growing forever.
            # Under the lock, because stop() swaps the list out to join
            # it and must not race a rebuild.
            with self._conns_lock:
                self._handlers = [t for t in self._handlers if t.is_alive()]
                self._handlers.append(handler)

    def _switch_block(
        self,
        conn: socket.socket,
        old: Optional[shared_memory.SharedMemory],
        size: int,
    ) -> shared_memory.SharedMemory:
        """Allocate a fresh block, announce it, retire the old one.

        Only called between frames (strict request/response), so no views
        into ``old`` exist and it closes cleanly.
        """
        block = shared_memory.SharedMemory(create=True, size=size)
        _send_doorbell(conn, -block.size)
        _send_name_record(conn, block.name)
        _close_block(old, unlink=True)
        return block

    def _serve_frame(
        self,
        conn: socket.socket,
        block: shared_memory.SharedMemory,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[shared_memory.SharedMemory, Op]:
        """Parse, dispatch and answer one request frame.

        All views into the block live and die inside this frame's scope,
        so the caller's loop can always switch or retire the block
        between frames without tripping over exported buffers.
        """
        buf = block.buf
        header = bytes(buf[:HEADER_SIZE])
        paylen = struct.unpack(HEADER_FORMAT, header)[-1]
        request = Message.decode(
            header, buf[DATA_OFFSET:DATA_OFFSET + paylen]
        )
        op, count = request.op, request.count
        out: Optional[memoryview] = None
        if op is Op.READ and count > 0:
            out = buf[DATA_OFFSET:]
        response = self.core.handle(request, out, tenant=tenant)
        view = response.payload_view()
        nbytes = view.nbytes
        resp_header = response.encode_header()
        if DATA_OFFSET + nbytes > block.size:
            # Response (a STATS/LIST/SNAPSHOT body, typically) outgrew
            # the block: materialise it, drop every view into the old
            # block, switch, then land it in the new one.
            data = bytes(view)
            del view, request, response, out, buf
            block = self._switch_block(conn, block, DATA_OFFSET + len(data))
            buf = block.buf
            buf[DATA_OFFSET:DATA_OFFSET + len(data)] = data
        else:
            # A successful READ served through ``out`` is already in the
            # block (that is the one-copy path); anything else still
            # needs the payload landed.
            in_place = (
                op is Op.READ
                and out is not None
                and count <= len(out)
                and response.status is Status.OK
            )
            if nbytes and not in_place:
                buf[DATA_OFFSET:DATA_OFFSET + nbytes] = view
        buf[:HEADER_SIZE] = resp_header
        _send_doorbell(conn, DATA_OFFSET + nbytes)
        return block, op

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conns_lock:
            if self._stop.is_set():
                # stop() already severed its snapshot of connections; a
                # late-accepted one must not survive it.
                try:
                    conn.close()
                except OSError:
                    pass
                return
            self._conns.append(conn)
        block: Optional[shared_memory.SharedMemory] = None
        try:
            # Bound the handshake, then block freely between frames (an
            # idle-but-handshaken client is a legitimate parked worker).
            conn.settimeout(HANDSHAKE_TIMEOUT)
            try:
                tenant = read_hello(conn)
            except SMBProtocolError as exc:
                logger.warning(
                    "rejecting non-SMB client on shm socket: %s", exc
                )
                return
            conn.settimeout(None)
            block = self._switch_block(conn, None, self._block_size)
            while not self._stop.is_set():
                value = _recv_doorbell(conn)
                if value < 0:
                    block = self._switch_block(
                        conn, block, max(-value, block.size)
                    )
                    continue
                block, op = self._serve_frame(conn, block, tenant)
                if op is Op.SHUTDOWN:
                    # Stop the whole server — from a helper thread, since
                    # stop() joins this handler.
                    threading.Thread(
                        target=self.stop, name="smb-shm-stop", daemon=True
                    ).start()
                    break
        except SMBConnectionError:
            pass  # peer went away; normal teardown
        except Exception:  # noqa: BLE001 - keep the server alive
            logger.exception("SMB shm handler crashed")
        finally:
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            try:
                conn.close()
            except OSError:
                pass
            _close_block(block, unlink=True)
