"""Soft Memory Box (SMB): a virtual shared-memory framework.

Python reproduction of the remote shared-memory substrate ShmCaffe builds
on (paper Sec. III-B).  The real SMB allocates granted memory on a memory
server and exposes it to Infiniband RDMA; here the same API is served by an
in-process core (:class:`SMBServer`) optionally fronted by TCP
(:class:`TcpSMBServer`), with :class:`SMBClient` as the worker-side library.

Quick start::

    from repro.smb import SMBServer, SMBClient

    server = SMBServer(capacity=1 << 24)
    master = SMBClient.in_process(server)
    weights = master.create_array("W_g", count=1000)
    # ... broadcast weights.shm_key over MPI ...
    worker = SMBClient.in_process(server)
    view = worker.attach_array("W_g", weights.shm_key, count=1000)
"""

from .client import ControlBlock, RemoteArray, SMBClient
from .errors import (
    AccessDeniedError,
    CapacityError,
    NotificationTimeout,
    SegmentExistsError,
    SegmentRangeError,
    SMBConnectionError,
    SMBError,
    SMBProtocolError,
    UnknownKeyError,
)
from .memory import DEFAULT_POOL_CAPACITY, MemoryPool, Segment
from .protocol import Message, Op, Status
from .server import ServerStats, SMBServer, TcpSMBServer
from .sharding import (
    ShardedArray,
    attach_sharded_array,
    create_sharded_array,
    shard_counts,
)
from .transport import InProcTransport, TcpTransport

__all__ = [
    "AccessDeniedError",
    "CapacityError",
    "ControlBlock",
    "DEFAULT_POOL_CAPACITY",
    "InProcTransport",
    "MemoryPool",
    "Message",
    "NotificationTimeout",
    "Op",
    "RemoteArray",
    "Segment",
    "SegmentExistsError",
    "SegmentRangeError",
    "ServerStats",
    "SMBClient",
    "SMBConnectionError",
    "SMBError",
    "SMBProtocolError",
    "SMBServer",
    "ShardedArray",
    "Status",
    "TcpSMBServer",
    "TcpTransport",
    "UnknownKeyError",
    "attach_sharded_array",
    "create_sharded_array",
    "shard_counts",
]
