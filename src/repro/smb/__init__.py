"""Soft Memory Box (SMB): a virtual shared-memory framework.

Python reproduction of the remote shared-memory substrate ShmCaffe builds
on (paper Sec. III-B).  The real SMB allocates granted memory on a memory
server and exposes it to Infiniband RDMA; here the same API is served by an
in-process core (:class:`SMBServer`) optionally fronted by TCP
(:class:`TcpSMBServer`), with :class:`SMBClient` as the worker-side library.

Quick start::

    from repro.smb import SMBServer, SMBClient

    server = SMBServer(capacity=1 << 24)
    master = SMBClient.in_process(server)
    weights = master.create_array("W_g", count=1000)
    # ... broadcast weights.shm_key over MPI ...
    worker = SMBClient.in_process(server)
    view = worker.attach_array("W_g", weights.shm_key, count=1000)
"""

from .buffer import ParameterBuffer
from .client import ControlBlock, RemoteArray, SlotClaim, SMBClient
from .errors import (
    AccessDeniedError,
    CapacityError,
    FaultInjectedError,
    MembershipError,
    NotificationTimeout,
    PayloadSizeError,
    QuotaExceededError,
    RetryExhaustedError,
    SegmentExistsError,
    SegmentRangeError,
    ServerClosingError,
    SlotsExhaustedError,
    SMBConnectionError,
    SMBError,
    SMBProtocolError,
    StaleGenerationError,
    TransportClosedError,
    UnknownKeyError,
    VersionRegressionError,
    is_retryable,
)
from .faults import FaultInjectingTransport, FaultPlan
from .journal import (
    DurabilityStore,
    JournalError,
    PoolImage,
    SegmentImage,
    publish_json,
    read_json,
    read_rendezvous,
    write_rendezvous,
)
from .membership import JobEntry, MemberRecord, MembershipRegistry, RegistryView
from .memory import (
    DEFAULT_POOL_CAPACITY,
    DEFAULT_TENANT,
    MemoryPool,
    Segment,
    TenantGrant,
)
from .placement import (
    HashRingPlacement,
    Move,
    Placement,
    PlacementError,
    StripedPlacement,
    attach_placed_array,
    create_placed_array,
    discover_locations,
    plan_moves,
    rebalance,
)
from .protocol import Message, Op, Status
from .retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy
from .server import ServerStats, SMBServer, TcpSMBServer
from .serving import (
    ReadCache,
    ReplicaServer,
    VersionNotAvailableError,
)
from .shm_transport import ShmSMBServer, ShmTransport
from .sharding import (
    ShardedArray,
    attach_sharded_array,
    create_sharded_array,
    shard_counts,
    shutdown_fanout_executor,
)
from .transport import InProcTransport, TcpTransport

__all__ = [
    "AccessDeniedError",
    "CapacityError",
    "ControlBlock",
    "DEFAULT_POOL_CAPACITY",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_TENANT",
    "DurabilityStore",
    "FaultInjectedError",
    "FaultInjectingTransport",
    "FaultPlan",
    "HashRingPlacement",
    "InProcTransport",
    "JobEntry",
    "JournalError",
    "MemberRecord",
    "MembershipError",
    "MembershipRegistry",
    "MemoryPool",
    "Message",
    "NO_RETRY",
    "NotificationTimeout",
    "Move",
    "Op",
    "ParameterBuffer",
    "PayloadSizeError",
    "Placement",
    "PlacementError",
    "PoolImage",
    "QuotaExceededError",
    "ReadCache",
    "RegistryView",
    "RemoteArray",
    "ReplicaServer",
    "RetryExhaustedError",
    "RetryPolicy",
    "Segment",
    "SegmentExistsError",
    "SegmentImage",
    "SegmentRangeError",
    "ServerClosingError",
    "ServerStats",
    "SlotClaim",
    "SlotsExhaustedError",
    "SMBClient",
    "SMBConnectionError",
    "SMBError",
    "SMBProtocolError",
    "SMBServer",
    "ShardedArray",
    "ShmSMBServer",
    "ShmTransport",
    "StaleGenerationError",
    "Status",
    "StripedPlacement",
    "TcpSMBServer",
    "TcpTransport",
    "TenantGrant",
    "TransportClosedError",
    "UnknownKeyError",
    "VersionNotAvailableError",
    "VersionRegressionError",
    "attach_placed_array",
    "attach_sharded_array",
    "create_placed_array",
    "create_sharded_array",
    "discover_locations",
    "is_retryable",
    "plan_moves",
    "publish_json",
    "read_json",
    "read_rendezvous",
    "rebalance",
    "shard_counts",
    "shutdown_fanout_executor",
    "write_rendezvous",
]
