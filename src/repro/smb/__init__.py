"""Soft Memory Box (SMB): a virtual shared-memory framework.

Python reproduction of the remote shared-memory substrate ShmCaffe builds
on (paper Sec. III-B).  The real SMB allocates granted memory on a memory
server and exposes it to Infiniband RDMA; here the same API is served by an
in-process core (:class:`SMBServer`) optionally fronted by TCP
(:class:`TcpSMBServer`), with :class:`SMBClient` as the worker-side library.

Quick start::

    from repro.smb import SMBServer, SMBClient

    server = SMBServer(capacity=1 << 24)
    master = SMBClient.in_process(server)
    weights = master.create_array("W_g", count=1000)
    # ... broadcast weights.shm_key over MPI ...
    worker = SMBClient.in_process(server)
    view = worker.attach_array("W_g", weights.shm_key, count=1000)
"""

from .buffer import ParameterBuffer
from .client import ControlBlock, RemoteArray, SlotClaim, SMBClient
from .errors import (
    AccessDeniedError,
    CapacityError,
    FaultInjectedError,
    MembershipError,
    NotificationTimeout,
    PayloadSizeError,
    RetryExhaustedError,
    SegmentExistsError,
    SegmentRangeError,
    ServerClosingError,
    SlotsExhaustedError,
    SMBConnectionError,
    SMBError,
    SMBProtocolError,
    StaleGenerationError,
    TransportClosedError,
    UnknownKeyError,
    is_retryable,
)
from .faults import FaultInjectingTransport, FaultPlan
from .journal import (
    DurabilityStore,
    JournalError,
    PoolImage,
    SegmentImage,
    publish_json,
    read_json,
    read_rendezvous,
    write_rendezvous,
)
from .membership import MemberRecord, MembershipRegistry, RegistryView
from .memory import DEFAULT_POOL_CAPACITY, MemoryPool, Segment
from .protocol import Message, Op, Status
from .retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy
from .server import ServerStats, SMBServer, TcpSMBServer
from .shm_transport import ShmSMBServer, ShmTransport
from .sharding import (
    ShardedArray,
    attach_sharded_array,
    create_sharded_array,
    shard_counts,
)
from .transport import InProcTransport, TcpTransport

__all__ = [
    "AccessDeniedError",
    "CapacityError",
    "ControlBlock",
    "DEFAULT_POOL_CAPACITY",
    "DEFAULT_RETRY_POLICY",
    "DurabilityStore",
    "FaultInjectedError",
    "FaultInjectingTransport",
    "FaultPlan",
    "InProcTransport",
    "JournalError",
    "MemberRecord",
    "MembershipError",
    "MembershipRegistry",
    "MemoryPool",
    "Message",
    "NO_RETRY",
    "NotificationTimeout",
    "Op",
    "ParameterBuffer",
    "PayloadSizeError",
    "PoolImage",
    "RegistryView",
    "RemoteArray",
    "RetryExhaustedError",
    "RetryPolicy",
    "Segment",
    "SegmentExistsError",
    "SegmentImage",
    "SegmentRangeError",
    "ServerClosingError",
    "ServerStats",
    "SlotClaim",
    "SlotsExhaustedError",
    "SMBClient",
    "SMBConnectionError",
    "SMBError",
    "SMBProtocolError",
    "SMBServer",
    "ShardedArray",
    "ShmSMBServer",
    "ShmTransport",
    "StaleGenerationError",
    "Status",
    "TcpSMBServer",
    "TcpTransport",
    "TransportClosedError",
    "UnknownKeyError",
    "attach_sharded_array",
    "create_sharded_array",
    "is_retryable",
    "publish_json",
    "read_json",
    "read_rendezvous",
    "shard_counts",
    "write_rendezvous",
]
