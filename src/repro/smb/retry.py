"""Retry policy for SMB operations: bounded attempts, backoff, deadlines.

The SMB server is the one shared resource every worker funnels through
(paper Sec. III-A), so a transient transport fault must not take a worker
down — EASGD-family training is explicitly tolerant of asynchrony and
stragglers, and a re-issued exchange is just a slightly later exchange.
:class:`RetryPolicy` bounds that tolerance: how many attempts, how long to
back off between them (exponential with jitter, so a fleet of workers
hitting the same fault does not retry in lockstep), and how long any single
request may sit on the wire before the transport declares it lost.

The policy is *data*; the retry loop lives in
:class:`~repro.smb.client.SMBClient` and the per-request deadlines in
:class:`~repro.smb.transport.TcpTransport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How an :class:`~repro.smb.client.SMBClient` handles transient faults.

    Attributes:
        max_attempts: Total tries per operation, first attempt included.
            ``1`` disables retries entirely.
        base_backoff: Sleep after the first failed attempt, seconds.
        backoff_factor: Multiplier applied per further attempt
            (exponential backoff).
        max_backoff: Ceiling on any single sleep, seconds.
        jitter: Fraction of each sleep that is randomised (``0.5`` means
            the actual sleep is uniform in ``[0.5*b, b]``), de-correlating
            the retry storms of many workers.
        request_timeout: Per-request wire deadline, seconds.  A response
            not received within this window counts as a transient
            connection failure (and is then subject to retry).
        connect_timeout: Deadline for establishing (or re-establishing)
            a TCP connection, seconds.
        seed: Seed for the jitter RNG; ``None`` draws from the global
            entropy pool.  Chaos tests pin this for reproducibility.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.5
    request_timeout: float = 30.0
    connect_timeout: float = 10.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def make_rng(self) -> random.Random:
        """A jitter RNG honouring :attr:`seed`."""
        return random.Random(self.seed)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            return 0.0
        base = min(
            self.base_backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )
        if self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


#: Default policy for production-ish runs: 4 attempts, ~0.05/0.1/0.2 s
#: backoff, 30 s wire deadline.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Fail-fast policy: one attempt, no backoff.  The pre-fault-tolerance
#: behaviour, still useful for tests that assert on first failure.
NO_RETRY = RetryPolicy(max_attempts=1)
