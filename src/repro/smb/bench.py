"""SMB data-path benchmark: the regression gate for the zero-copy work.

The paper's Fig. 7 speedups live or die on the per-operation cost of the
SMB primitives, so this module measures exactly that: READ / WRITE /
ACCUMULATE latency and throughput, per transport (``inproc`` — the RDMA
stand-in — and ``tcp`` loopback), across a payload sweep from 1 KiB to
64 MiB.  The timings come from the client's own telemetry histograms
(``smb/client/time/<OP>``), so the benchmark measures the same code path
training measures, including retry/validation overhead.

Results serialise to ``BENCH_smb.json``; :func:`compare` diffs a current
run against a committed baseline and flags cells whose p50 latency
regressed beyond a factor (the CI gate).  An optional sharded section
times a K-server :class:`~repro.smb.sharding.ShardedArray` gather/scatter
against the sum of its per-shard sequential costs, quantifying the
fan-out overlap.

CLI: ``repro smb bench [--quick] [--out BENCH_smb.json]
[--compare baseline.json --max-regression 2.0] [--sharded K]``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import TelemetrySession
from .client import RemoteArray, SMBClient
from .server import SMBServer, TcpSMBServer
from .sharding import ShardedArray, create_sharded_array

#: Default payload sweep (bytes): 1 KiB -> 64 MiB in 16x steps, i.e. the
#: span from a tiny control block to an AlexNet-scale weight vector.
DEFAULT_SIZES = (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26)

#: Reduced sweep for CI smoke runs (keeps the job in seconds).
QUICK_SIZES = (1 << 10, 1 << 20)

OPS = ("READ", "WRITE", "ACCUMULATE")
TRANSPORTS = ("inproc", "tcp")

#: Aim each cell's timed section at roughly this many bytes moved, so
#: small payloads get many iterations (stable quantiles) and huge ones
#: only a few (bounded wall time).
TARGET_CELL_BYTES = 1 << 28
MIN_ITERATIONS = 5
MAX_ITERATIONS = 200


@dataclass
class CellResult:
    """One (transport, op, size) measurement."""

    transport: str
    op: str
    size_bytes: int
    iterations: int
    p50_s: float
    p95_s: float
    gb_per_s: float


@dataclass
class ShardedResult:
    """K-way fan-out overlap measurement at one payload size."""

    num_shards: int
    size_bytes: int
    iterations: int
    read_wall_s: float
    read_shard_sum_s: float
    write_wall_s: float
    write_shard_sum_s: float

    @property
    def read_overlap(self) -> float:
        """Per-shard-sum / wall ratio; > 1 means transfers overlapped."""
        return self.read_shard_sum_s / max(self.read_wall_s, 1e-12)


@dataclass
class BenchConfig:
    """What to measure; defaults give the full sweep."""

    sizes: Sequence[int] = DEFAULT_SIZES
    ops: Sequence[str] = OPS
    transports: Sequence[str] = TRANSPORTS
    iterations: Optional[int] = None  # None = auto-scale per size
    warmup: int = 2
    sharded: int = 0  # shard count for the overlap section; 0 = skip
    quick: bool = False

    def __post_init__(self) -> None:
        if self.quick:
            self.sizes = QUICK_SIZES
        for op in self.ops:
            if op not in OPS:
                raise ValueError(f"unknown op {op!r}; choose from {OPS}")
        for transport in self.transports:
            if transport not in TRANSPORTS:
                raise ValueError(
                    f"unknown transport {transport!r}; "
                    f"choose from {TRANSPORTS}"
                )

    def iterations_for(self, size_bytes: int) -> int:
        if self.iterations is not None:
            return self.iterations
        auto = TARGET_CELL_BYTES // max(size_bytes, 1)
        if self.quick:
            auto = min(auto, 20)
        return max(MIN_ITERATIONS, min(MAX_ITERATIONS, auto))


@dataclass
class _Rig:
    """One transport's server + client + per-size arrays."""

    client: SMBClient
    teardown: Callable[[], None]
    arrays: Dict[int, Tuple[RemoteArray, RemoteArray]] = field(
        default_factory=dict
    )


def _capacity_for(sizes: Sequence[int]) -> int:
    # Two arrays (target + delta) per size, plus slack for headers.
    return 2 * sum(sizes) + (1 << 22)


def _make_rig(transport: str, sizes: Sequence[int]) -> _Rig:
    capacity = _capacity_for(sizes)
    if transport == "inproc":
        server = SMBServer(capacity=capacity)
        client = SMBClient.in_process(server)
        teardown: Callable[[], None] = client.close
    else:
        tcp_server = TcpSMBServer(capacity=capacity).start()
        client = SMBClient.connect(tcp_server.address)

        def teardown() -> None:
            client.close()
            tcp_server.stop()

    rig = _Rig(client=client, teardown=teardown)
    for size in sizes:
        count = max(size // 4, 1)  # float32 elements
        target = client.create_array(f"bench.{size}", count)
        delta = client.create_array(f"bench.{size}.delta", count)
        delta.write(np.ones(count, dtype=np.float32))
        rig.arrays[size] = (target, delta)
    return rig


def _measure_cell(
    client: SMBClient,
    transport: str,
    op: str,
    size_bytes: int,
    target: RemoteArray,
    delta: RemoteArray,
    iterations: int,
    warmup: int,
) -> CellResult:
    """Time one op at one size through the client's own telemetry."""
    scratch = np.empty(target.count, dtype=target.dtype)
    payload = np.zeros(target.count, dtype=np.float32)

    def once() -> None:
        if op == "READ":
            target.read(out=scratch)
        elif op == "WRITE":
            target.write(payload)
        else:
            delta.accumulate_into(target)

    for _ in range(warmup):
        once()
    # A fresh session isolates the timed iterations from warmup (and from
    # any other cell); the client records into whichever session it was
    # handed at construction, so swap it for the duration.
    session = TelemetrySession("metrics")
    previous = client._telemetry
    client._telemetry = session
    try:
        for _ in range(iterations):
            once()
    finally:
        client._telemetry = previous
    histogram = session.registry.histogram(f"smb/client/time/{op}")
    p50, p95 = histogram.quantiles([0.5, 0.95])
    return CellResult(
        transport=transport,
        op=op,
        size_bytes=size_bytes,
        iterations=iterations,
        p50_s=p50,
        p95_s=p95,
        gb_per_s=size_bytes / max(p50, 1e-12) / 1e9,
    )


def _measure_sharded(num_shards: int, size_bytes: int) -> ShardedResult:
    """Wall-clock K-way gather/scatter vs the sum of per-shard costs.

    Uses K TCP loopback servers (one per shard) so each stripe has a real
    socket to overlap on; the per-shard-sum is measured on the very same
    arrays read sequentially, so the comparison is apples-to-apples.
    """
    count = max(size_bytes // 4, num_shards)
    servers = [
        TcpSMBServer(capacity=size_bytes * 3 + (1 << 22)).start()
        for _ in range(num_shards)
    ]
    clients = [SMBClient.connect(server.address) for server in servers]
    try:
        array = create_sharded_array(clients, "bench.sharded", count)
        values = np.ones(count, dtype=np.float32)
        scratch = np.empty(count, dtype=np.float32)
        iterations = max(3, min(20, TARGET_CELL_BYTES // max(size_bytes, 1)))
        array.write(values)
        array.read(out=scratch)  # warmup

        start = time.perf_counter()
        for _ in range(iterations):
            array.read(out=scratch)
        read_wall = (time.perf_counter() - start) / iterations

        flat = scratch.reshape(-1)
        start = time.perf_counter()
        for _ in range(iterations):
            for shard, (lo, hi) in zip(array.shards, array._bounds):
                shard.read(out=flat[lo:hi])
        read_seq = (time.perf_counter() - start) / iterations

        start = time.perf_counter()
        for _ in range(iterations):
            array.write(values)
        write_wall = (time.perf_counter() - start) / iterations

        start = time.perf_counter()
        for _ in range(iterations):
            for shard, (lo, hi) in zip(array.shards, array._bounds):
                shard.write(values[lo:hi])
        write_seq = (time.perf_counter() - start) / iterations
    finally:
        for client in clients:
            client.close()
        for server in servers:
            server.stop()
    return ShardedResult(
        num_shards=num_shards,
        size_bytes=size_bytes,
        iterations=iterations,
        read_wall_s=read_wall,
        read_shard_sum_s=read_seq,
        write_wall_s=write_wall,
        write_shard_sum_s=write_seq,
    )


def run_bench(config: Optional[BenchConfig] = None) -> dict:
    """Run the configured sweep; returns the ``BENCH_smb.json`` payload."""
    config = config or BenchConfig()
    cells: List[CellResult] = []
    for transport in config.transports:
        rig = _make_rig(transport, config.sizes)
        try:
            for size in config.sizes:
                target, delta = rig.arrays[size]
                for op in config.ops:
                    cells.append(
                        _measure_cell(
                            rig.client,
                            transport,
                            op,
                            size,
                            target,
                            delta,
                            config.iterations_for(size),
                            config.warmup,
                        )
                    )
        finally:
            rig.teardown()
    payload = {
        "meta": {
            "benchmark": "smb-data-path",
            "created_unix": time.time(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": config.quick,
        },
        "cells": [asdict(cell) for cell in cells],
    }
    if config.sharded > 1:
        sharded_size = max(config.sizes)
        result = _measure_sharded(config.sharded, sharded_size)
        payload["sharded"] = dict(
            asdict(result), read_overlap=result.read_overlap
        )
    return payload


# -- baseline comparison ---------------------------------------------------


@dataclass
class Regression:
    """One cell whose p50 latency exceeded the allowed factor."""

    transport: str
    op: str
    size_bytes: int
    baseline_p50_s: float
    current_p50_s: float

    @property
    def factor(self) -> float:
        return self.current_p50_s / max(self.baseline_p50_s, 1e-12)

    def describe(self) -> str:
        return (
            f"{self.transport}/{self.op}/{self.size_bytes}B: "
            f"p50 {self.current_p50_s * 1e3:.3f} ms vs baseline "
            f"{self.baseline_p50_s * 1e3:.3f} ms ({self.factor:.2f}x)"
        )


def _index(payload: dict) -> Dict[Tuple[str, str, int], dict]:
    return {
        (cell["transport"], cell["op"], int(cell["size_bytes"])): cell
        for cell in payload.get("cells", [])
    }


def compare(
    current: dict, baseline: dict, max_regression: float = 2.0
) -> List[Regression]:
    """Cells in ``current`` slower than ``max_regression`` x the baseline.

    Cells present in only one payload are skipped (sweeps may differ —
    e.g. a quick CI run against a full committed baseline); the gate
    judges only directly comparable measurements.
    """
    if max_regression <= 0:
        raise ValueError("max_regression must be positive")
    baseline_cells = _index(baseline)
    regressions: List[Regression] = []
    for key, cell in _index(current).items():
        base = baseline_cells.get(key)
        if base is None:
            continue
        if cell["p50_s"] > base["p50_s"] * max_regression:
            regressions.append(
                Regression(
                    transport=key[0],
                    op=key[1],
                    size_bytes=key[2],
                    baseline_p50_s=float(base["p50_s"]),
                    current_p50_s=float(cell["p50_s"]),
                )
            )
    regressions.sort(key=lambda r: r.factor, reverse=True)
    return regressions


def format_table(payload: dict) -> str:
    """Human-readable rendering of a bench payload."""
    lines = [
        f"{'transport':<9} {'op':<10} {'size':>9} {'iters':>5} "
        f"{'p50 ms':>10} {'p95 ms':>10} {'GB/s':>8}"
    ]
    for cell in payload.get("cells", []):
        size = int(cell["size_bytes"])
        human = (
            f"{size // (1 << 20)} MiB" if size >= (1 << 20)
            else f"{size // (1 << 10)} KiB"
        )
        lines.append(
            f"{cell['transport']:<9} {cell['op']:<10} {human:>9} "
            f"{cell['iterations']:>5} {cell['p50_s'] * 1e3:>10.3f} "
            f"{cell['p95_s'] * 1e3:>10.3f} {cell['gb_per_s']:>8.2f}"
        )
    sharded = payload.get("sharded")
    if sharded:
        lines.append(
            f"sharded K={sharded['num_shards']} @ "
            f"{int(sharded['size_bytes']) // (1 << 20)} MiB: "
            f"read wall {sharded['read_wall_s'] * 1e3:.2f} ms vs "
            f"per-shard sum {sharded['read_shard_sum_s'] * 1e3:.2f} ms "
            f"({sharded['read_overlap']:.2f}x overlap)"
        )
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict) or "cells" not in loaded:
        raise ValueError(f"{path} is not a BENCH_smb payload")
    return loaded
