"""SMB data-path benchmark: the regression gate for the zero-copy work.

The paper's Fig. 7 speedups live or die on the per-operation cost of the
SMB primitives, so this module measures exactly that: READ / WRITE /
ACCUMULATE latency and throughput, per transport (``inproc`` — the RDMA
stand-in —, ``tcp`` loopback, and ``shm`` — the co-located
shared-memory doorway), across a payload sweep from 1 KiB to 64 MiB.  The timings come from the client's own telemetry histograms
(``smb/client/time/<OP>``), so the benchmark measures the same code path
training measures, including retry/validation overhead.

Results serialise to ``BENCH_smb.json``; :func:`compare` diffs a current
run against a committed baseline and flags cells whose p50 latency
regressed beyond a factor (the CI gate).  An optional sharded section
times a K-server :class:`~repro.smb.sharding.ShardedArray` gather/scatter
against the sum of its per-shard sequential costs, quantifying the
fan-out overlap.

A second section measures **contention**: N concurrent clients hammering
the same server (the event-loop front-end's raison d'être), reporting
per-request p50/p95 at each client count.  :func:`compare` gates those
cells on *p95* — tail latency under load is exactly what a concurrency
regression ruins first.

CLI: ``repro smb bench [--quick] [--out BENCH_smb.json]
[--compare baseline.json --max-regression 2.0] [--sharded K]
[--clients 1,8,32]``.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import TelemetrySession
from .client import RemoteArray, SMBClient
from .memory import enter_bulk_priority
from .server import SMBServer, TcpSMBServer
from .sharding import ShardedArray, create_sharded_array
from .shm_transport import ShmSMBServer

#: Default payload sweep (bytes): 1 KiB -> 64 MiB in 16x steps, i.e. the
#: span from a tiny control block to an AlexNet-scale weight vector.
DEFAULT_SIZES = (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26)

#: Reduced sweep for CI smoke runs (keeps the job in seconds).
QUICK_SIZES = (1 << 10, 1 << 20)

OPS = ("READ", "WRITE", "ACCUMULATE")
TRANSPORTS = ("inproc", "tcp", "shm")

#: Aim each cell's timed section at roughly this many bytes moved, so
#: small payloads get many iterations (stable quantiles) and huge ones
#: only a few (bounded wall time).
TARGET_CELL_BYTES = 1 << 28
MIN_ITERATIONS = 5
MAX_ITERATIONS = 200


@dataclass
class CellResult:
    """One (transport, op, size) measurement."""

    transport: str
    op: str
    size_bytes: int
    iterations: int
    p50_s: float
    p95_s: float
    gb_per_s: float


@dataclass
class ShardedResult:
    """K-way fan-out overlap measurement at one payload size."""

    num_shards: int
    size_bytes: int
    iterations: int
    read_wall_s: float
    read_shard_sum_s: float
    write_wall_s: float
    write_shard_sum_s: float

    @property
    def read_overlap(self) -> float:
        """Per-shard-sum / wall ratio; > 1 means transfers overlapped."""
        return self.read_shard_sum_s / max(self.read_wall_s, 1e-12)


#: Default client counts for the contention sweep.  128 is the "hundreds
#: of clients" regime the selector front-end exists for; the CLI's
#: ``--quick`` drops it to keep CI in seconds.
DEFAULT_CLIENT_COUNTS = (1, 8, 32, 128)
QUICK_CLIENT_COUNTS = (1, 8)

#: Payload the contention sweep exercises: a 1 MiB ACCUMULATE is the
#: paper's eq.-(7) push at AlexNet-fc scale — big enough to hit the
#: chunked-accumulate path, small enough that 128 clients stay fast.
CONTENTION_SIZE = 1 << 20
CONTENTION_OPS = ("ACCUMULATE", "READ")


@dataclass
class ContentionResult:
    """p50/p95 per-request latency with ``num_clients`` concurrent clients."""

    op: str
    num_clients: int
    size_bytes: int
    iterations_per_client: int
    p50_s: float
    p95_s: float
    aggregate_gb_per_s: float


#: Tenancy fairness cell: the bulk tenant streams ACCUMULATEs of this
#: size while the small tenant issues 1 KiB READs.  Quick mode shrinks
#: the stream so CI stays in seconds — but not below a size whose
#: server-side accumulate dominates each round trip, otherwise the cell
#: measures loopback client churn instead of server dispatch.
TENANCY_BULK_SIZE = 1 << 26
TENANCY_BULK_SIZE_QUICK = 1 << 24
TENANCY_SMALL_SIZE = 1 << 10
TENANCY_BULK_STREAMS = 4


#: Read-fanout cell: model size the replica serves and the client counts
#: fanning out against it.  16 MiB is the acceptance target (a W_g at
#: paper scale); quick mode shrinks it so CI stays in seconds.
SERVING_SIZE = 1 << 24
SERVING_SIZE_QUICK = 1 << 20
DEFAULT_SERVING_CLIENTS = (1, 4, 16)


@dataclass
class ServingResult:
    """Read-fanout throughput against one replica mirror.

    ``primary_reads`` counts primary-server READ ops issued *during the
    fan-out* (after replica warm-up) — the read tier exists so this is
    zero; the bench records it so a regression (readers leaking through
    to the primary) is visible in the payload.
    """

    num_clients: int
    size_bytes: int
    iterations_per_client: int
    p50_s: float
    p95_s: float
    aggregate_gb_per_s: float
    primary_reads: int


@dataclass
class TenancyResult:
    """Small-op latency with and without a bulk tenant streaming.

    The two-lane dispatch exists so one tenant's 64 MiB ACCUMULATE
    stream cannot starve another tenant's 1 KiB control-plane READs;
    ``fairness_ratio`` (contended p95 / uncontended p95) is the number
    that property lives or dies on.
    """

    bulk_size_bytes: int
    small_size_bytes: int
    iterations: int
    bulk_ops: int
    uncontended_p50_s: float
    uncontended_p95_s: float
    contended_p50_s: float
    contended_p95_s: float

    @property
    def fairness_ratio(self) -> float:
        return self.contended_p95_s / max(self.uncontended_p95_s, 1e-12)


@dataclass
class BenchConfig:
    """What to measure; defaults give the full sweep."""

    sizes: Sequence[int] = DEFAULT_SIZES
    ops: Sequence[str] = OPS
    transports: Sequence[str] = TRANSPORTS
    iterations: Optional[int] = None  # None = auto-scale per size
    warmup: int = 2
    sharded: int = 0  # shard count for the overlap section; 0 = skip
    clients: Sequence[int] = ()  # contention sweep client counts; () = skip
    tenancy: bool = False  # mixed-workload two-tenant fairness cell
    serving: Sequence[int] = ()  # read-fanout client counts; () = skip
    quick: bool = False

    def __post_init__(self) -> None:
        if self.quick:
            self.sizes = QUICK_SIZES
            if self.clients:
                self.clients = tuple(
                    n for n in self.clients if n <= max(QUICK_CLIENT_COUNTS)
                ) or QUICK_CLIENT_COUNTS
        for n in self.clients:
            if n < 1:
                raise ValueError(f"client counts must be >= 1, got {n}")
        for n in self.serving:
            if n < 1:
                raise ValueError(
                    f"serving client counts must be >= 1, got {n}"
                )
        for op in self.ops:
            if op not in OPS:
                raise ValueError(f"unknown op {op!r}; choose from {OPS}")
        for transport in self.transports:
            if transport not in TRANSPORTS:
                raise ValueError(
                    f"unknown transport {transport!r}; "
                    f"choose from {TRANSPORTS}"
                )

    def iterations_for(self, size_bytes: int) -> int:
        if self.iterations is not None:
            return self.iterations
        auto = TARGET_CELL_BYTES // max(size_bytes, 1)
        if self.quick:
            auto = min(auto, 20)
        return max(MIN_ITERATIONS, min(MAX_ITERATIONS, auto))


@dataclass
class _Rig:
    """One transport's server + client + per-size arrays."""

    client: SMBClient
    teardown: Callable[[], None]
    arrays: Dict[int, Tuple[RemoteArray, RemoteArray]] = field(
        default_factory=dict
    )


def _capacity_for(sizes: Sequence[int]) -> int:
    # Two arrays (target + delta) per size, plus slack for headers.
    return 2 * sum(sizes) + (1 << 22)


def _make_rig(transport: str, sizes: Sequence[int]) -> _Rig:
    capacity = _capacity_for(sizes)
    if transport == "inproc":
        server = SMBServer(capacity=capacity)
        client = SMBClient.in_process(server)
        teardown: Callable[[], None] = client.close
    elif transport == "shm":
        sock_dir = tempfile.mkdtemp(prefix="smb-bench-")
        shm_server = ShmSMBServer(
            os.path.join(sock_dir, "smb.sock"), capacity=capacity
        ).start()
        client = SMBClient.connect_local(shm_server.path)

        def teardown() -> None:
            client.close()
            shm_server.stop()
            shutil.rmtree(sock_dir, ignore_errors=True)
    else:
        tcp_server = TcpSMBServer(capacity=capacity).start()
        client = SMBClient.connect(tcp_server.address)

        def teardown() -> None:
            client.close()
            tcp_server.stop()

    rig = _Rig(client=client, teardown=teardown)
    for size in sizes:
        count = max(size // 4, 1)  # float32 elements
        target = client.create_array(f"bench.{size}", count)
        delta = client.create_array(f"bench.{size}.delta", count)
        delta.write(np.ones(count, dtype=np.float32))
        rig.arrays[size] = (target, delta)
    return rig


def _measure_cell(
    client: SMBClient,
    transport: str,
    op: str,
    size_bytes: int,
    target: RemoteArray,
    delta: RemoteArray,
    iterations: int,
    warmup: int,
) -> CellResult:
    """Time one op at one size through the client's own telemetry."""
    scratch = np.empty(target.count, dtype=target.dtype)
    payload = np.zeros(target.count, dtype=np.float32)

    def once() -> None:
        if op == "READ":
            target.read(out=scratch)
        elif op == "WRITE":
            target.write(payload)
        else:
            delta.accumulate_into(target)

    for _ in range(warmup):
        once()
    # A fresh session isolates the timed iterations from warmup (and from
    # any other cell); the client records into whichever session it was
    # handed at construction, so swap it for the duration.
    session = TelemetrySession("metrics")
    previous = client._telemetry
    client._telemetry = session
    try:
        for _ in range(iterations):
            once()
    finally:
        client._telemetry = previous
    histogram = session.registry.histogram(f"smb/client/time/{op}")
    p50, p95 = histogram.quantiles([0.5, 0.95])
    return CellResult(
        transport=transport,
        op=op,
        size_bytes=size_bytes,
        iterations=iterations,
        p50_s=p50,
        p95_s=p95,
        gb_per_s=size_bytes / max(p50, 1e-12) / 1e9,
    )


def _measure_sharded(num_shards: int, size_bytes: int) -> ShardedResult:
    """Wall-clock K-way gather/scatter vs the sum of per-shard costs.

    Uses K TCP loopback servers (one per shard) so each stripe has a real
    socket to overlap on; the per-shard-sum is measured on the very same
    arrays read sequentially, so the comparison is apples-to-apples.
    """
    count = max(size_bytes // 4, num_shards)
    servers = [
        TcpSMBServer(capacity=size_bytes * 3 + (1 << 22)).start()
        for _ in range(num_shards)
    ]
    clients = [SMBClient.connect(server.address) for server in servers]
    try:
        array = create_sharded_array(clients, "bench.sharded", count)
        values = np.ones(count, dtype=np.float32)
        scratch = np.empty(count, dtype=np.float32)
        iterations = max(3, min(20, TARGET_CELL_BYTES // max(size_bytes, 1)))
        array.write(values)
        array.read(out=scratch)  # warmup

        start = time.perf_counter()
        for _ in range(iterations):
            array.read(out=scratch)
        read_wall = (time.perf_counter() - start) / iterations

        flat = scratch.reshape(-1)
        start = time.perf_counter()
        for _ in range(iterations):
            for shard, (lo, hi) in zip(array.shards, array._bounds):
                shard.read(out=flat[lo:hi])
        read_seq = (time.perf_counter() - start) / iterations

        start = time.perf_counter()
        for _ in range(iterations):
            array.write(values)
        write_wall = (time.perf_counter() - start) / iterations

        start = time.perf_counter()
        for _ in range(iterations):
            for shard, (lo, hi) in zip(array.shards, array._bounds):
                shard.write(values[lo:hi])
        write_seq = (time.perf_counter() - start) / iterations
    finally:
        for client in clients:
            client.close()
        for server in servers:
            server.stop()
    return ShardedResult(
        num_shards=num_shards,
        size_bytes=size_bytes,
        iterations=iterations,
        read_wall_s=read_wall,
        read_shard_sum_s=read_seq,
        write_wall_s=write_wall,
        write_shard_sum_s=write_seq,
    )


def _contention_iterations(num_clients: int, size_bytes: int) -> int:
    """Per-client iteration count: enough samples for a stable p95 at
    small fleets, bounded total work at large ones."""
    total_target = TARGET_CELL_BYTES // max(size_bytes, 1)
    per_client = total_target // max(num_clients, 1)
    return max(5, min(50, per_client))


def _measure_contention(
    op: str,
    num_clients: int,
    size_bytes: int = CONTENTION_SIZE,
) -> ContentionResult:
    """N clients hammer one TCP server; per-request latency quantiles.

    Every client is a real socket connection with its own private delta
    segment (ACCUMULATE) or scratch buffer (READ), all targeting the one
    shared ``W_g`` — the paper's many-workers-one-box topology.  Clients
    start behind a barrier so the measured window is fully contended.
    """
    count = max(size_bytes // 4, 1)
    capacity = (num_clients + 2) * size_bytes + (1 << 22)
    server = TcpSMBServer(capacity=capacity).start()
    boot = SMBClient.connect(server.address)
    latencies: List[List[float]] = [[] for _ in range(num_clients)]
    failures: List[BaseException] = []
    iterations = _contention_iterations(num_clients, size_bytes)
    try:
        target = boot.create_array("contention.W_g", count)
        target.write(np.zeros(count, dtype=np.float32))
        start_barrier = threading.Barrier(num_clients + 1)

        def worker(index: int) -> None:
            client = SMBClient.connect(server.address)
            try:
                view = client.attach_array(
                    "contention.W_g", target.shm_key, count
                )
                if op == "ACCUMULATE":
                    delta = client.create_array(
                        f"contention.dW_{index}", count
                    )
                    delta.write(np.ones(count, dtype=np.float32))
                    once = lambda: delta.accumulate_into(view)  # noqa: E731
                else:
                    scratch = np.empty(count, dtype=np.float32)
                    once = lambda: view.read(out=scratch)  # noqa: E731
                once()  # warmup (and per-client setup validation)
                start_barrier.wait(timeout=60)
                samples = latencies[index]
                for _ in range(iterations):
                    begin = time.perf_counter()
                    once()
                    samples.append(time.perf_counter() - begin)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
                try:
                    start_barrier.abort()
                except Exception:  # pragma: no cover - barrier races
                    pass
            finally:
                client.close()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"bench-client-{i}"
            )
            for i in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait(timeout=60)
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - wall_start
        if failures:
            raise failures[0]
    finally:
        boot.close()
        server.stop()
    flat = np.asarray([s for per in latencies for s in per], dtype=np.float64)
    p50, p95 = np.percentile(flat, [50, 95])
    total_bytes = flat.size * size_bytes
    return ContentionResult(
        op=op,
        num_clients=num_clients,
        size_bytes=size_bytes,
        iterations_per_client=iterations,
        p50_s=float(p50),
        p95_s=float(p95),
        aggregate_gb_per_s=total_bytes / max(wall, 1e-12) / 1e9,
    )


def _measure_tenancy(
    bulk_size: int = TENANCY_BULK_SIZE,
    small_size: int = TENANCY_SMALL_SIZE,
    iterations: int = 300,
    streams: int = TENANCY_BULK_STREAMS,
) -> TenancyResult:
    """The mixed-workload fairness cell, on one TCP server.

    Tenant ``small`` measures its 1 KiB READ latency twice: first on an
    otherwise idle server (the uncontended floor), then while tenant
    ``bulk`` keeps ``streams`` connections saturated with full-segment
    ACCUMULATEs.  Both tenants get explicit grants, so the cell also
    exercises the quota admission path end to end.
    """
    count = max(bulk_size // 4, 1)
    capacity = (streams + 3) * bulk_size + (1 << 22)
    server = TcpSMBServer(capacity=capacity).start()
    admin = SMBClient.connect(server.address)
    stop = threading.Event()
    bulk_ops = [0] * streams
    failures: List[BaseException] = []
    try:
        admin.create_tenant("bulk", quota=(streams + 2) * bulk_size)
        admin.create_tenant("small", quota=4 * small_size)
        small_client = SMBClient.connect(server.address, tenant="small")
        small = small_client.create_array(
            "tenancy.ctl", max(small_size // 4, 1)
        )
        small.write(np.zeros(small.count, dtype=np.float32))
        scratch = np.empty(small.count, dtype=np.float32)

        def sample(n: int) -> np.ndarray:
            out = np.empty(n, dtype=np.float64)
            for i in range(n):
                begin = time.perf_counter()
                small.read(out=scratch)
                out[i] = time.perf_counter() - begin
            return out

        sample(10)  # warmup
        idle = sample(iterations)

        boot = SMBClient.connect(server.address, tenant="bulk")
        target = boot.create_array("tenancy.W_g", count)
        target.write(np.zeros(count, dtype=np.float32))
        ready = threading.Barrier(streams + 1)

        def stream(index: int) -> None:
            # In production the two tenants run on different machines; on
            # this one-box cell the bulk tenant's *client* threads would
            # otherwise compete with the small tenant's client for the
            # same cores, measuring loopback co-scheduling rather than
            # server dispatch.  Demote them like the server demotes its
            # own bulk lane.
            enter_bulk_priority()
            client = SMBClient.connect(server.address, tenant="bulk")
            try:
                view = client.attach_array(
                    "tenancy.W_g", target.shm_key, count
                )
                delta = client.create_array(f"tenancy.dW_{index}", count)
                delta.write(np.ones(count, dtype=np.float32))
                delta.accumulate_into(view)  # warmup
                ready.wait(timeout=120)
                while not stop.is_set():
                    delta.accumulate_into(view)
                    bulk_ops[index] += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
                try:
                    ready.abort()
                except Exception:  # pragma: no cover - barrier races
                    pass
            finally:
                client.close()

        threads = [
            threading.Thread(
                target=stream, args=(i,), name=f"bench-bulk-{i}"
            )
            for i in range(streams)
        ]
        for thread in threads:
            thread.start()
        ready.wait(timeout=120)
        contended = sample(iterations)
        stop.set()
        for thread in threads:
            thread.join(timeout=600)
        if failures:
            raise failures[0]
        boot.close()
        small_client.close()
    finally:
        stop.set()
        admin.close()
        server.stop()
    idle_p50, idle_p95 = np.percentile(idle, [50, 95])
    busy_p50, busy_p95 = np.percentile(contended, [50, 95])
    return TenancyResult(
        bulk_size_bytes=bulk_size,
        small_size_bytes=small_size,
        iterations=iterations,
        bulk_ops=sum(bulk_ops),
        uncontended_p50_s=float(idle_p50),
        uncontended_p95_s=float(idle_p95),
        contended_p50_s=float(busy_p50),
        contended_p95_s=float(busy_p95),
    )


def _measure_serving(
    num_clients: int, size_bytes: int, iterations: int
) -> ServingResult:
    """N readers fanning out against one replica mirror of one segment.

    The primary takes exactly the replica's warm-up reads; the timed
    fan-out must not touch it at all (``primary_reads`` asserts that in
    the serving tests and records it in the payload here).
    """
    from .serving import ReplicaServer

    name = f"serving.{size_bytes}"
    primary = SMBServer(capacity=size_bytes + (1 << 22))
    master = SMBClient.in_process(primary)
    array = master.create_array(name, max(size_bytes // 4, 1))
    array.write(np.ones(max(size_bytes // 4, 1), dtype=np.float32))
    replica = ReplicaServer(
        lambda: SMBClient.in_process(primary), [name], name="bench-replica"
    ).start()
    try:
        if not replica.wait_ready(timeout=30.0):
            raise RuntimeError("bench replica failed to sync")
        reads_before = primary.stats.op_counts.get("READ", 0)
        latencies: List[List[float]] = [[] for _ in range(num_clients)]
        start_barrier = threading.Barrier(num_clients + 1)

        def reader(index: int) -> None:
            mine = latencies[index]
            start_barrier.wait()
            for _ in range(iterations):
                begin = time.perf_counter()
                replica.read(name)
                mine.append(time.perf_counter() - begin)

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        primary_reads = primary.stats.op_counts.get("READ", 0) - reads_before
    finally:
        replica.stop()
        master.close()
    samples = np.array([t for per in latencies for t in per])
    total_bytes = float(size_bytes) * num_clients * iterations
    return ServingResult(
        num_clients=num_clients,
        size_bytes=size_bytes,
        iterations_per_client=iterations,
        p50_s=float(np.percentile(samples, 50)),
        p95_s=float(np.percentile(samples, 95)),
        aggregate_gb_per_s=total_bytes / max(wall, 1e-9) / 1e9,
        primary_reads=int(primary_reads),
    )


def run_serving(
    client_counts: Sequence[int],
    size_bytes: int = SERVING_SIZE,
    iterations: int = 20,
) -> List[ServingResult]:
    """The read-fanout sweep: one fresh primary + replica per cell."""
    return [
        _measure_serving(num_clients, size_bytes, iterations)
        for num_clients in client_counts
    ]


def run_contention(
    client_counts: Sequence[int],
    size_bytes: int = CONTENTION_SIZE,
    ops: Sequence[str] = CONTENTION_OPS,
) -> List[ContentionResult]:
    """The N-client sweep: one fresh server per (op, N) cell."""
    results = []
    for op in ops:
        if op not in CONTENTION_OPS:
            raise ValueError(
                f"unknown contention op {op!r}; choose from {CONTENTION_OPS}"
            )
        for num_clients in client_counts:
            results.append(_measure_contention(op, num_clients, size_bytes))
    return results


def run_bench(config: Optional[BenchConfig] = None) -> dict:
    """Run the configured sweep; returns the ``BENCH_smb.json`` payload."""
    config = config or BenchConfig()
    cells: List[CellResult] = []
    for transport in config.transports:
        rig = _make_rig(transport, config.sizes)
        try:
            for size in config.sizes:
                target, delta = rig.arrays[size]
                for op in config.ops:
                    cells.append(
                        _measure_cell(
                            rig.client,
                            transport,
                            op,
                            size,
                            target,
                            delta,
                            config.iterations_for(size),
                            config.warmup,
                        )
                    )
        finally:
            rig.teardown()
    payload = {
        "meta": {
            "benchmark": "smb-data-path",
            "created_unix": time.time(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": config.quick,
        },
        "cells": [asdict(cell) for cell in cells],
    }
    if config.sharded > 1:
        sharded_size = max(config.sizes)
        result = _measure_sharded(config.sharded, sharded_size)
        payload["sharded"] = dict(
            asdict(result), read_overlap=result.read_overlap
        )
    if config.clients:
        payload["contention"] = [
            asdict(cell) for cell in run_contention(config.clients)
        ]
    if config.serving:
        payload["serving"] = [
            asdict(cell)
            for cell in run_serving(
                config.serving,
                size_bytes=(
                    SERVING_SIZE_QUICK if config.quick else SERVING_SIZE
                ),
                iterations=10 if config.quick else 20,
            )
        ]
    if config.tenancy:
        tenancy = _measure_tenancy(
            bulk_size=(
                TENANCY_BULK_SIZE_QUICK if config.quick
                else TENANCY_BULK_SIZE
            ),
            iterations=200 if config.quick else 300,
        )
        payload["tenancy"] = dict(
            asdict(tenancy), fairness_ratio=tenancy.fairness_ratio
        )
    return payload


# -- baseline comparison ---------------------------------------------------


@dataclass
class Regression:
    """One cell whose gated latency quantile exceeded the allowed factor.

    Single-client cells gate on p50; contention cells gate on p95 (the
    quantile recorded in ``quantile``) — tail latency under load is what
    a concurrency regression ruins first.
    """

    transport: str
    op: str
    size_bytes: int
    baseline_p50_s: float
    current_p50_s: float
    quantile: str = "p50"

    @property
    def factor(self) -> float:
        return self.current_p50_s / max(self.baseline_p50_s, 1e-12)

    def describe(self) -> str:
        return (
            f"{self.transport}/{self.op}/{self.size_bytes}B: "
            f"{self.quantile} {self.current_p50_s * 1e3:.3f} ms vs baseline "
            f"{self.baseline_p50_s * 1e3:.3f} ms ({self.factor:.2f}x)"
        )


def _index(payload: dict) -> Dict[Tuple[str, str, int], dict]:
    return {
        (cell["transport"], cell["op"], int(cell["size_bytes"])): cell
        for cell in payload.get("cells", [])
    }


def _contention_index(payload: dict) -> Dict[Tuple[str, int], dict]:
    return {
        (cell["op"], int(cell["num_clients"])): cell
        for cell in payload.get("contention", [])
    }


def _serving_index(payload: dict) -> Dict[Tuple[int, int], dict]:
    return {
        (int(cell["num_clients"]), int(cell["size_bytes"])): cell
        for cell in payload.get("serving", [])
    }


def compare(
    current: dict, baseline: dict, max_regression: float = 2.0
) -> List[Regression]:
    """Cells in ``current`` slower than ``max_regression`` x the baseline.

    Cells present in only one payload are skipped (sweeps may differ —
    e.g. a quick CI run against a full committed baseline); the gate
    judges only directly comparable measurements.  Single-client cells
    gate on p50; contention cells gate on p95-under-load.
    """
    if max_regression <= 0:
        raise ValueError("max_regression must be positive")
    baseline_cells = _index(baseline)
    regressions: List[Regression] = []
    for key, cell in _index(current).items():
        base = baseline_cells.get(key)
        if base is None:
            continue
        if cell["p50_s"] > base["p50_s"] * max_regression:
            regressions.append(
                Regression(
                    transport=key[0],
                    op=key[1],
                    size_bytes=key[2],
                    baseline_p50_s=float(base["p50_s"]),
                    current_p50_s=float(cell["p50_s"]),
                )
            )
    baseline_contention = _contention_index(baseline)
    for ckey, cell in _contention_index(current).items():
        base = baseline_contention.get(ckey)
        if base is None:
            continue
        if cell["p95_s"] > base["p95_s"] * max_regression:
            regressions.append(
                Regression(
                    transport=f"tcp[{ckey[1]}c]",
                    op=ckey[0],
                    size_bytes=int(cell["size_bytes"]),
                    baseline_p50_s=float(base["p95_s"]),
                    current_p50_s=float(cell["p95_s"]),
                    quantile="p95",
                )
            )
    baseline_serving = _serving_index(baseline)
    for skey, cell in _serving_index(current).items():
        base = baseline_serving.get(skey)
        if base is None:
            continue
        # Fan-out cells gate on p95 like the contention sweep: it is the
        # tail a replica-side locking regression ruins first.
        if cell["p95_s"] > base["p95_s"] * max_regression:
            regressions.append(
                Regression(
                    transport=f"serving[{skey[0]}c]",
                    op="READ",
                    size_bytes=skey[1],
                    baseline_p50_s=float(base["p95_s"]),
                    current_p50_s=float(cell["p95_s"]),
                    quantile="p95",
                )
            )
    base_tenancy = baseline.get("tenancy")
    cur_tenancy = current.get("tenancy")
    if base_tenancy and cur_tenancy:
        # The fairness gate: the small tenant's contended READ p95 must
        # not regress past the factor against the committed baseline.
        if (
            cur_tenancy["contended_p95_s"]
            > base_tenancy["contended_p95_s"] * max_regression
        ):
            regressions.append(
                Regression(
                    transport="tcp[tenancy]",
                    op="READ-small",
                    size_bytes=int(cur_tenancy["small_size_bytes"]),
                    baseline_p50_s=float(base_tenancy["contended_p95_s"]),
                    current_p50_s=float(cur_tenancy["contended_p95_s"]),
                    quantile="p95",
                )
            )
    regressions.sort(key=lambda r: r.factor, reverse=True)
    return regressions


def format_table(payload: dict) -> str:
    """Human-readable rendering of a bench payload."""
    lines = [
        f"{'transport':<9} {'op':<10} {'size':>9} {'iters':>5} "
        f"{'p50 ms':>10} {'p95 ms':>10} {'GB/s':>8}"
    ]
    for cell in payload.get("cells", []):
        size = int(cell["size_bytes"])
        human = (
            f"{size // (1 << 20)} MiB" if size >= (1 << 20)
            else f"{size // (1 << 10)} KiB"
        )
        lines.append(
            f"{cell['transport']:<9} {cell['op']:<10} {human:>9} "
            f"{cell['iterations']:>5} {cell['p50_s'] * 1e3:>10.3f} "
            f"{cell['p95_s'] * 1e3:>10.3f} {cell['gb_per_s']:>8.2f}"
        )
    contention = payload.get("contention")
    if contention:
        lines.append(
            f"{'contention':<9} {'op':<10} {'clients':>9} {'iters':>5} "
            f"{'p50 ms':>10} {'p95 ms':>10} {'GB/s':>8}"
        )
        for cell in contention:
            lines.append(
                f"{'tcp':<9} {cell['op']:<10} {cell['num_clients']:>9} "
                f"{cell['iterations_per_client']:>5} "
                f"{cell['p50_s'] * 1e3:>10.3f} "
                f"{cell['p95_s'] * 1e3:>10.3f} "
                f"{cell['aggregate_gb_per_s']:>8.2f}"
            )
    serving = payload.get("serving")
    if serving:
        lines.append(
            f"{'serving':<9} {'op':<10} {'clients':>9} {'iters':>5} "
            f"{'p50 ms':>10} {'p95 ms':>10} {'GB/s':>8}"
        )
        for cell in serving:
            lines.append(
                f"{'replica':<9} {'READ':<10} {cell['num_clients']:>9} "
                f"{cell['iterations_per_client']:>5} "
                f"{cell['p50_s'] * 1e3:>10.3f} "
                f"{cell['p95_s'] * 1e3:>10.3f} "
                f"{cell['aggregate_gb_per_s']:>8.2f}"
            )
    tenancy = payload.get("tenancy")
    if tenancy:
        lines.append(
            f"tenancy: {int(tenancy['small_size_bytes']) // (1 << 10)} KiB "
            f"READ p95 {tenancy['uncontended_p95_s'] * 1e3:.3f} ms idle -> "
            f"{tenancy['contended_p95_s'] * 1e3:.3f} ms under "
            f"{int(tenancy['bulk_size_bytes']) // (1 << 20)} MiB "
            f"ACCUMULATE stream ({tenancy['fairness_ratio']:.2f}x, "
            f"{tenancy['bulk_ops']} bulk ops)"
        )
    sharded = payload.get("sharded")
    if sharded:
        lines.append(
            f"sharded K={sharded['num_shards']} @ "
            f"{int(sharded['size_bytes']) // (1 << 20)} MiB: "
            f"read wall {sharded['read_wall_s'] * 1e3:.2f} ms vs "
            f"per-shard sum {sharded['read_shard_sum_s'] * 1e3:.2f} ms "
            f"({sharded['read_overlap']:.2f}x overlap)"
        )
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    sections = ("cells", "contention", "tenancy", "sharded", "serving")
    if not isinstance(loaded, dict) or not any(
        key in loaded for key in sections
    ):
        raise ValueError(f"{path} is not a BENCH_smb payload")
    return loaded
