"""Elastic membership: a versioned job registry for a live training run.

The ``endpoint.json`` rendezvous (:mod:`repro.smb.journal`) answers one
question — *where is the server right now* — for clients that were already
part of the job.  Elastic membership generalises it into a small registry
a worker that was **not** part of the launch can join through:

* the **job document** carries the server endpoint, the job spec (segment
  namespace, model element count, the ``W_g`` and control-block SHM keys,
  the slot capacity, hyper-parameters), published once by the master;
* the **member table** holds one record per live worker — its slot, the
  slot generation its claim returned, a ``status`` (``active`` or
  ``retiring``), and a heartbeat-renewed lease.  A member whose lease
  expires is presumed dead and evicted, freeing its slot for reclaim;
* a monotonic **membership epoch** bumps on every join/leave/eviction, so
  any observer can cheaply detect "the fleet changed" without diffing the
  table; a **version** bumps on *every* mutation (heartbeats included).

The whole registry is one JSON document in a directory, published with
the same write-temp + ``os.replace`` discipline as the rendezvous file
(:func:`repro.smb.journal.publish_json`) so concurrent readers never see
a partial document.  Cross-process mutual exclusion uses an
``O_CREAT | O_EXCL`` lock file next to it; claims of control-block slots
are serialised through this lock, which is what makes the (non-atomic)
:meth:`~repro.smb.client.ControlBlock.claim` race-free in practice.

A late joiner's protocol (`docs/membership.md`):

1. :meth:`MembershipRegistry.read` until a job document appears;
2. :meth:`MembershipRegistry.join` — allocates the lowest free slot (and
   the member record with a fresh lease);
3. attach ``W_g`` and the control block by the SHM keys in the job
   document, :meth:`~repro.smb.client.ControlBlock.claim` the allocated
   slot, seed the replica from ``W_g``, mint a private ``dW`` segment;
4. train; heartbeat on iteration boundaries; on retire/finish,
   release the slot and :meth:`MembershipRegistry.leave`.

Telemetry: mutations feed ``smb/membership/*`` counters (joins, leaves,
retires, lease expiries) and gauges (epoch, live member count), which the
``repro telemetry report`` membership section and the autoscale
controller read.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .errors import MembershipError, SlotsExhaustedError
from .journal import publish_json, read_json
from .memory import DEFAULT_TENANT

PathLike = Union[str, os.PathLike]

#: Registry document schema version; bumped on incompatible changes.
#: Format 2 keys job documents by *namespace* (multi-tenant fleets);
#: format-1 documents are still read (their single job becomes the
#: default namespace's entry).
REGISTRY_FORMAT = 2

#: File names inside a registry directory.
REGISTRY_NAME = "registry.json"
REGISTRY_LOCK_NAME = "registry.lock"

#: Default lease duration; generous against this emulation's iteration
#: times so only a genuinely wedged worker expires.
DEFAULT_LEASE = 30.0

MEMBER_ACTIVE = "active"
MEMBER_RETIRING = "retiring"


@dataclass
class MemberRecord:
    """One live worker as the registry sees it."""

    member_id: str
    slot: int
    generation: int
    status: str = MEMBER_ACTIVE
    joined_at: float = 0.0
    lease_expires: float = 0.0
    heartbeats: int = 0

    def to_doc(self) -> Dict[str, object]:
        return {
            "member_id": self.member_id,
            "slot": self.slot,
            "generation": self.generation,
            "status": self.status,
            "joined_at": self.joined_at,
            "lease_expires": self.lease_expires,
            "heartbeats": self.heartbeats,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "MemberRecord":
        return cls(
            member_id=str(doc["member_id"]),
            slot=int(doc["slot"]),  # type: ignore[arg-type]
            generation=int(doc.get("generation", 0)),  # type: ignore[arg-type]
            status=str(doc.get("status", MEMBER_ACTIVE)),
            joined_at=float(doc.get("joined_at", 0.0)),  # type: ignore[arg-type]
            lease_expires=float(doc.get("lease_expires", 0.0)),  # type: ignore[arg-type]
            heartbeats=int(doc.get("heartbeats", 0)),  # type: ignore[arg-type]
        )


@dataclass
class JobEntry:
    """One namespace's job: endpoint, spec, fleet and member table."""

    server: Dict[str, object] = field(default_factory=dict)
    job: Dict[str, object] = field(default_factory=dict)
    capacity: int = 0
    members: Dict[str, MemberRecord] = field(default_factory=dict)
    #: SMB server fleet for this namespace, in placement order — what a
    #: rebalancer (:func:`repro.smb.placement.rebalance`) walks.  Each
    #: entry is ``{"id": ..., "host": ..., "port": ...}``-shaped.
    servers: List[Dict[str, object]] = field(default_factory=list)

    def to_doc(self) -> Dict[str, object]:
        return {
            "server": self.server,
            "job": self.job,
            "capacity": self.capacity,
            "servers": self.servers,
            "members": {
                member_id: record.to_doc()
                for member_id, record in self.members.items()
            },
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "JobEntry":
        members_doc = doc.get("members", {})
        members = {}
        if isinstance(members_doc, dict):
            for member_id, entry in members_doc.items():
                members[str(member_id)] = MemberRecord.from_doc(entry)
        servers_doc = doc.get("servers", [])
        return cls(
            server=dict(doc.get("server", {})),  # type: ignore[arg-type]
            job=dict(doc.get("job", {})),  # type: ignore[arg-type]
            capacity=int(doc.get("capacity", 0)),  # type: ignore[arg-type]
            members=members,
            servers=[dict(s) for s in servers_doc]  # type: ignore[union-attr]
            if isinstance(servers_doc, list) else [],
        )


@dataclass
class RegistryView:
    """A decoded snapshot of the registry document.

    One registry now hosts any number of concurrent jobs, keyed by
    namespace (the SMB tenant).  The pre-tenancy single-job accessors
    (``server``/``job``/``capacity``/``members``) remain as aliases of
    the **default** namespace's entry, so every legacy caller reads and
    mutates exactly what it did before.
    """

    version: int = 0
    epoch: int = 0
    jobs: Dict[str, JobEntry] = field(default_factory=dict)

    def entry(
        self, namespace: str = DEFAULT_TENANT, create: bool = False
    ) -> JobEntry:
        """The namespace's job entry; ``create`` vivifies a blank one."""
        found = self.jobs.get(namespace)
        if found is None:
            found = JobEntry()
            if create:
                self.jobs[namespace] = found
        return found

    def namespaces(self) -> List[str]:
        """Every namespace with a registered job, sorted."""
        return sorted(self.jobs)

    # -- legacy single-job aliases (the default namespace) ---------------

    @property
    def server(self) -> Dict[str, object]:
        return self.entry(create=True).server

    @server.setter
    def server(self, value: Dict[str, object]) -> None:
        self.entry(create=True).server = value

    @property
    def job(self) -> Dict[str, object]:
        return self.entry(create=True).job

    @job.setter
    def job(self, value: Dict[str, object]) -> None:
        self.entry(create=True).job = value

    @property
    def capacity(self) -> int:
        return self.entry().capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        self.entry(create=True).capacity = value

    @property
    def members(self) -> Dict[str, MemberRecord]:
        return self.entry(create=True).members

    @members.setter
    def members(self, value: Dict[str, MemberRecord]) -> None:
        self.entry(create=True).members = value

    @property
    def has_job(self) -> bool:
        """Whether the default namespace's job has been published."""
        return bool(self.entry().job)

    def total_members(self) -> int:
        """Live member count across every namespace."""
        return sum(len(entry.members) for entry in self.jobs.values())

    def live_members(
        self, namespace: str = DEFAULT_TENANT
    ) -> List[MemberRecord]:
        """Members holding an unexpired record, join order."""
        return sorted(
            self.entry(namespace).members.values(),
            key=lambda m: m.joined_at,
        )

    def member_for_slot(
        self, slot: int, namespace: str = DEFAULT_TENANT
    ) -> Optional[MemberRecord]:
        for member in self.entry(namespace).members.values():
            if member.slot == slot:
                return member
        return None

    def to_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "format": REGISTRY_FORMAT,
            "version": self.version,
            "epoch": self.epoch,
            "jobs": {
                namespace: entry.to_doc()
                for namespace, entry in sorted(self.jobs.items())
                # Vivified-but-never-published entries stay out of the
                # document (alias reads create blank default entries).
                if entry.job or entry.server or entry.members
                or entry.servers
            },
        }
        # Legacy mirror of the default namespace, for format-1 pollers.
        doc.update(self.entry().to_doc())
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "RegistryView":
        fmt = doc.get("format")
        if fmt not in (1, REGISTRY_FORMAT):
            raise MembershipError(
                f"unsupported registry format {fmt!r}"
            )
        jobs: Dict[str, JobEntry] = {}
        jobs_doc = doc.get("jobs")
        if fmt == REGISTRY_FORMAT and isinstance(jobs_doc, dict):
            for namespace, entry in jobs_doc.items():
                jobs[str(namespace)] = JobEntry.from_doc(entry)
        else:
            legacy = JobEntry.from_doc(doc)
            if legacy.job or legacy.server or legacy.members:
                jobs[DEFAULT_TENANT] = legacy
        return cls(
            version=int(doc.get("version", 0)),  # type: ignore[arg-type]
            epoch=int(doc.get("epoch", 0)),  # type: ignore[arg-type]
            jobs=jobs,
        )


class MembershipRegistry:
    """The registry service: one JSON document, atomically republished.

    Args:
        directory: Registry directory (created if missing); holds
            ``registry.json`` plus its lock file.
        lease: Seconds a member record stays valid without a heartbeat.
        telemetry: Session receiving the ``smb/membership/*`` counters;
            defaults to the process-wide session (no-ops when disabled).
        clock: Injectable time source (tests freeze it to drive lease
            expiry deterministically).
        lock_timeout: Seconds to wait for the cross-process lock before
            declaring the registry wedged; a lock file older than this is
            treated as leaked by a dead process and broken.
    """

    def __init__(
        self,
        directory: PathLike,
        lease: float = DEFAULT_LEASE,
        telemetry: Optional[TelemetrySession] = None,
        clock: Callable[[], float] = time.time,
        lock_timeout: float = 10.0,
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be > 0, got {lease}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / REGISTRY_NAME
        self._lock_path = self.directory / REGISTRY_LOCK_NAME
        self.lease = lease
        self.lock_timeout = lock_timeout
        self._clock = clock
        self._telemetry = (
            telemetry if telemetry is not None else _telemetry_current()
        )

    # -- telemetry ---------------------------------------------------------

    def _count(self, event: str, amount: int = 1) -> None:
        if self._telemetry.enabled:
            self._telemetry.registry.inc(f"smb/membership/{event}", amount)

    def _publish(self, view: RegistryView) -> None:
        view.version += 1
        publish_json(self.path, view.to_doc())
        if self._telemetry.enabled:
            registry = self._telemetry.registry
            registry.set("smb/membership/epoch", view.epoch)
            registry.set("smb/membership/live", view.total_members())

    # -- locking -----------------------------------------------------------

    def _acquire_lock(self) -> None:
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return
            except FileExistsError:
                if time.monotonic() >= deadline:
                    # A holder that outlives the whole timeout is treated
                    # as a leaked lock from a dead process: break it once
                    # and retry (the next contender starts a fresh wait).
                    try:
                        age = time.time() - self._lock_path.stat().st_mtime
                    except OSError:
                        continue  # holder just released; retry
                    if age >= self.lock_timeout:
                        try:
                            os.unlink(self._lock_path)
                        except OSError:
                            pass
                        deadline = time.monotonic() + self.lock_timeout
                        continue
                    raise MembershipError(
                        f"registry lock {self._lock_path} held for "
                        f">{self.lock_timeout:.1f}s"
                    )
                time.sleep(0.002)

    def _release_lock(self) -> None:
        try:
            os.unlink(self._lock_path)
        except OSError:
            pass

    @contextlib.contextmanager
    def lock(self) -> Iterator[None]:
        """Hold the registry's cross-process lock around external work.

        The rebalancer (:func:`repro.smb.placement.rebalance`) passes
        this around each segment migration so directory readers never
        resolve a name while its copy is mid-flight.
        """
        self._acquire_lock()
        try:
            yield
        finally:
            self._release_lock()

    # -- read path ---------------------------------------------------------

    def read(self) -> RegistryView:
        """Current registry snapshot (empty view before first publish)."""
        doc = read_json(self.path)
        if doc is None:
            return RegistryView()
        return RegistryView.from_doc(doc)

    def wait_for_job(
        self,
        timeout: float = 30.0,
        poll: float = 0.01,
        namespace: str = DEFAULT_TENANT,
    ) -> RegistryView:
        """Block until the master has published the namespace's job."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.read()
            if view.entry(namespace).job:
                return view
            if time.monotonic() >= deadline:
                scope = (
                    "" if namespace == DEFAULT_TENANT
                    else f" for namespace {namespace!r}"
                )
                raise MembershipError(
                    f"no job published{scope} in {self.path} "
                    f"within {timeout:.1f}s"
                )
            time.sleep(poll)

    def live_count(self, namespace: Optional[str] = DEFAULT_TENANT) -> int:
        """Unexpired members right now; ``None`` counts every namespace."""
        view = self.read()
        now = self._clock()
        entries = (
            view.jobs.values() if namespace is None
            else [view.entry(namespace)]
        )
        return sum(
            1 for entry in entries
            for m in entry.members.values() if m.lease_expires > now
        )

    # -- mutations ---------------------------------------------------------

    def _mutate(
        self, fn: Callable[[RegistryView], None]
    ) -> RegistryView:
        """Read-modify-publish under the cross-process lock."""
        self._acquire_lock()
        try:
            view = self.read()
            self._expire_locked(view)
            fn(view)
            self._publish(view)
            return view
        finally:
            self._release_lock()

    def _expire_locked(self, view: RegistryView) -> int:
        """Evict members whose lease lapsed (any namespace)."""
        now = self._clock()
        expired_total = 0
        for entry in view.jobs.values():
            expired = [
                member_id for member_id, record in entry.members.items()
                if record.lease_expires <= now
            ]
            for member_id in expired:
                del entry.members[member_id]
            expired_total += len(expired)
        if expired_total:
            view.epoch += 1
            self._count("lease_expiries", expired_total)
        return expired_total

    def publish_job(
        self,
        server: Dict[str, object],
        job: Dict[str, object],
        capacity: int,
        namespace: str = DEFAULT_TENANT,
    ) -> RegistryView:
        """Master-side: announce a job (endpoint, spec, slot capacity).

        Members of any previous job *in this namespace* are dropped — a
        new announcement definitionally supersedes the old fleet.  Other
        namespaces' jobs are untouched: one registry directory now hosts
        any number of concurrent tenants.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")

        def apply(view: RegistryView) -> None:
            entry = view.entry(namespace, create=True)
            entry.server = dict(server)
            entry.job = dict(job)
            entry.capacity = capacity
            entry.members = {}
            view.epoch += 1

        return self._mutate(apply)

    def publish_servers(
        self,
        servers: List[Dict[str, object]],
        namespace: str = DEFAULT_TENANT,
    ) -> RegistryView:
        """Record a namespace's SMB server fleet (placement order).

        The rebalancer reads this list to build its placement and the
        per-server clients; republishing it is how fleet growth/shrink
        becomes visible to every worker.
        """

        def apply(view: RegistryView) -> None:
            entry = view.entry(namespace, create=True)
            entry.servers = [dict(s) for s in servers]
            view.epoch += 1

        return self._mutate(apply)

    def join(
        self,
        member_id: str,
        slot: Optional[int] = None,
        generation: int = 0,
        namespace: str = DEFAULT_TENANT,
    ) -> MemberRecord:
        """Admit a worker: allocate a slot, mint a leased member record.

        Launch workers request their deterministic ``slot`` (== rank);
        late joiners omit it and get the lowest slot not held by a live
        member.  Raises :class:`~repro.smb.errors.SlotsExhaustedError`
        at capacity and :class:`~repro.smb.errors.MembershipError` on a
        duplicate id or an occupied requested slot.
        """
        record = MemberRecord(member_id=member_id, slot=-1,
                              generation=generation)

        def apply(view: RegistryView) -> None:
            entry = view.entry(namespace)
            if not entry.job:
                raise MembershipError(
                    "cannot join before the master publishes the job"
                    + (f" for namespace {namespace!r}"
                       if namespace != DEFAULT_TENANT else "")
                )
            if member_id in entry.members:
                raise MembershipError(
                    f"member id {member_id!r} already registered"
                )
            taken = {m.slot for m in entry.members.values()}
            if slot is None:
                open_slots = [
                    s for s in range(entry.capacity) if s not in taken
                ]
                if not open_slots:
                    raise SlotsExhaustedError(entry.capacity)
                record.slot = open_slots[0]
            else:
                if not 0 <= slot < entry.capacity:
                    raise MembershipError(
                        f"slot {slot} out of range [0, {entry.capacity})"
                    )
                if slot in taken:
                    raise MembershipError(
                        f"slot {slot} is held by a live member"
                    )
                record.slot = slot
            now = self._clock()
            record.joined_at = now
            record.lease_expires = now + self.lease
            entry.members[member_id] = record
            view.epoch += 1

        self._mutate(apply)
        self._count("joins")
        return record

    def heartbeat(
        self, member_id: str, namespace: str = DEFAULT_TENANT
    ) -> None:
        """Renew a member's lease (bumps version, not epoch)."""

        def apply(view: RegistryView) -> None:
            record = view.entry(namespace).members.get(member_id)
            if record is None:
                raise MembershipError(
                    f"heartbeat from unknown member {member_id!r} "
                    "(lease expired?)"
                )
            record.lease_expires = self._clock() + self.lease
            record.heartbeats += 1

        self._mutate(apply)

    def update_member(
        self,
        member_id: str,
        namespace: str = DEFAULT_TENANT,
        **fields: object,
    ) -> None:
        """Patch a member record (e.g. the control-block generation the
        worker's claim actually returned)."""

        def apply(view: RegistryView) -> None:
            record = view.entry(namespace).members.get(member_id)
            if record is None:
                raise MembershipError(f"unknown member {member_id!r}")
            for key, value in fields.items():
                if not hasattr(record, key):
                    raise MembershipError(
                        f"member record has no field {key!r}"
                    )
                setattr(record, key, value)

        self._mutate(apply)

    def request_retire(
        self, member_id: str, namespace: str = DEFAULT_TENANT
    ) -> bool:
        """Flag a member ``retiring``; it drains and leaves on its own.

        Returns False when the member is already gone (raced a leave or
        an expiry) — retiring an absent worker is not an error.
        """
        found = []

        def apply(view: RegistryView) -> None:
            record = view.entry(namespace).members.get(member_id)
            if record is not None:
                record.status = MEMBER_RETIRING
                found.append(member_id)

        self._mutate(apply)
        if found:
            self._count("retires")
        return bool(found)

    def retiring(
        self, member_id: str, namespace: str = DEFAULT_TENANT
    ) -> bool:
        """Whether a retire was requested for this member (poll point)."""
        record = self.read().entry(namespace).members.get(member_id)
        return record is not None and record.status == MEMBER_RETIRING

    def leave(
        self, member_id: str, namespace: str = DEFAULT_TENANT
    ) -> bool:
        """Remove a member; its slot becomes allocatable again.

        Returns False when the record was already gone (expired).
        """
        removed = []

        def apply(view: RegistryView) -> None:
            entry = view.entry(namespace)
            if entry.members.pop(member_id, None) is not None:
                view.epoch += 1
                removed.append(member_id)

        self._mutate(apply)
        if removed:
            self._count("leaves")
        return bool(removed)

    def expire_stale(self) -> int:
        """Evict every member whose lease lapsed; returns the count."""
        before = self.read().total_members()
        view = self._mutate(lambda _view: None)
        return max(before - view.total_members(), 0)
