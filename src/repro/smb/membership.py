"""Elastic membership: a versioned job registry for a live training run.

The ``endpoint.json`` rendezvous (:mod:`repro.smb.journal`) answers one
question — *where is the server right now* — for clients that were already
part of the job.  Elastic membership generalises it into a small registry
a worker that was **not** part of the launch can join through:

* the **job document** carries the server endpoint, the job spec (segment
  namespace, model element count, the ``W_g`` and control-block SHM keys,
  the slot capacity, hyper-parameters), published once by the master;
* the **member table** holds one record per live worker — its slot, the
  slot generation its claim returned, a ``status`` (``active`` or
  ``retiring``), and a heartbeat-renewed lease.  A member whose lease
  expires is presumed dead and evicted, freeing its slot for reclaim;
* a monotonic **membership epoch** bumps on every join/leave/eviction, so
  any observer can cheaply detect "the fleet changed" without diffing the
  table; a **version** bumps on *every* mutation (heartbeats included).

The whole registry is one JSON document in a directory, published with
the same write-temp + ``os.replace`` discipline as the rendezvous file
(:func:`repro.smb.journal.publish_json`) so concurrent readers never see
a partial document.  Cross-process mutual exclusion uses an
``O_CREAT | O_EXCL`` lock file next to it; claims of control-block slots
are serialised through this lock, which is what makes the (non-atomic)
:meth:`~repro.smb.client.ControlBlock.claim` race-free in practice.

A late joiner's protocol (`docs/membership.md`):

1. :meth:`MembershipRegistry.read` until a job document appears;
2. :meth:`MembershipRegistry.join` — allocates the lowest free slot (and
   the member record with a fresh lease);
3. attach ``W_g`` and the control block by the SHM keys in the job
   document, :meth:`~repro.smb.client.ControlBlock.claim` the allocated
   slot, seed the replica from ``W_g``, mint a private ``dW`` segment;
4. train; heartbeat on iteration boundaries; on retire/finish,
   release the slot and :meth:`MembershipRegistry.leave`.

Telemetry: mutations feed ``smb/membership/*`` counters (joins, leaves,
retires, lease expiries) and gauges (epoch, live member count), which the
``repro telemetry report`` membership section and the autoscale
controller read.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .errors import MembershipError, SlotsExhaustedError
from .journal import publish_json, read_json

PathLike = Union[str, os.PathLike]

#: Registry document schema version; bumped on incompatible changes.
REGISTRY_FORMAT = 1

#: File names inside a registry directory.
REGISTRY_NAME = "registry.json"
REGISTRY_LOCK_NAME = "registry.lock"

#: Default lease duration; generous against this emulation's iteration
#: times so only a genuinely wedged worker expires.
DEFAULT_LEASE = 30.0

MEMBER_ACTIVE = "active"
MEMBER_RETIRING = "retiring"


@dataclass
class MemberRecord:
    """One live worker as the registry sees it."""

    member_id: str
    slot: int
    generation: int
    status: str = MEMBER_ACTIVE
    joined_at: float = 0.0
    lease_expires: float = 0.0
    heartbeats: int = 0

    def to_doc(self) -> Dict[str, object]:
        return {
            "member_id": self.member_id,
            "slot": self.slot,
            "generation": self.generation,
            "status": self.status,
            "joined_at": self.joined_at,
            "lease_expires": self.lease_expires,
            "heartbeats": self.heartbeats,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "MemberRecord":
        return cls(
            member_id=str(doc["member_id"]),
            slot=int(doc["slot"]),  # type: ignore[arg-type]
            generation=int(doc.get("generation", 0)),  # type: ignore[arg-type]
            status=str(doc.get("status", MEMBER_ACTIVE)),
            joined_at=float(doc.get("joined_at", 0.0)),  # type: ignore[arg-type]
            lease_expires=float(doc.get("lease_expires", 0.0)),  # type: ignore[arg-type]
            heartbeats=int(doc.get("heartbeats", 0)),  # type: ignore[arg-type]
        )


@dataclass
class RegistryView:
    """A decoded snapshot of the registry document."""

    version: int = 0
    epoch: int = 0
    capacity: int = 0
    server: Dict[str, object] = field(default_factory=dict)
    job: Dict[str, object] = field(default_factory=dict)
    members: Dict[str, MemberRecord] = field(default_factory=dict)

    @property
    def has_job(self) -> bool:
        """Whether the master has published the job document yet."""
        return bool(self.job)

    def live_members(self) -> List[MemberRecord]:
        """Members holding an unexpired record, join order."""
        return sorted(self.members.values(), key=lambda m: m.joined_at)

    def member_for_slot(self, slot: int) -> Optional[MemberRecord]:
        for member in self.members.values():
            if member.slot == slot:
                return member
        return None

    def to_doc(self) -> Dict[str, object]:
        return {
            "format": REGISTRY_FORMAT,
            "version": self.version,
            "epoch": self.epoch,
            "capacity": self.capacity,
            "server": self.server,
            "job": self.job,
            "members": {
                member_id: record.to_doc()
                for member_id, record in self.members.items()
            },
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "RegistryView":
        if doc.get("format") != REGISTRY_FORMAT:
            raise MembershipError(
                f"unsupported registry format {doc.get('format')!r}"
            )
        members_doc = doc.get("members", {})
        members = {}
        if isinstance(members_doc, dict):
            for member_id, entry in members_doc.items():
                members[str(member_id)] = MemberRecord.from_doc(entry)
        return cls(
            version=int(doc.get("version", 0)),  # type: ignore[arg-type]
            epoch=int(doc.get("epoch", 0)),  # type: ignore[arg-type]
            capacity=int(doc.get("capacity", 0)),  # type: ignore[arg-type]
            server=dict(doc.get("server", {})),  # type: ignore[arg-type]
            job=dict(doc.get("job", {})),  # type: ignore[arg-type]
            members=members,
        )


class MembershipRegistry:
    """The registry service: one JSON document, atomically republished.

    Args:
        directory: Registry directory (created if missing); holds
            ``registry.json`` plus its lock file.
        lease: Seconds a member record stays valid without a heartbeat.
        telemetry: Session receiving the ``smb/membership/*`` counters;
            defaults to the process-wide session (no-ops when disabled).
        clock: Injectable time source (tests freeze it to drive lease
            expiry deterministically).
        lock_timeout: Seconds to wait for the cross-process lock before
            declaring the registry wedged; a lock file older than this is
            treated as leaked by a dead process and broken.
    """

    def __init__(
        self,
        directory: PathLike,
        lease: float = DEFAULT_LEASE,
        telemetry: Optional[TelemetrySession] = None,
        clock: Callable[[], float] = time.time,
        lock_timeout: float = 10.0,
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be > 0, got {lease}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / REGISTRY_NAME
        self._lock_path = self.directory / REGISTRY_LOCK_NAME
        self.lease = lease
        self.lock_timeout = lock_timeout
        self._clock = clock
        self._telemetry = (
            telemetry if telemetry is not None else _telemetry_current()
        )

    # -- telemetry ---------------------------------------------------------

    def _count(self, event: str, amount: int = 1) -> None:
        if self._telemetry.enabled:
            self._telemetry.registry.inc(f"smb/membership/{event}", amount)

    def _publish(self, view: RegistryView) -> None:
        view.version += 1
        publish_json(self.path, view.to_doc())
        if self._telemetry.enabled:
            registry = self._telemetry.registry
            registry.set("smb/membership/epoch", view.epoch)
            registry.set("smb/membership/live", len(view.members))

    # -- locking -----------------------------------------------------------

    def _acquire_lock(self) -> None:
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return
            except FileExistsError:
                if time.monotonic() >= deadline:
                    # A holder that outlives the whole timeout is treated
                    # as a leaked lock from a dead process: break it once
                    # and retry (the next contender starts a fresh wait).
                    try:
                        age = time.time() - self._lock_path.stat().st_mtime
                    except OSError:
                        continue  # holder just released; retry
                    if age >= self.lock_timeout:
                        try:
                            os.unlink(self._lock_path)
                        except OSError:
                            pass
                        deadline = time.monotonic() + self.lock_timeout
                        continue
                    raise MembershipError(
                        f"registry lock {self._lock_path} held for "
                        f">{self.lock_timeout:.1f}s"
                    )
                time.sleep(0.002)

    def _release_lock(self) -> None:
        try:
            os.unlink(self._lock_path)
        except OSError:
            pass

    # -- read path ---------------------------------------------------------

    def read(self) -> RegistryView:
        """Current registry snapshot (empty view before first publish)."""
        doc = read_json(self.path)
        if doc is None:
            return RegistryView()
        return RegistryView.from_doc(doc)

    def wait_for_job(
        self, timeout: float = 30.0, poll: float = 0.01
    ) -> RegistryView:
        """Block until the master has published the job document."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.read()
            if view.has_job:
                return view
            if time.monotonic() >= deadline:
                raise MembershipError(
                    f"no job published in {self.path} within {timeout:.1f}s"
                )
            time.sleep(poll)

    def live_count(self) -> int:
        """How many unexpired members the registry holds right now."""
        view = self.read()
        now = self._clock()
        return sum(
            1 for m in view.members.values() if m.lease_expires > now
        )

    # -- mutations ---------------------------------------------------------

    def _mutate(
        self, fn: Callable[[RegistryView], None]
    ) -> RegistryView:
        """Read-modify-publish under the cross-process lock."""
        self._acquire_lock()
        try:
            view = self.read()
            self._expire_locked(view)
            fn(view)
            self._publish(view)
            return view
        finally:
            self._release_lock()

    def _expire_locked(self, view: RegistryView) -> int:
        """Evict members whose lease lapsed; returns how many."""
        now = self._clock()
        expired = [
            member_id for member_id, record in view.members.items()
            if record.lease_expires <= now
        ]
        for member_id in expired:
            del view.members[member_id]
        if expired:
            view.epoch += 1
            self._count("lease_expiries", len(expired))
        return len(expired)

    def publish_job(
        self,
        server: Dict[str, object],
        job: Dict[str, object],
        capacity: int,
    ) -> RegistryView:
        """Master-side: announce the job (endpoint, spec, slot capacity).

        Members of any previous job in this directory are dropped — a new
        job announcement definitionally supersedes the old fleet.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")

        def apply(view: RegistryView) -> None:
            view.server = dict(server)
            view.job = dict(job)
            view.capacity = capacity
            view.members = {}
            view.epoch += 1

        return self._mutate(apply)

    def join(
        self,
        member_id: str,
        slot: Optional[int] = None,
        generation: int = 0,
    ) -> MemberRecord:
        """Admit a worker: allocate a slot, mint a leased member record.

        Launch workers request their deterministic ``slot`` (== rank);
        late joiners omit it and get the lowest slot not held by a live
        member.  Raises :class:`~repro.smb.errors.SlotsExhaustedError`
        at capacity and :class:`~repro.smb.errors.MembershipError` on a
        duplicate id or an occupied requested slot.
        """
        record = MemberRecord(member_id=member_id, slot=-1,
                              generation=generation)

        def apply(view: RegistryView) -> None:
            if not view.has_job:
                raise MembershipError(
                    "cannot join before the master publishes the job"
                )
            if member_id in view.members:
                raise MembershipError(
                    f"member id {member_id!r} already registered"
                )
            taken = {m.slot for m in view.members.values()}
            if slot is None:
                open_slots = [
                    s for s in range(view.capacity) if s not in taken
                ]
                if not open_slots:
                    raise SlotsExhaustedError(view.capacity)
                record.slot = open_slots[0]
            else:
                if not 0 <= slot < view.capacity:
                    raise MembershipError(
                        f"slot {slot} out of range [0, {view.capacity})"
                    )
                if slot in taken:
                    raise MembershipError(
                        f"slot {slot} is held by a live member"
                    )
                record.slot = slot
            now = self._clock()
            record.joined_at = now
            record.lease_expires = now + self.lease
            view.members[member_id] = record
            view.epoch += 1

        self._mutate(apply)
        self._count("joins")
        return record

    def heartbeat(self, member_id: str) -> None:
        """Renew a member's lease (bumps version, not epoch)."""

        def apply(view: RegistryView) -> None:
            record = view.members.get(member_id)
            if record is None:
                raise MembershipError(
                    f"heartbeat from unknown member {member_id!r} "
                    "(lease expired?)"
                )
            record.lease_expires = self._clock() + self.lease
            record.heartbeats += 1

        self._mutate(apply)

    def update_member(self, member_id: str, **fields: object) -> None:
        """Patch a member record (e.g. the control-block generation the
        worker's claim actually returned)."""

        def apply(view: RegistryView) -> None:
            record = view.members.get(member_id)
            if record is None:
                raise MembershipError(f"unknown member {member_id!r}")
            for key, value in fields.items():
                if not hasattr(record, key):
                    raise MembershipError(
                        f"member record has no field {key!r}"
                    )
                setattr(record, key, value)

        self._mutate(apply)

    def request_retire(self, member_id: str) -> bool:
        """Flag a member ``retiring``; it drains and leaves on its own.

        Returns False when the member is already gone (raced a leave or
        an expiry) — retiring an absent worker is not an error.
        """
        found = []

        def apply(view: RegistryView) -> None:
            record = view.members.get(member_id)
            if record is not None:
                record.status = MEMBER_RETIRING
                found.append(member_id)

        self._mutate(apply)
        if found:
            self._count("retires")
        return bool(found)

    def retiring(self, member_id: str) -> bool:
        """Whether a retire was requested for this member (poll point)."""
        record = self.read().members.get(member_id)
        return record is not None and record.status == MEMBER_RETIRING

    def leave(self, member_id: str) -> bool:
        """Remove a member; its slot becomes allocatable again.

        Returns False when the record was already gone (expired).
        """
        removed = []

        def apply(view: RegistryView) -> None:
            if view.members.pop(member_id, None) is not None:
                view.epoch += 1
                removed.append(member_id)

        self._mutate(apply)
        if removed:
            self._count("leaves")
        return bool(removed)

    def expire_stale(self) -> int:
        """Evict every member whose lease lapsed; returns the count."""
        before = len(self.read().members)
        view = self._mutate(lambda _view: None)
        return max(before - len(view.members), 0)
