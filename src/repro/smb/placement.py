"""Segment placement across a fleet of SMB servers.

:mod:`repro.smb.sharding` stripes one logical array over K servers with a
*static* layout: stripe ``i`` lives on server ``i``.  That is the right
degenerate case for a fixed fleet, but the paper's multi-server plan
(Sec. V: "multiple SMB servers") meets elastic membership
(:mod:`repro.smb.membership`) the moment servers join or leave a live
run — and a static layout would then remap almost every segment.

This module generalises the layout decision into a *placement policy*:

* :class:`StripedPlacement` — the legacy static striping, kept as the
  degenerate policy: stripe index modulo fleet size.  Deterministic and
  perfectly balanced, but adding one server reshuffles ~everything.
* :class:`HashRingPlacement` — a consistent-hash ring with virtual
  nodes.  Each server owns ``replicas`` points on a 64-bit ring; a
  segment lands on the first point clockwise of its name's hash.
  Adding or removing one server moves only ``~1/K`` of the segments,
  which is what makes live rebalancing affordable.
* :func:`plan_moves` / :func:`rebalance` — compute which segments sit on
  the wrong server under a (new) placement, then migrate each one live
  with a **create → copy → swap → free** sequence: the segment is
  created and written on its target server *before* the source copy is
  freed, so a crash mid-migration leaves a duplicate (harmless — the
  next rebalance converges), never a hole.  Callers serialise
  migrations against concurrent lookups by passing the membership
  registry's lock (or any context manager) as ``lock``.

Placement keys are segment *names* (bare, tenant-relative): the name is
the only property that survives a server restart, so the ring gives a
stable home without any central key table.
"""

from __future__ import annotations

import bisect
import hashlib
import logging
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .client import SMBClient
from .errors import SMBError
from .sharding import ShardedArray, shard_counts

logger = logging.getLogger(__name__)

#: Virtual nodes per server on the hash ring.  Enough that per-server
#: load variance stays within a few percent for realistic fleets; small
#: enough that ring construction is trivially cheap.
DEFAULT_REPLICAS = 64


class PlacementError(SMBError):
    """A placement decision or migration could not be carried out."""


def _hash64(key: str) -> int:
    """Stable 64-bit hash of a ring key (not Python's salted ``hash``)."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Placement:
    """Maps segment names onto servers of a fleet.

    A placement is a pure function over the current server set; it holds
    no per-segment state, so every process that knows the fleet derives
    the same answer — the property that lets workers locate stripes
    without a directory service.
    """

    def __init__(self, servers: Sequence[str]) -> None:
        if not servers:
            raise PlacementError("placement needs at least one server")
        if len(set(servers)) != len(servers):
            raise PlacementError(f"duplicate server ids in {list(servers)}")
        self._servers: List[str] = list(servers)

    @property
    def servers(self) -> List[str]:
        """Current fleet, in registration order."""
        return list(self._servers)

    def server_for(self, name: str) -> str:
        """The server id that should hold segment ``name``."""
        raise NotImplementedError

    def locate(self, names: Sequence[str]) -> Dict[str, str]:
        """Vector form of :meth:`server_for`."""
        return {name: self.server_for(name) for name in names}


class StripedPlacement(Placement):
    """The legacy static layout: stripe index modulo fleet size.

    Segment names produced by :func:`repro.smb.sharding.create_sharded_array`
    end in ``.shard<i>``; that index picks the server.  Names without a
    stripe suffix fall back to the name hash (deterministic, but with
    full reshuffle on fleet changes — that is the degenerate part).
    """

    def server_for(self, name: str) -> str:
        stem, dot, suffix = name.rpartition(".shard")
        if dot and suffix.isdigit():
            return self._servers[int(suffix) % len(self._servers)]
        return self._servers[_hash64(name) % len(self._servers)]


class HashRingPlacement(Placement):
    """Consistent hashing with virtual nodes over the fleet.

    ``replicas`` virtual points per server smooth the load; lookups are
    a binary search over the sorted ring.  :meth:`add_server` and
    :meth:`remove_server` rebuild the ring — O(K * replicas), trivially
    cheap next to the data moves they imply.
    """

    def __init__(
        self, servers: Sequence[str], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise PlacementError(f"replicas must be >= 1, got {replicas}")
        super().__init__(servers)
        self._replicas = replicas
        self._build_ring()

    def _build_ring(self) -> None:
        points = []
        for server in self._servers:
            for replica in range(self._replicas):
                points.append((_hash64(f"{server}#{replica}"), server))
        points.sort()
        self._ring_hashes = [point for point, _ in points]
        self._ring_owners = [owner for _, owner in points]

    def server_for(self, name: str) -> str:
        index = bisect.bisect(self._ring_hashes, _hash64(name))
        if index == len(self._ring_hashes):
            index = 0  # wrap: past the last point lands on the first
        return self._ring_owners[index]

    def add_server(self, server: str) -> None:
        """Join a server; only ~1/K of names move to it."""
        if server in self._servers:
            raise PlacementError(f"server {server!r} already placed")
        self._servers.append(server)
        self._build_ring()

    def remove_server(self, server: str) -> None:
        """Retire a server; only its own names move elsewhere."""
        if server not in self._servers:
            raise PlacementError(f"server {server!r} not in placement")
        if len(self._servers) == 1:
            raise PlacementError("cannot remove the last server")
        self._servers.remove(server)
        self._build_ring()


# -- placement-driven striping -----------------------------------------------

def create_placed_array(
    clients: Mapping[str, SMBClient],
    placement: Placement,
    name: str,
    count: int,
    dtype: str = "float32",
    num_shards: Optional[int] = None,
) -> ShardedArray:
    """Create a sharded array whose stripes live where the policy says.

    The stripe *order* (which slice of the logical vector stripe ``i``
    holds) is fixed by the shard index; the policy only decides which
    server hosts each stripe.  Under :class:`StripedPlacement` this
    reproduces :func:`repro.smb.sharding.create_sharded_array` exactly;
    under :class:`HashRingPlacement` stripes keep their homes when the
    fleet grows or shrinks.
    """
    ids = placement.servers
    missing = [server for server in ids if server not in clients]
    if missing:
        raise PlacementError(f"no client for server(s) {missing}")
    counts = shard_counts(count, num_shards or len(ids))
    shards = [
        clients[placement.server_for(f"{name}.shard{index}")].create_array(
            f"{name}.shard{index}", shard_count, dtype=dtype
        )
        for index, shard_count in enumerate(counts)
    ]
    return ShardedArray(shards, name=name)


def attach_placed_array(
    clients: Mapping[str, SMBClient],
    placement: Placement,
    name: str,
    shm_keys: Sequence[int],
    count: int,
    dtype: str = "float32",
) -> ShardedArray:
    """Slave-side attach: resolve each stripe's home via the policy."""
    counts = shard_counts(count, len(shm_keys))
    shards = [
        clients[placement.server_for(f"{name}.shard{index}")].attach_array(
            f"{name}.shard{index}", key, shard_count, dtype=dtype
        )
        for index, (key, shard_count) in enumerate(zip(shm_keys, counts))
    ]
    return ShardedArray(shards, name=name)


# -- live rebalancing --------------------------------------------------------

@dataclass(frozen=True)
class Move:
    """One planned (or completed) segment migration."""

    name: str
    source: str
    target: str
    nbytes: int
    #: SHM key on the target after the move (0 while only planned).
    shm_key: int = 0


def plan_moves(
    locations: Mapping[str, str], placement: Placement,
    sizes: Optional[Mapping[str, int]] = None,
) -> List[Move]:
    """Which segments sit on the wrong server under ``placement``.

    ``locations`` maps segment name -> current server id (as discovered
    from the fleet); the returned moves are deterministic and disjoint,
    so they can run in any order (or concurrently).
    """
    moves = []
    for name in sorted(locations):
        source = locations[name]
        target = placement.server_for(name)
        if target != source:
            moves.append(Move(
                name=name, source=source, target=target,
                nbytes=int(sizes[name]) if sizes else 0,
            ))
    return moves


def discover_locations(
    clients: Mapping[str, SMBClient],
) -> Dict[str, Dict[str, int]]:
    """Inventory the fleet: segment name -> {server id -> nbytes}.

    One LIST per server, scoped to each client's tenant.  A name on two
    servers is a duplicate left by an interrupted migration; rebalance
    resolves it by keeping the placement's choice and freeing the rest.
    """
    found: Dict[str, Dict[str, int]] = {}
    for server_id, client in clients.items():
        for entry in client.list_segments()["segments"]:
            found.setdefault(entry["name"], {})[server_id] = entry["nbytes"]
    return found


def rebalance(
    clients: Mapping[str, SMBClient],
    placement: Placement,
    lock: Optional[Callable[[], AbstractContextManager]] = None,
) -> List[Move]:
    """Migrate every misplaced segment to its placement home, live.

    For each misplaced segment: **create** it on the target server,
    **copy** the bytes over (read from source, write to target),
    **swap** — from here lookups on the target resolve — then **free**
    the source copy.  The order means a crash at any point leaves at
    least one complete copy; duplicates left behind are swept on the
    next call (target copy wins, stale copies freed without a transfer).

    ``lock`` is a *factory* of context managers — pass the registry's
    :meth:`~repro.smb.membership.MembershipRegistry.lock` method itself,
    not a single entered instance — invoked around each segment's
    create/copy/swap/free so directory readers never observe the
    mid-flight state; migrations between segments still interleave with
    normal traffic.  Returns the completed moves (with target SHM keys).
    """
    unknown = {
        server for server in placement.servers if server not in clients
    }
    if unknown:
        raise PlacementError(
            f"no client for placement server(s) {sorted(unknown)}"
        )
    guard = lock if lock is not None else nullcontext
    completed: List[Move] = []
    for name, copies in sorted(discover_locations(clients).items()):
        target = placement.server_for(name)
        if target not in copies:
            source = min(copies)  # deterministic pick among duplicates
            nbytes = copies[source]
            with guard():
                src_client = clients[source]
                shm_key, _ = src_client.lookup(name)
                access_key = src_client.attach(shm_key, nbytes)
                data = src_client.read(access_key, nbytes)
                dst_client = clients[target]
                new_key = dst_client.create_buffer(name, nbytes)
                dst_client.write(dst_client.attach(new_key, nbytes), data)
                src_client.free(shm_key)
                copies.pop(source)
                copies[target] = nbytes
            completed.append(Move(
                name=name, source=source, target=target,
                nbytes=nbytes, shm_key=new_key,
            ))
            logger.info(
                "rebalanced segment %r: %s -> %s (%d bytes)",
                name, source, target, nbytes,
            )
        # Sweep stale duplicates (interrupted earlier migrations).
        for extra in sorted(set(copies) - {target}):
            with guard():
                stale_key, _ = clients[extra].lookup(name)
                clients[extra].free(stale_key)
            logger.info(
                "swept stale copy of %r from %s", name, extra
            )
    return completed
