"""Wire protocol between SMB clients and the TCP SMB server.

The real Soft Memory Box speaks RDMA verbs over a modified Reliable Datagram
Sockets module; we emulate the same *operations* over a plain TCP stream.
Every exchange is a request/response pair:

``[ header ][ payload bytes ]``

The header is a fixed-size packed struct (:data:`HEADER_FORMAT`) carrying the
opcode, up to two keys, a byte offset, an element count, a float scale and
the payload length.  Strings (segment names) and bulk data travel in the
payload.

The framed *format* is deliberately simple, but the hot path is engineered
for zero userspace copies ("RPC Considered Harmful": one-sided, copy-free
data movement is what makes RDMA-class systems fast):

* **Sends are vectored.**  :func:`send_message` hands the header and the
  payload to ``socket.sendmsg`` as two iovecs, so a payload — which may be
  a ``memoryview`` straight onto a NumPy parameter array — is never
  concatenated into a fresh ``header + payload`` bytes object.
* **Receives land in caller buffers.**  :func:`recv_message` accepts an
  optional writable ``out`` memoryview; a well-formed ``OK`` payload that
  fits is read with ``recv_into`` directly into it (one kernel→user copy,
  zero intermediate allocations).  Without ``out``, the payload is read
  into a single preallocated ``bytearray`` instead of the historical
  chunk-list + ``b"".join`` (which cost two copies).

:class:`Message.payload` therefore accepts ``bytes``, ``bytearray`` or a
C-contiguous ``memoryview``; :meth:`Message.encode` still produces the
classic contiguous frame for journaling and tests.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SMBConnectionError, SMBProtocolError
from .memory import DEFAULT_TENANT

#: opcode(B) status(B) key(q) key2(q) offset(q) count(q) scale(d) paylen(I)
HEADER_FORMAT = "!BBqqqqdI"
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)

#: Magic bytes every connection opens with, so a stray client that connects
#: to the wrong port fails immediately instead of hanging mid-protocol.
#: A bare ``SMB1`` hello lands the connection in the legacy ``default``
#: tenant; ``SMB2`` is followed by a tenant-name record (u16 length +
#: UTF-8 bytes) that scopes every name-based op on the connection.
HELLO = b"SMB1"
HELLO_TENANT = b"SMB2"

#: Length prefix of the tenant-name record that follows ``SMB2``.
TENANT_LEN_STRUCT = struct.Struct("!H")

#: ``WAIT_UPDATE`` timeout wire encoding, carried in the ``scale`` slot.
#: ``scale > 0`` is a bounded wait in seconds; ``scale == 0`` waits
#: forever (the historical encoding, kept so old clients and new servers
#: interoperate); ``scale < 0`` is a **poll** — one immediate version
#: check that returns ``TIMEOUT`` instead of parking anything.  Clients
#: map the API contract (``timeout=None`` forever, ``0.0`` poll) onto
#: these with :func:`encode_wait_timeout`.
WAIT_SCALE_FOREVER = 0.0
WAIT_SCALE_POLL = -1.0


def encode_wait_timeout(timeout: Optional[float]) -> float:
    """Map an API-level wait timeout onto the ``scale`` wire encoding."""
    if timeout is None:
        return WAIT_SCALE_FOREVER
    if timeout < 0:
        raise ValueError(
            f"timeout must be >= 0 (or None for forever), got {timeout}"
        )
    if timeout == 0.0:
        return WAIT_SCALE_POLL
    return timeout

#: Upper bound on the tenant-name record, so a corrupt length prefix
#: cannot make the server wait on a multi-kilobyte "name".
MAX_TENANT_NAME = 255


def encode_hello(tenant: str = DEFAULT_TENANT) -> bytes:
    """The handshake bytes a client opens a connection with.

    The default tenant sends the bare 4-byte ``SMB1`` magic — exactly
    what every pre-tenancy client sends — so old clients and new servers
    (and vice versa) interoperate without a flag day.
    """
    if tenant == DEFAULT_TENANT:
        return HELLO
    encoded = tenant.encode("utf-8")
    if not encoded or len(encoded) > MAX_TENANT_NAME or "/" in tenant:
        raise SMBProtocolError(f"invalid tenant name: {tenant!r}")
    return HELLO_TENANT + TENANT_LEN_STRUCT.pack(len(encoded)) + encoded


def decode_tenant_record(raw: bytes) -> str:
    """Validate + decode the name bytes of an ``SMB2`` tenant record."""
    try:
        tenant = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SMBProtocolError(f"undecodable tenant name: {exc}") from exc
    if not tenant or "/" in tenant:
        raise SMBProtocolError(f"invalid tenant name: {tenant!r}")
    return tenant


def read_hello(sock: socket.socket) -> str:
    """Consume a connection's handshake and return its tenant.

    The blocking-socket counterpart of the event-loop server's
    incremental hello parser, used by the shared-memory doorbell server.
    """
    magic = recv_exact(sock, len(HELLO))
    if magic == HELLO:
        return DEFAULT_TENANT
    if magic != HELLO_TENANT:
        raise SMBProtocolError(f"bad protocol hello: {magic!r}")
    (length,) = TENANT_LEN_STRUCT.unpack(
        recv_exact(sock, TENANT_LEN_STRUCT.size)
    )
    if length == 0 or length > MAX_TENANT_NAME:
        raise SMBProtocolError(f"bad tenant record length: {length}")
    return decode_tenant_record(recv_exact(sock, length))

#: Payload types a message may carry.  ``memoryview`` payloads enable the
#: zero-copy send/receive paths; they must be 1-D, C-contiguous views of
#: bytes (use :func:`as_byte_view` to normalise).
Buffer = Union[bytes, bytearray, memoryview]

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def as_byte_view(data: Buffer) -> memoryview:
    """Normalise any contiguous buffer to a flat ``uint8`` memoryview.

    Accepts ``bytes``/``bytearray``/``memoryview`` and anything else
    exposing the buffer protocol (e.g. a NumPy array).  Raises
    :class:`SMBProtocolError` for non-contiguous inputs — the zero-copy
    paths require contiguity, and silently copying here would defeat them.
    """
    view = memoryview(data)
    if view.format == "B" and view.ndim == 1:
        return view
    try:
        return view.cast("B")
    except TypeError as exc:
        raise SMBProtocolError(
            f"payload buffer must be C-contiguous bytes: {exc}"
        ) from exc


class Op(enum.IntEnum):
    """Operations the SMB server understands (paper Sec. III-B API)."""

    CREATE = 1          # create a named segment            -> shm_key
    ATTACH = 2          # shm_key -> access_key (RDMA rkey)
    READ = 3            # RDMA Read
    WRITE = 4           # RDMA Write
    ACCUMULATE = 5      # dst += scale * src (server-side)
    FREE = 6            # deallocate a segment
    WAIT_UPDATE = 7     # block until version > given
    VERSION = 8         # current segment version
    STATS = 9           # server statistics snapshot
    SHUTDOWN = 10       # stop the server (tests/administration)
    LOOKUP = 11         # name -> shm_key (late joiners)
    LIST = 12           # segment inventory (administration)
    SNAPSHOT = 13       # force a durable snapshot -> snapshot seq
    TENANT_CREATE = 14  # create / re-grant a namespace quota (admin)
    TENANT_STATS = 15   # per-namespace quota/usage/dispatch stats


class Status(enum.IntEnum):
    """Response status codes."""

    OK = 0
    ERROR = 1
    TIMEOUT = 2


@dataclass
class Message:
    """One framed protocol message (request or response).

    Field meaning depends on the opcode; unused numeric fields are zero.
    ``key`` carries the primary key or a returned key, ``key2`` the second
    key for ACCUMULATE (source) or the source offset slot is reused via
    ``count`` conventions documented per-op in :mod:`repro.smb.client`.

    ``payload`` may be a ``memoryview`` (zero-copy send/receive); such a
    view is only guaranteed valid until the next operation on the
    transport or buffer that produced it — callers that need to retain
    payload bytes must copy (``bytes(message.payload)``).
    """

    op: Op
    status: Status = Status.OK
    key: int = 0
    key2: int = 0
    offset: int = 0
    count: int = 0
    scale: float = 1.0
    payload: Buffer = field(default=b"", repr=False)

    def payload_view(self) -> memoryview:
        """The payload as a flat byte view (no copy)."""
        return as_byte_view(self.payload)

    @property
    def payload_nbytes(self) -> int:
        """Byte length of the payload regardless of its container type."""
        payload = self.payload
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        return as_byte_view(payload).nbytes

    def encode_header(self) -> bytes:
        """Serialise the fixed-size header only (for vectored sends)."""
        return struct.pack(
            HEADER_FORMAT,
            int(self.op),
            int(self.status),
            self.key,
            self.key2,
            self.offset,
            self.count,
            self.scale,
            self.payload_nbytes,
        )

    def encode(self) -> bytes:
        """Serialise to one contiguous header + payload frame.

        This is the *copying* representation, kept for the op journal and
        for tests; the socket path uses :meth:`encode_header` plus a
        vectored send of the payload view instead.
        """
        payload = self.payload
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        return self.encode_header() + payload

    @classmethod
    def decode(cls, header: bytes, payload: Buffer) -> "Message":
        """Rebuild a message from its framed parts."""
        op, status, key, key2, offset, count, scale, paylen = struct.unpack(
            HEADER_FORMAT, header
        )
        got = len(payload) if isinstance(payload, (bytes, bytearray)) \
            else as_byte_view(payload).nbytes
        if paylen != got:
            raise SMBProtocolError(
                f"payload length mismatch: header says {paylen}, "
                f"got {got}"
            )
        try:
            return cls(
                op=Op(op),
                status=Status(status),
                key=key,
                key2=key2,
                offset=offset,
                count=count,
                scale=scale,
                payload=payload,
            )
        except ValueError as exc:
            raise SMBProtocolError(str(exc)) from exc


def recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket or raise on EOF.

    The zero-copy receive primitive: bytes land directly in the caller's
    buffer via ``recv_into``; no intermediate chunks are allocated.
    """
    while len(view):
        try:
            received = sock.recv_into(view)
        except OSError as exc:
            raise SMBConnectionError(f"socket receive failed: {exc}") from exc
        if not received:
            raise SMBConnectionError("connection closed mid-message")
        view = view[received:]


def recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` from a socket or raise on EOF."""
    buf = bytearray(nbytes)
    recv_exact_into(sock, memoryview(buf))
    return bytes(buf)


def _sendall_vectored(
    sock: socket.socket, header: bytes, payload: memoryview
) -> None:
    """Send header + payload as two iovecs, finishing any partial send."""
    sent = sock.sendmsg([header, payload])
    total = len(header) + len(payload)
    if sent >= total:
        return
    # Partial send (large payload vs. socket buffer): finish with
    # sendall over the remaining views — still no concatenation.
    if sent < len(header):
        sock.sendall(header[sent:])
        sock.sendall(payload)
    else:
        sock.sendall(payload[sent - len(header):])


def send_message(sock: socket.socket, message: Message) -> None:
    """Write one framed message to a socket (vectored, copy-free).

    The payload — whether ``bytes`` or a memoryview onto a NumPy array —
    is handed to the kernel as its own iovec; the historical
    ``header + payload`` concatenation (a full payload-sized copy per
    send) no longer happens.  Falls back to ``sendall`` on platforms
    without ``sendmsg``.
    """
    try:
        view = message.payload_view()
        header = message.encode_header()
        if view.nbytes == 0:
            sock.sendall(header)
        elif _HAS_SENDMSG:
            _sendall_vectored(sock, header, view)
        else:  # pragma: no cover - non-POSIX fallback
            sock.sendall(header + view.tobytes())
    except OSError as exc:
        raise SMBConnectionError(f"socket send failed: {exc}") from exc


def recv_message(
    sock: socket.socket, out: Optional[memoryview] = None
) -> Message:
    """Read one framed message from a socket.

    Args:
        sock: Connected socket positioned at a frame boundary.
        out: Optional writable byte view.  An ``OK`` payload that fits in
            ``out`` is received *directly into it* and the returned
            message's ``payload`` is a view of ``out`` — the zero-copy
            read path.  Error/oversized payloads never touch ``out``;
            they fall back to a private buffer, so a failed read cannot
            clobber the caller's array with an error blob.
    """
    header = bytearray(HEADER_SIZE)
    recv_exact_into(sock, memoryview(header))
    fields = struct.unpack(HEADER_FORMAT, header)
    status, paylen = fields[1], fields[-1]
    payload: Buffer
    if paylen == 0:
        payload = b""
    elif (
        out is not None
        and status == int(Status.OK)
        and paylen <= len(out)
    ):
        view = out[:paylen]
        recv_exact_into(sock, view)
        payload = view
    else:
        buf = bytearray(paylen)
        recv_exact_into(sock, memoryview(buf))
        payload = bytes(buf)
    return Message.decode(bytes(header), payload)
