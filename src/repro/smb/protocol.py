"""Wire protocol between SMB clients and the TCP SMB server.

The real Soft Memory Box speaks RDMA verbs over a modified Reliable Datagram
Sockets module; we emulate the same *operations* over a plain TCP stream.
Every exchange is a request/response pair:

``[ header ][ payload bytes ]``

The header is a fixed-size packed struct (:data:`HEADER_FORMAT`) carrying the
opcode, up to two keys, a byte offset, an element count, a float scale and
the payload length.  Strings (segment names) and bulk data travel in the
payload.  The format is deliberately simple: the protocol's job is to make
the socket transport byte-compatible across processes, not to be fast.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass, field

from .errors import SMBConnectionError, SMBProtocolError

#: opcode(B) status(B) key(q) key2(q) offset(q) count(q) scale(d) paylen(I)
HEADER_FORMAT = "!BBqqqqdI"
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)

#: Magic bytes every connection opens with, so a stray client that connects
#: to the wrong port fails immediately instead of hanging mid-protocol.
HELLO = b"SMB1"


class Op(enum.IntEnum):
    """Operations the SMB server understands (paper Sec. III-B API)."""

    CREATE = 1          # create a named segment            -> shm_key
    ATTACH = 2          # shm_key -> access_key (RDMA rkey)
    READ = 3            # RDMA Read
    WRITE = 4           # RDMA Write
    ACCUMULATE = 5      # dst += scale * src (server-side)
    FREE = 6            # deallocate a segment
    WAIT_UPDATE = 7     # block until version > given
    VERSION = 8         # current segment version
    STATS = 9           # server statistics snapshot
    SHUTDOWN = 10       # stop the server (tests/administration)
    LOOKUP = 11         # name -> shm_key (late joiners)
    LIST = 12           # segment inventory (administration)
    SNAPSHOT = 13       # force a durable snapshot -> snapshot seq


class Status(enum.IntEnum):
    """Response status codes."""

    OK = 0
    ERROR = 1
    TIMEOUT = 2


@dataclass
class Message:
    """One framed protocol message (request or response).

    Field meaning depends on the opcode; unused numeric fields are zero.
    ``key`` carries the primary key or a returned key, ``key2`` the second
    key for ACCUMULATE (source) or the source offset slot is reused via
    ``count`` conventions documented per-op in :mod:`repro.smb.client`.
    """

    op: Op
    status: Status = Status.OK
    key: int = 0
    key2: int = 0
    offset: int = 0
    count: int = 0
    scale: float = 1.0
    payload: bytes = field(default=b"", repr=False)

    def encode(self) -> bytes:
        """Serialise to header + payload bytes."""
        header = struct.pack(
            HEADER_FORMAT,
            int(self.op),
            int(self.status),
            self.key,
            self.key2,
            self.offset,
            self.count,
            self.scale,
            len(self.payload),
        )
        return header + self.payload

    @classmethod
    def decode(cls, header: bytes, payload: bytes) -> "Message":
        """Rebuild a message from its framed parts."""
        op, status, key, key2, offset, count, scale, paylen = struct.unpack(
            HEADER_FORMAT, header
        )
        if paylen != len(payload):
            raise SMBProtocolError(
                f"payload length mismatch: header says {paylen}, "
                f"got {len(payload)}"
            )
        try:
            return cls(
                op=Op(op),
                status=Status(status),
                key=key,
                key2=key2,
                offset=offset,
                count=count,
                scale=scale,
                payload=payload,
            )
        except ValueError as exc:
            raise SMBProtocolError(str(exc)) from exc


def recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` from a socket or raise on EOF."""
    chunks = []
    remaining = nbytes
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise SMBConnectionError(f"socket receive failed: {exc}") from exc
        if not chunk:
            raise SMBConnectionError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Message) -> None:
    """Write one framed message to a socket."""
    try:
        sock.sendall(message.encode())
    except OSError as exc:
        raise SMBConnectionError(f"socket send failed: {exc}") from exc


def recv_message(sock: socket.socket) -> Message:
    """Read one framed message from a socket."""
    header = recv_exact(sock, HEADER_SIZE)
    paylen = struct.unpack(HEADER_FORMAT, header)[-1]
    payload = recv_exact(sock, paylen) if paylen else b""
    return Message.decode(header, payload)
