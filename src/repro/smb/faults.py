"""Deterministic fault injection for the SMB transport path (chaos layer).

A :class:`FaultInjectingTransport` wraps any
:class:`~repro.smb.transport.Transport` and, driven by a seeded
:class:`FaultPlan`, makes requests fail the way a congested or flaky
interconnect would: raised connection errors ("the packet never made it"),
added latency, forced TCP disconnects, and — for worker-loss drills — a
permanent kill switch after N requests.

Two design rules keep chaos runs meaningful:

* **Determinism** — every decision comes from one ``random.Random(seed)``
  consumed in request order, so a single-threaded request sequence replays
  identically and a failing scenario can be re-run from its seed (the
  ``repro smb chaos`` CLI does exactly that).
* **Faults fire before the server sees the request** — an injected failure
  means the operation did *not* happen, so a retried ``ACCUMULATE`` is
  applied exactly once and convergence assertions stay exact.  Real
  ack-lost duplication is out of scope for this emulation.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..telemetry import current as _telemetry_current
from .errors import FaultInjectedError, TransportClosedError
from .protocol import Message
from .transport import Transport

#: Fault kinds a plan can fire, in the order they are considered.
FAULT_KINDS = ("kill", "disconnect", "error", "delay")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject, and how often.

    Rates are independent per-request probabilities in ``[0, 1]``.

    Attributes:
        seed: Base seed; :meth:`for_rank` derives a distinct deterministic
            stream per worker from it.
        error_rate: Probability of raising :class:`FaultInjectedError`
            before the request is sent (lost request / transport error).
        delay_rate: Probability of sleeping :attr:`delay_seconds` before
            the request proceeds (congestion).
        delay_seconds: Length of one injected delay.
        disconnect_rate: Probability of hard-dropping the underlying
            connection first (exercises TCP reconnect); the request then
            fails with :class:`FaultInjectedError`.  On transports without
            a ``drop_connection`` method this degrades to ``error_rate``
            behaviour.
        ops: Restrict injection to these ``Op`` names (e.g.
            ``("ACCUMULATE", "READ")``); ``None`` targets every op.
        kill_rank: Rank whose transport dies permanently (worker-loss
            drill); ``None`` kills nobody.
        kill_after: Number of successful requests the killed rank is
            allowed before every further request fails.
    """

    seed: int = 0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.005
    disconnect_rate: float = 0.0
    ops: Optional[Tuple[str, ...]] = None
    kill_rank: Optional[int] = None
    kill_after: int = 0

    def for_rank(self, rank: int) -> "FaultPlan":
        """Derive this rank's plan: distinct RNG stream, kill switch armed
        only on :attr:`kill_rank`."""
        kill = self.kill_rank is not None and rank == self.kill_rank
        return replace(
            self,
            seed=self.seed * 1_000_003 + rank + 1,
            kill_rank=rank if kill else None,
        )

    @property
    def injects_anything(self) -> bool:
        """Whether this plan can ever fire."""
        return (
            self.error_rate > 0.0
            or self.delay_rate > 0.0
            or self.disconnect_rate > 0.0
            or self.kill_rank is not None
        )


class FaultInjectingTransport:
    """Transport decorator that injects faults per a :class:`FaultPlan`.

    Thread-safe: fault decisions are drawn under a lock so two worker
    threads sharing one client consume one well-defined random stream.
    Injection counts are kept locally in :attr:`stats` and mirrored into
    the telemetry registry (``smb/faults/<kind>``) when a session is
    recording.
    """

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._requests = 0
        self._killed = False
        self.stats: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _count(self, kind: str) -> None:
        self.stats[kind] += 1
        tel = _telemetry_current()
        if tel.enabled:
            tel.registry.inc(f"smb/faults/{kind}")

    def _decide(self, message: Message) -> Optional[str]:
        """Pick at most one fault for this request (None = clean)."""
        plan = self.plan
        if self._killed:
            return "kill"
        if plan.kill_rank is not None and self._requests >= plan.kill_after:
            self._killed = True
            return "kill"
        self._requests += 1
        if plan.ops is not None and message.op.name not in plan.ops:
            return None
        # One draw per configured kind keeps the stream length fixed per
        # request, so adding a rate does not shift later decisions.
        fault = None
        if plan.disconnect_rate > 0.0:
            if self._rng.random() < plan.disconnect_rate and fault is None:
                fault = "disconnect"
        if plan.error_rate > 0.0:
            if self._rng.random() < plan.error_rate and fault is None:
                fault = "error"
        if plan.delay_rate > 0.0:
            if self._rng.random() < plan.delay_rate and fault is None:
                fault = "delay"
        return fault

    def request(
        self, message: Message, out: Optional[memoryview] = None
    ) -> Message:
        with self._lock:
            fault = self._decide(message)
            if fault is not None:
                self._count(fault)
        if fault == "kill":
            raise TransportClosedError(
                f"injected worker loss: transport killed after "
                f"{self.plan.kill_after} request(s)"
            )
        if fault == "disconnect":
            drop = getattr(self.inner, "drop_connection", None)
            if drop is not None:
                drop()
            raise FaultInjectedError(
                f"injected disconnect before {message.op.name}"
            )
        if fault == "error":
            raise FaultInjectedError(
                f"injected transport error before {message.op.name}"
            )
        if fault == "delay":
            time.sleep(self.plan.delay_seconds)
        return self.inner.request(message, out)

    def close(self) -> None:
        self.inner.close()
