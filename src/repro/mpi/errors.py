"""Exceptions raised by the mini-MPI substrate."""

from __future__ import annotations


class MPIError(Exception):
    """Base class for mini-MPI failures."""


class MPIAbortError(MPIError):
    """The world was aborted (another rank crashed or called abort)."""

    def __init__(self, reason: str = "world aborted") -> None:
        super().__init__(reason)


class MPITimeoutError(MPIError):
    """A blocking receive or collective exceeded its deadline."""


class RankError(MPIError):
    """A rank argument was outside ``[0, size)``."""

    def __init__(self, rank: int, size: int) -> None:
        super().__init__(f"rank {rank} out of range for world size {size}")
        self.rank = rank
        self.size = size
