"""Blocking collectives over the mini-MPI point-to-point layer.

These mirror the MPI operations the paper's platforms rely on:

* ``bcast``   — ShmCaffe's master broadcasts SMB SHM keys (Fig. 2);
* ``gather``/``scatter`` — Caffe-MPI's star topology (master gathers
  gradients, averages, scatters weights back);
* ``allreduce`` — MPICaffe's SSGD gradient aggregation;
* ``barrier`` — epoch alignment in the synchronous baselines.

All collectives are implemented on reserved negative tags with a per-rank
sequence counter: SPMD programs invoke collectives in identical order on
every rank, so counters agree and tags match without global coordination
(the same trick real MPI implementations use for context ids).

Reductions operate on NumPy arrays (or scalars, which are promoted).  Trees
are avoided: with at most a few dozen thread-ranks, flat fan-in is simpler
and plenty fast, and the *modelled* costs live in :mod:`repro.perfmodel`
rather than here.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from .communicator import Communicator

#: Reduction operators understood by (all)reduce.
REDUCE_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda acc, x: acc + x,
    "max": np.maximum,
    "min": np.minimum,
    "prod": lambda acc, x: acc * x,
}


def _as_array(value: Any) -> np.ndarray:
    return np.asarray(value)


def barrier(comm: Communicator) -> None:
    """Block until every rank has entered the barrier."""
    tag = comm._next_collective_tag()
    if comm.rank == 0:
        for source in range(1, comm.size):
            comm.world.mailbox(0).get(
                source, tag, comm.world.abort_flag, None
            )
        for dest in range(1, comm.size):
            comm._send_internal(None, dest, tag)
    else:
        comm._send_internal(None, 0, tag)
        comm.world.mailbox(comm.rank).get(
            0, tag, comm.world.abort_flag, None
        )


def bcast(comm: Communicator, value: Any = None, root: int = 0) -> Any:
    """Broadcast ``value`` from ``root``; every rank returns it."""
    tag = comm._next_collective_tag()
    if comm.rank == root:
        for dest in range(comm.size):
            if dest != root:
                comm._send_internal(value, dest, tag)
        return value
    _, _, payload = comm.world.mailbox(comm.rank).get(
        root, tag, comm.world.abort_flag, None
    )
    return payload


def gather(comm: Communicator, value: Any, root: int = 0) -> Optional[List[Any]]:
    """Collect one value per rank at ``root`` (rank order preserved)."""
    tag = comm._next_collective_tag()
    if comm.rank == root:
        values: List[Any] = [None] * comm.size
        values[root] = value
        for _ in range(comm.size - 1):
            source, _, payload = comm.world.mailbox(root).get(
                -1, tag, comm.world.abort_flag, None
            )
            values[source] = payload
        return values
    comm._send_internal(value, root, tag)
    return None


def allgather(comm: Communicator, value: Any) -> List[Any]:
    """Every rank receives the rank-ordered list of all values."""
    gathered = gather(comm, value, root=0)
    return bcast(comm, gathered, root=0)


def scatter(
    comm: Communicator, values: Optional[Sequence[Any]] = None, root: int = 0
) -> Any:
    """Distribute ``values[i]`` to rank ``i`` from ``root``."""
    tag = comm._next_collective_tag()
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError(
                f"root must supply exactly {comm.size} values"
            )
        for dest in range(comm.size):
            if dest != root:
                comm._send_internal(values[dest], dest, tag)
        return values[root]
    _, _, payload = comm.world.mailbox(comm.rank).get(
        root, tag, comm.world.abort_flag, None
    )
    return payload


def reduce(
    comm: Communicator, value: Any, op: str = "sum", root: int = 0
) -> Optional[np.ndarray]:
    """Reduce arrays across ranks onto ``root``."""
    if op not in REDUCE_OPS:
        raise ValueError(f"unknown reduce op {op!r}; use one of {sorted(REDUCE_OPS)}")
    contributions = gather(comm, _as_array(value), root=root)
    if contributions is None:
        return None
    reducer = REDUCE_OPS[op]
    accumulator = np.array(contributions[0], dtype=np.result_type(
        *[c.dtype for c in contributions]
    ))
    for contribution in contributions[1:]:
        accumulator = reducer(accumulator, contribution)
    return accumulator


def allreduce(comm: Communicator, value: Any, op: str = "sum") -> np.ndarray:
    """Reduce arrays across ranks; every rank gets the result.

    This is the MPI_Allreduce that MPICaffe uses in place of NCCL for
    gradient aggregation.
    """
    reduced = reduce(comm, value, op=op, root=0)
    return bcast(comm, reduced, root=0)


def alltoall(comm: Communicator, values: Sequence[Any]) -> List[Any]:
    """Personalised exchange: rank i sends ``values[j]`` to rank j."""
    if len(values) != comm.size:
        raise ValueError(f"need exactly {comm.size} values, got {len(values)}")
    tag = comm._next_collective_tag()
    for dest in range(comm.size):
        if dest != comm.rank:
            comm._send_internal(values[dest], dest, tag)
    received: List[Any] = [None] * comm.size
    received[comm.rank] = values[comm.rank]
    for _ in range(comm.size - 1):
        source, _, payload = comm.world.mailbox(comm.rank).get(
            -1, tag, comm.world.abort_flag, None
        )
        received[source] = payload
    return received
