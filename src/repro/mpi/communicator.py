"""SPMD world and communicator objects.

ShmCaffe "exchanges initialization messages between the distributed
processes using MPI" (paper Sec. III-A): the master (rank 0) creates SMB
buffers and broadcasts SHM keys; baselines (Caffe-MPI, MPICaffe) additionally
use MPI collectives for gradient exchange.  This module provides the same
programming model with ranks as threads in one process:

* :class:`World` — shared state for ``size`` ranks: one mailbox per rank and
  an abort flag so a crash in any rank unblocks everyone.
* :class:`Communicator` — the per-rank handle (``comm.rank``, ``comm.size``)
  exposing point-to-point in :mod:`repro.mpi.p2p` style and collectives via
  :class:`repro.mpi.collectives.Collectives`.

Message payloads are arbitrary Python objects; large NumPy arrays pass by
reference, which matches the zero-copy spirit of the RDMA setting (receivers
must copy if they intend to mutate, as with real MPI buffer reuse rules).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .errors import MPIAbortError, MPITimeoutError, RankError

#: Matches any source rank in a receive.
ANY_SOURCE = -1
#: Matches any tag in a receive.
ANY_TAG = -1

#: How often blocked receives re-check the abort flag (seconds).
_POLL_INTERVAL = 0.05


class _Mailbox:
    """One rank's incoming-message queue with (source, tag) matching."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._messages: Deque[Tuple[int, int, Any]] = deque()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._lock:
            self._messages.append((source, tag, payload))
            self._arrived.notify_all()

    def _match(self, source: int, tag: int) -> Optional[int]:
        for index, (src, msg_tag, _) in enumerate(self._messages):
            if source not in (ANY_SOURCE, src):
                continue
            if tag not in (ANY_TAG, msg_tag):
                continue
            return index
        return None

    def get(
        self,
        source: int,
        tag: int,
        abort: threading.Event,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, Any]:
        """Pop the first message matching (source, tag); FIFO per match."""
        deadline = None if timeout is None else (
            threading.TIMEOUT_MAX if timeout <= 0 else timeout
        )
        waited = 0.0
        with self._lock:
            while True:
                index = self._match(source, tag)
                if index is not None:
                    message = self._messages[index]
                    del self._messages[index]
                    return message
                if abort.is_set():
                    raise MPIAbortError()
                if deadline is not None and waited >= deadline:
                    raise MPITimeoutError(
                        f"no message from source={source} tag={tag} "
                        f"after {waited:.1f}s"
                    )
                self._arrived.wait(_POLL_INTERVAL)
                waited += _POLL_INTERVAL


class World:
    """Shared communication state for one SPMD job."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"world size must be positive, got {size}")
        self.size = size
        self.abort_flag = threading.Event()
        self.abort_reason: Optional[str] = None
        self._mailboxes: List[_Mailbox] = [_Mailbox() for _ in range(size)]

    def mailbox(self, rank: int) -> _Mailbox:
        if not 0 <= rank < self.size:
            raise RankError(rank, self.size)
        return self._mailboxes[rank]

    def abort(self, reason: str = "aborted") -> None:
        """Unblock every rank with an :class:`MPIAbortError`."""
        self.abort_reason = reason
        self.abort_flag.set()
        # Wake all blocked receivers so they observe the flag promptly.
        for mailbox in self._mailboxes:
            with mailbox._lock:
                mailbox._arrived.notify_all()


class Communicator:
    """Per-rank handle onto a :class:`World` (think ``MPI_COMM_WORLD``)."""

    def __init__(self, world: World, rank: int) -> None:
        if not 0 <= rank < world.size:
            raise RankError(rank, world.size)
        self.world = world
        self.rank = rank
        # Internal sequence number for collectives: because SPMD code calls
        # collectives in the same order on every rank, a per-rank counter
        # yields matching tags without global coordination.
        self._collective_seq = 0

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    @property
    def is_master(self) -> bool:
        """True for rank 0, ShmCaffe's master worker."""
        return self.rank == 0

    # -- point-to-point ---------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (non-blocking, always buffers)."""
        if self.world.abort_flag.is_set():
            raise MPIAbortError(self.world.abort_reason or "aborted")
        if tag < 0:
            raise ValueError(f"user tags must be non-negative, got {tag}")
        self.world.mailbox(dest).put(self.rank, tag, payload)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the payload."""
        _, _, payload = self.recv_with_status(source, tag, timeout)
        return payload

    def recv_with_status(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, Any]:
        """Blocking receive; returns ``(source, tag, payload)``."""
        return self.world.mailbox(self.rank).get(
            source, tag, self.world.abort_flag, timeout
        )

    # -- internals used by collectives ------------------------------------

    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return -self._collective_seq  # negative tags are reserved

    def _send_internal(self, payload: Any, dest: int, tag: int) -> None:
        if self.world.abort_flag.is_set():
            raise MPIAbortError(self.world.abort_reason or "aborted")
        self.world.mailbox(dest).put(self.rank, tag, payload)

    def abort(self, reason: str = "rank requested abort") -> None:
        """Abort the whole world (like ``MPI_Abort``)."""
        self.world.abort(f"rank {self.rank}: {reason}")
