"""SPMD launcher: run the same function on N thread-ranks.

The paper launches one MPI process per GPU via ``mpirun``; here
:func:`run_spmd` spawns one thread per rank, hands each a
:class:`~repro.mpi.communicator.Communicator`, and collects return values.
If any rank raises, the world is aborted so blocked peers unwind instead of
hanging, and the first exception is re-raised in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence

from .communicator import Communicator, World
from .errors import MPIAbortError, MPIError


class _RankThread(threading.Thread):
    """One rank's thread; stores its result or exception."""

    def __init__(
        self,
        world: World,
        rank: int,
        target: Callable[..., Any],
        args: Sequence[Any],
    ) -> None:
        super().__init__(name=f"mpi-rank-{rank}", daemon=True)
        self._world = world
        self._rank = rank
        self._target = target
        self._args = args
        self.result: Any = None
        self.exception: Optional[BaseException] = None

    def run(self) -> None:
        comm = Communicator(self._world, self._rank)
        try:
            self.result = self._target(comm, *self._args)
        except MPIAbortError as exc:
            self.exception = exc  # secondary failure; a peer crashed first
        except BaseException as exc:  # noqa: BLE001 - must not hang peers
            self.exception = exc
            self._world.abort(f"rank {self._rank} raised {type(exc).__name__}: {exc}")


def run_spmd(
    size: int,
    target: Callable[..., Any],
    *args: Any,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``target(comm, *args)`` on ``size`` ranks and return all results.

    Args:
        size: Number of ranks (threads) to launch.
        target: Rank entry point; receives its ``Communicator`` first.
        *args: Extra positional arguments passed to every rank.
        timeout: Overall wall-clock bound; the world is aborted on expiry.

    Returns:
        Rank-ordered list of return values.

    Raises:
        The first non-abort exception raised by any rank, or
        :class:`MPIError` on timeout.
    """
    world = World(size)
    threads = [_RankThread(world, rank, target, args) for rank in range(size)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            world.abort("launcher timeout")
            for straggler in threads:
                straggler.join(5.0)
            raise MPIError(f"SPMD job exceeded {timeout}s")

    primary = next(
        (
            t.exception
            for t in threads
            if t.exception is not None
            and not isinstance(t.exception, MPIAbortError)
        ),
        None,
    )
    if primary is not None:
        raise primary
    secondary = next((t.exception for t in threads if t.exception), None)
    if secondary is not None:
        raise secondary
    return [thread.result for thread in threads]
