"""Mini-MPI: an in-process SPMD substrate with MPI-shaped semantics.

ShmCaffe uses MPI only for bring-up (rank discovery, SHM-key broadcast);
the baseline platforms additionally use collectives for gradient exchange.
This package provides both with ranks as threads:

    from repro import mpi

    def main(comm):
        keys = mpi.bcast(comm, {"W_g": 42} if comm.is_master else None)
        total = mpi.allreduce(comm, comm.rank)
        return keys, total

    results = mpi.run_spmd(4, main)
"""

from .collectives import (
    REDUCE_OPS,
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from .communicator import ANY_SOURCE, ANY_TAG, Communicator, World
from .errors import MPIAbortError, MPIError, MPITimeoutError, RankError
from .launcher import run_spmd

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MPIAbortError",
    "MPIError",
    "MPITimeoutError",
    "RankError",
    "REDUCE_OPS",
    "World",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "run_spmd",
    "scatter",
]
