"""Model-serving front ends over the SMB read tier.

:mod:`repro.smb.serving` provides the data plane (replicas, snapshot
rings, read caches); this package puts network front ends on it —
currently the HTTP/REST :class:`~repro.serve.gateway.ModelGateway`.
"""

from .gateway import ModelGateway

__all__ = ["ModelGateway"]
