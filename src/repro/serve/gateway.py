"""HTTP/REST gateway over a fleet of SMB read replicas.

The training fabric speaks the binary SMB protocol; everything *outside*
it — evaluation harnesses, model registries, a curious engineer with
``curl`` — wants plain HTTP.  This gateway exposes versioned parameter
reads:

    GET /v1/models/<tenant>/<name>             -> current snapshot
    GET /v1/models/<tenant>/<name>?version=N   -> pinned snapshot
    GET /healthz                               -> liveness + fleet state

Responses carry the segment version both as ``X-SMB-Version`` and as a
strong ``ETag`` (``"v<version>"``), so ordinary HTTP conditional requests
(``If-None-Match``) short-circuit to ``304 Not Modified`` without moving
model bytes.  Requests are routed to a replica by consistent hashing
(:class:`~repro.smb.placement.HashRingPlacement`) over ``tenant/name``,
with failover to any other replica that mirrors the segment, so the
read fan-out spreads across the fleet and never touches the training
primary (except a replica's own pinned-read fallback).

Stdlib only: :class:`http.server.ThreadingHTTPServer` on a daemon
thread.  This is a parameter-serving data path, not a hardened public
endpoint — put a real proxy in front for anything internet-facing.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from ..smb.errors import SMBError, UnknownKeyError
from ..smb.placement import HashRingPlacement, Placement
from ..smb.serving import ReplicaServer, VersionNotAvailableError
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current

logger = logging.getLogger(__name__)


class ModelGateway:
    """Routes versioned HTTP parameter reads onto a replica fleet.

    Args:
        replicas: The fleet.  Each replica's ``name`` must be unique —
            it is the placement key its virtual ring nodes hash under.
        host/port: Bind address (``port=0`` picks an ephemeral port).
        placement: Routing policy over replica names; defaults to a
            :class:`HashRingPlacement` so growing the fleet only moves
            ``~1/K`` of the segment keyspace.
        telemetry: Session for the per-tenant read counters
            (``serve/gateway/tenant/<t>/reads``); falls back to the
            ambient session.
    """

    def __init__(
        self,
        replicas: Sequence[ReplicaServer],
        host: str = "127.0.0.1",
        port: int = 0,
        placement: Optional[Placement] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        if not replicas:
            raise ValueError("gateway needs at least one replica")
        names = [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique, got {names}")
        self._replicas: Dict[str, ReplicaServer] = {
            replica.name: replica for replica in replicas
        }
        self._placement = (
            placement if placement is not None else HashRingPlacement(names)
        )
        self._telemetry = telemetry
        self._httpd = ThreadingHTTPServer(
            (host, port), _Handler, bind_and_activate=True
        )
        self._httpd.daemon_threads = True
        self._httpd.gateway = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        bound = self._httpd.server_address
        return str(bound[0]), int(bound[1])

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelGateway":
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="model-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ModelGateway":
        return self if self._thread is not None else self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- routing ----------------------------------------------------------

    def _candidates(self, tenant: str, name: str) -> List[ReplicaServer]:
        """Replicas to try, placement's pick first, then any that serve.

        Failover order after the primary pick is deterministic (sorted
        by replica name) so retried requests behave reproducibly.
        """
        picked = self._placement.server_for(f"{tenant}/{name}")
        ordered: List[ReplicaServer] = []
        replica = self._replicas.get(picked)
        if replica is not None and replica.serves(name, tenant):
            ordered.append(replica)
        for other_name in sorted(self._replicas):
            other = self._replicas[other_name]
            if other is not replica and other.serves(name, tenant):
                ordered.append(other)
        return ordered

    def read(
        self, tenant: str, name: str, version: Optional[int] = None
    ) -> Tuple[int, bytes]:
        """One routed read; tries failover candidates on replica errors.

        Raises:
            UnknownKeyError: No replica in the fleet mirrors the segment.
            VersionNotAvailableError: The pinned version is gone from
                every candidate.
        """
        candidates = self._candidates(tenant, name)
        if not candidates:
            raise UnknownKeyError(0)
        last: Optional[SMBError] = None
        for replica in candidates:
            try:
                got, data = replica.read(name, version=version, tenant=tenant)
            except SMBError as exc:
                last = exc
                continue
            self._count_read(tenant, len(data))
            return got, data
        assert last is not None
        raise last

    def healthz(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "replicas": {
                name: replica.lag_info()
                for name, replica in self._replicas.items()
            },
        }

    def _count_read(self, tenant: str, nbytes: int) -> None:
        tel = self._telemetry
        if tel is None:
            tel = _telemetry_current()
        if tel.enabled:
            tel.registry.inc("serve/gateway/reads")
            tel.registry.inc(f"serve/gateway/tenant/{tenant}/reads")
            tel.registry.inc("serve/gateway/bytes_read", nbytes)


class _Handler(BaseHTTPRequestHandler):
    """Request handler: parses the route, delegates to the gateway."""

    server_version = "SMBGateway/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def _gateway(self) -> ModelGateway:
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("gateway: %s", format % args)

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send_json(200, self._gateway.healthz())
            return
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        if len(parts) != 4 or parts[:2] != ["v1", "models"]:
            self._send_json(404, {"error": "not found"})
            return
        tenant, name = parts[2], parts[3]
        version: Optional[int] = None
        raw = parse_qs(parsed.query).get("version")
        if raw:
            try:
                version = int(raw[0])
            except ValueError:
                self._send_json(
                    400, {"error": f"bad version: {raw[0]!r}"}
                )
                return
        try:
            got, data = self._gateway.read(tenant, name, version=version)
        except VersionNotAvailableError as exc:
            self._send_json(
                404,
                {
                    "error": "version not available",
                    "requested": exc.requested,
                    "current": exc.current,
                },
            )
            return
        except SMBError:
            self._send_json(404, {"error": f"unknown model {tenant}/{name}"})
            return
        etag = f'"v{got}"'
        if self.headers.get("If-None-Match") == etag:
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("X-SMB-Version", str(got))
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("ETag", etag)
        self.send_header("X-SMB-Version", str(got))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, code: int, body: Dict[str, object]) -> None:
        payload = json.dumps(body).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
