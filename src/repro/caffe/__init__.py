"""A NumPy reproduction of the BVLC Caffe substrate ShmCaffe extends.

Blobs, a layer zoo, DAG nets built from prototxt-like specs, the SGD solver
with Caffe's LR policies, flat parameter views for distributed sharing, and
a synthetic data pipeline with LMDB-style storage and prefetch.
"""

from . import layers, models
from .blob import Blob, msra_fill, xavier_fill
from .data import (
    LmdbStore,
    Minibatch,
    Prefetcher,
    SyntheticImageDataset,
    decode_datum,
    encode_datum,
)
from .net import Net
from .netspec import InferenceResult, LayerSpec, NetSpec, infer
from . import prototxt
from .params import FlatParams
from .snapshot import (
    SnapshotError,
    load_net,
    load_solver_state,
    save_net,
    save_solver_state,
)
from .solver import LR_POLICIES, SGDSolver, SolverConfig
from .solvers_extra import AdaGradSolver, AdamSolver, NesterovSolver
from .transforms import TransformError, TransformParams, Transformer

__all__ = [
    "AdaGradSolver",
    "AdamSolver",
    "Blob",
    "FlatParams",
    "InferenceResult",
    "LayerSpec",
    "LmdbStore",
    "LR_POLICIES",
    "Minibatch",
    "NesterovSolver",
    "Net",
    "NetSpec",
    "Prefetcher",
    "prototxt",
    "SGDSolver",
    "SnapshotError",
    "SolverConfig",
    "SyntheticImageDataset",
    "TransformError",
    "TransformParams",
    "Transformer",
    "decode_datum",
    "encode_datum",
    "infer",
    "layers",
    "load_net",
    "load_solver_state",
    "models",
    "msra_fill",
    "save_net",
    "save_solver_state",
    "xavier_fill",
]
