"""Snapshot and restore: Caffe's ``.caffemodel`` / ``.solverstate`` pair.

Caffe periodically writes the learned weights and, separately, the solver
state (iteration counter + momentum history) so training can resume
bit-exactly.  This module provides both in NumPy's ``.npz`` container:

* :func:`save_net` / :func:`load_net` — parameter blobs by name (the
  ``.caffemodel``).  Loading is name-checked, so restoring into a net
  built from a different spec fails loudly.
* :func:`save_solver_state` / :func:`load_solver_state` — iteration,
  momentum history, the net's RNG state (dropout masks) and the dataset
  cursor (the ``.solverstate``); weights are saved alongside so one file
  resumes everything *deterministically*, not just momentum/iteration-
  continuously.

All restores are dtype-checked: a blob saved as float64 cannot silently
narrow into a float32 net (or vice versa) — that would resume training
from subtly different weights and break bit-exact recovery guarantees.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, Optional, Union

import numpy as np

from .net import Net
from .solver import SGDSolver

PathLike = Union[str, os.PathLike]
#: Snapshot sinks/sources: a filesystem path or an open binary file
#: object (callers doing atomic tmp-write-then-rename pass the handle).
FileOrPath = Union[PathLike, IO[bytes]]


class SnapshotError(Exception):
    """A snapshot did not match the net/solver it was restored into."""


def _check_dtype(name: str, stored: np.dtype, expected: np.dtype) -> None:
    if stored != expected:
        raise SnapshotError(
            f"{name}: snapshot dtype {stored} != expected {expected} "
            "(refusing to cast silently)"
        )


def _param_items(net: Net) -> Dict[str, np.ndarray]:
    items: Dict[str, np.ndarray] = {}
    for blob in net.params:
        if blob.name in items:
            raise SnapshotError(f"duplicate parameter name {blob.name!r}")
        items[blob.name] = blob.data
    return items


def save_net(net: Net, path: PathLike) -> None:
    """Write every parameter blob (weights + BN statistics) to ``path``."""
    np.savez(path, **_param_items(net))


def load_net(net: Net, path: PathLike) -> None:
    """Restore parameters saved by :func:`save_net` into ``net``.

    Raises:
        SnapshotError: On missing/extra/mis-shaped parameters.
    """
    with np.load(path) as archive:
        saved = set(archive.files)
        expected = {blob.name for blob in net.params}
        if saved != expected:
            missing = sorted(expected - saved)
            extra = sorted(saved - expected)
            raise SnapshotError(
                f"parameter mismatch: missing {missing}, unexpected {extra}"
            )
        for blob in net.params:
            stored = archive[blob.name]
            if stored.shape != blob.shape:
                raise SnapshotError(
                    f"{blob.name}: snapshot shape {stored.shape} != "
                    f"blob shape {blob.shape}"
                )
            _check_dtype(blob.name, stored.dtype, blob.data.dtype)
            blob.data[...] = stored


def save_solver_state(
    solver: SGDSolver, path: FileOrPath, cursor: Optional[int] = None
) -> None:
    """Write weights + iteration + momentum + RNG state to ``path``.

    Args:
        solver: Solver whose net/iteration/history are captured.
        cursor: Optional dataset cursor — how many minibatches the data
            pipeline has consumed — so a resumed leg fast-forwards its
            (deterministic, seeded) batch stream to the exact position
            instead of replaying data from the start.
    """
    payload = _param_items(solver.net)
    payload["__iteration__"] = np.asarray([solver.iteration], dtype=np.int64)
    for index, history in enumerate(solver._history):
        payload[f"__history__{index}"] = history
    rng = getattr(solver.net, "_rng", None)
    if rng is not None:
        payload["__rng_state__"] = np.frombuffer(
            json.dumps(rng.bit_generator.state).encode(), dtype=np.uint8
        ).copy()
    if cursor is not None:
        payload["__cursor__"] = np.asarray([cursor], dtype=np.int64)
    np.savez(path, **payload)


def load_solver_state(solver: SGDSolver, path: FileOrPath) -> Optional[int]:
    """Resume a solver from :func:`save_solver_state` output.

    Restores weights, the iteration counter (and hence the LR schedule
    position), the momentum history and — when present in the snapshot —
    the net's RNG state (so dropout masks continue the saved stream), and
    returns the dataset cursor so the caller can fast-forward its batch
    pipeline.  With all four restored, continued training is bit-identical
    to an uninterrupted run.

    Returns:
        The saved dataset cursor, or ``None`` for snapshots without one.
    """
    with np.load(path) as archive:
        if "__iteration__" not in archive.files:
            raise SnapshotError("not a solver-state snapshot (weights only?)")
        for blob in solver.net.params:
            if blob.name not in archive.files:
                raise SnapshotError(f"snapshot lacks parameter {blob.name!r}")
            stored = archive[blob.name]
            if stored.shape != blob.shape:
                raise SnapshotError(
                    f"{blob.name}: snapshot shape {stored.shape} != "
                    f"blob shape {blob.shape}"
                )
            _check_dtype(blob.name, stored.dtype, blob.data.dtype)
            blob.data[...] = stored
        solver.iteration = int(archive["__iteration__"][0])
        for index, history in enumerate(solver._history):
            key = f"__history__{index}"
            if key not in archive.files:
                raise SnapshotError(f"snapshot lacks momentum slot {index}")
            stored = archive[key]
            if stored.shape != history.shape:
                raise SnapshotError(
                    f"momentum slot {index}: shape {stored.shape} != "
                    f"{history.shape}"
                )
            _check_dtype(f"momentum slot {index}", stored.dtype,
                         history.dtype)
            history[...] = stored
        if "__rng_state__" in archive.files:
            rng = getattr(solver.net, "_rng", None)
            if rng is not None:
                rng.bit_generator.state = json.loads(
                    bytes(archive["__rng_state__"]).decode()
                )
        if "__cursor__" in archive.files:
            return int(archive["__cursor__"][0])
    return None
