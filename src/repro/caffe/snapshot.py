"""Snapshot and restore: Caffe's ``.caffemodel`` / ``.solverstate`` pair.

Caffe periodically writes the learned weights and, separately, the solver
state (iteration counter + momentum history) so training can resume
bit-exactly.  This module provides both in NumPy's ``.npz`` container:

* :func:`save_net` / :func:`load_net` — parameter blobs by name (the
  ``.caffemodel``).  Loading is name-checked, so restoring into a net
  built from a different spec fails loudly.
* :func:`save_solver_state` / :func:`load_solver_state` — iteration and
  momentum history (the ``.solverstate``); weights are saved alongside so
  one file resumes everything.
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .net import Net
from .solver import SGDSolver

PathLike = Union[str, os.PathLike]


class SnapshotError(Exception):
    """A snapshot did not match the net/solver it was restored into."""


def _param_items(net: Net) -> Dict[str, np.ndarray]:
    items: Dict[str, np.ndarray] = {}
    for blob in net.params:
        if blob.name in items:
            raise SnapshotError(f"duplicate parameter name {blob.name!r}")
        items[blob.name] = blob.data
    return items


def save_net(net: Net, path: PathLike) -> None:
    """Write every parameter blob (weights + BN statistics) to ``path``."""
    np.savez(path, **_param_items(net))


def load_net(net: Net, path: PathLike) -> None:
    """Restore parameters saved by :func:`save_net` into ``net``.

    Raises:
        SnapshotError: On missing/extra/mis-shaped parameters.
    """
    with np.load(path) as archive:
        saved = set(archive.files)
        expected = {blob.name for blob in net.params}
        if saved != expected:
            missing = sorted(expected - saved)
            extra = sorted(saved - expected)
            raise SnapshotError(
                f"parameter mismatch: missing {missing}, unexpected {extra}"
            )
        for blob in net.params:
            stored = archive[blob.name]
            if stored.shape != blob.shape:
                raise SnapshotError(
                    f"{blob.name}: snapshot shape {stored.shape} != "
                    f"blob shape {blob.shape}"
                )
            blob.data[...] = stored


def save_solver_state(solver: SGDSolver, path: PathLike) -> None:
    """Write weights + iteration + momentum history to ``path``."""
    payload = _param_items(solver.net)
    payload["__iteration__"] = np.asarray([solver.iteration], dtype=np.int64)
    for index, history in enumerate(solver._history):
        payload[f"__history__{index}"] = history
    np.savez(path, **payload)


def load_solver_state(solver: SGDSolver, path: PathLike) -> None:
    """Resume a solver from :func:`save_solver_state` output.

    Restores weights, the iteration counter (and hence the LR schedule
    position) and the momentum history, so continued training is
    bit-identical to an uninterrupted run.
    """
    with np.load(path) as archive:
        if "__iteration__" not in archive.files:
            raise SnapshotError("not a solver-state snapshot (weights only?)")
        for blob in solver.net.params:
            if blob.name not in archive.files:
                raise SnapshotError(f"snapshot lacks parameter {blob.name!r}")
            blob.data[...] = archive[blob.name]
        solver.iteration = int(archive["__iteration__"][0])
        for index, history in enumerate(solver._history):
            key = f"__history__{index}"
            if key not in archive.files:
                raise SnapshotError(f"snapshot lacks momentum slot {index}")
            stored = archive[key]
            if stored.shape != history.shape:
                raise SnapshotError(
                    f"momentum slot {index}: shape {stored.shape} != "
                    f"{history.shape}"
                )
            history[...] = stored
