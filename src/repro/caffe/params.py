"""Flat parameter views: the vectors SEASGD and the baselines exchange.

Distributed parameter sharing operates on one contiguous float32 vector per
replica (that is what lands in the SMB segments and MPI messages).
:class:`FlatParams` maintains the mapping between a net's parameter blobs
and that vector, in both directions, for data and gradients.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .net import Net


class FlatParams:
    """Flattened view over a net's learnable parameters."""

    def __init__(self, net: Net) -> None:
        self._net = net
        self._blobs = net.params
        self._slices: List[Tuple[int, int]] = []
        offset = 0
        for blob in self._blobs:
            self._slices.append((offset, offset + blob.count))
            offset += blob.count
        self.count = offset

    @property
    def nbytes(self) -> int:
        """Vector size in bytes (float32)."""
        return self.count * 4

    def get_vector(self) -> np.ndarray:
        """Concatenate all parameter data into one float32 vector."""
        out = np.empty(self.count, dtype=np.float32)
        for blob, (lo, hi) in zip(self._blobs, self._slices):
            out[lo:hi] = blob.data.ravel()
        return out

    def set_vector(self, vector: np.ndarray) -> None:
        """Scatter a flat vector back into the parameter blobs."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {vector.size}"
            )
        for blob, (lo, hi) in zip(self._blobs, self._slices):
            blob.data[...] = vector[lo:hi].reshape(blob.shape)

    def get_grad_vector(self) -> np.ndarray:
        """Concatenate all parameter diffs into one float32 vector."""
        out = np.empty(self.count, dtype=np.float32)
        for blob, (lo, hi) in zip(self._blobs, self._slices):
            out[lo:hi] = blob.diff.ravel()
        return out

    def set_grad_vector(self, vector: np.ndarray) -> None:
        """Scatter a flat gradient vector back into the parameter diffs."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {vector.size}"
            )
        for blob, (lo, hi) in zip(self._blobs, self._slices):
            blob.diff[...] = vector[lo:hi].reshape(blob.shape)

    def add_to_params(self, delta: np.ndarray, scale: float = 1.0) -> None:
        """In-place ``W += scale * delta`` across all blobs."""
        delta = np.asarray(delta, dtype=np.float32)
        if delta.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {delta.size}"
            )
        for blob, (lo, hi) in zip(self._blobs, self._slices):
            blob.data += scale * delta[lo:hi].reshape(blob.shape)
