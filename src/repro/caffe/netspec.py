"""Declarative network specs with allocation-free shape inference.

A :class:`NetSpec` is the stand-in for Caffe's prototxt: an ordered list of
:class:`LayerSpec` entries naming each layer's type, bottoms and tops.  The
same spec serves two purposes:

* :class:`repro.caffe.net.Net` instantiates it into a runnable network;
* :func:`infer` walks it *without allocating parameters*, producing every
  blob shape and the exact learnable-parameter count.  This is how the
  full-size Inception/ResNet/VGG graphs are sized for the performance model
  (VGG16's 138 M floats are never materialised).

The two paths are kept honest by tests that instantiate small specs and
compare counts against :func:`infer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from .blob import Shape
from .layers.base import LayerError, conv_output_dim, pool_output_dim
from .layers.im2col import as_pair


@dataclass
class LayerSpec:
    """One layer entry: type, name, connectivity and constructor kwargs."""

    type_name: str
    name: str
    bottoms: List[str]
    tops: List[str]
    kwargs: Dict[str, object] = field(default_factory=dict)


class NetSpec:
    """Ordered, named collection of layer specs (a prototxt equivalent)."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.layers: List[LayerSpec] = []
        self._layer_names: set = set()

    def add(
        self,
        type_name: str,
        name: str,
        bottoms: Sequence[str] = (),
        tops: Sequence[str] = (),
        **kwargs: object,
    ) -> List[str]:
        """Append a layer; returns its top blob names.

        Tops default to a single blob named after the layer.
        """
        if name in self._layer_names:
            raise LayerError(f"duplicate layer name {name!r}")
        top_list = list(tops) if tops else [name]
        self.layers.append(
            LayerSpec(type_name, name, list(bottoms), top_list, dict(kwargs))
        )
        self._layer_names.add(name)
        return top_list

    # -- sugar used by the model builders ---------------------------------

    def input(self, name: str, shape: Sequence[int]) -> str:
        return self.add("Input", name, shape=tuple(shape))[0]

    def conv(
        self,
        name: str,
        bottom: str,
        num_output: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
    ) -> str:
        return self.add(
            "Convolution", name, [bottom],
            num_output=num_output, kernel=kernel, stride=stride, pad=pad,
            bias=bias,
        )[0]

    def relu(self, name: str, bottom: str) -> str:
        return self.add("ReLU", name, [bottom])[0]

    def conv_relu(
        self,
        name: str,
        bottom: str,
        num_output: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
    ) -> str:
        top = self.conv(name, bottom, num_output, kernel, stride, pad)
        return self.relu(f"{name}_relu", top)

    def conv_bn_relu(
        self,
        name: str,
        bottom: str,
        num_output: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
    ) -> str:
        top = self.conv(
            name, bottom, num_output, kernel, stride, pad, bias=False
        )
        top = self.add("BatchNorm", f"{name}_bn", [top])[0]
        return self.relu(f"{name}_relu", top)

    def pool(
        self,
        name: str,
        bottom: str,
        method: str = "max",
        kernel: int = 2,
        stride: int = 2,
        pad: int = 0,
        global_pool: bool = False,
        ceil: bool = True,
    ) -> str:
        return self.add(
            "Pooling", name, [bottom],
            method=method, kernel=kernel, stride=stride, pad=pad,
            global_pool=global_pool, ceil=ceil,
        )[0]

    def fc(
        self, name: str, bottom: str, num_output: int, bias: bool = True
    ) -> str:
        return self.add("InnerProduct", name, [bottom],
                        num_output=num_output, bias=bias)[0]

    def concat(self, name: str, bottoms: Sequence[str]) -> str:
        return self.add("Concat", name, list(bottoms))[0]

    def softmax_loss(
        self, name: str, logits: str, labels: str, loss_weight: float = 1.0
    ) -> str:
        return self.add(
            "SoftmaxWithLoss", name, [logits, labels],
            loss_weight=loss_weight,
        )[0]

    def accuracy(
        self, name: str, logits: str, labels: str, top_k: int = 1
    ) -> str:
        return self.add("Accuracy", name, [logits, labels], top_k=top_k)[0]


# ---------------------------------------------------------------------------
# Allocation-free inference
# ---------------------------------------------------------------------------

#: type_name -> fn(bottom_shapes, kwargs) -> top_shapes
_SHAPE_FNS: Dict[str, Callable[..., List[Shape]]] = {}
#: type_name -> fn(bottom_shapes, kwargs) -> list of param shapes
_PARAM_FNS: Dict[str, Callable[..., List[Shape]]] = {}


def _shapes(type_name: str):
    def deco(fn):
        _SHAPE_FNS[type_name] = fn
        return fn
    return deco


def _params(type_name: str):
    def deco(fn):
        _PARAM_FNS[type_name] = fn
        return fn
    return deco


@_shapes("Input")
def _input_shape(bottoms, kw):
    return [tuple(kw["shape"])]


@_shapes("Convolution")
def _conv_shape(bottoms, kw):
    n, _, h, w = bottoms[0]
    kh, kw_ = as_pair(kw["kernel"])
    sh, sw = as_pair(kw.get("stride", 1))
    ph, pw = as_pair(kw.get("pad", 0))
    return [(
        n, kw["num_output"],
        conv_output_dim(h, kh, sh, ph), conv_output_dim(w, kw_, sw, pw),
    )]


@_params("Convolution")
def _conv_params(bottoms, kw):
    c = bottoms[0][1]
    kh, kw_ = as_pair(kw["kernel"])
    shapes = [(kw["num_output"], c, kh, kw_)]
    if kw.get("bias", True):
        shapes.append((kw["num_output"],))
    return shapes


@_shapes("InnerProduct")
def _ip_shape(bottoms, kw):
    n = bottoms[0][0]
    return [(n, kw["num_output"])]


@_params("InnerProduct")
def _ip_params(bottoms, kw):
    dim = int(np.prod(bottoms[0][1:]))
    shapes = [(kw["num_output"], dim)]
    if kw.get("bias", True):
        shapes.append((kw["num_output"],))
    return shapes


@_shapes("Pooling")
def _pool_shape(bottoms, kw):
    n, c, h, w = bottoms[0]
    if kw.get("global_pool", False):
        return [(n, c, 1, 1)]
    k = kw.get("kernel", 2)
    s = kw.get("stride", 2)
    p = kw.get("pad", 0)
    ceil = kw.get("ceil", True)
    return [(
        n, c,
        pool_output_dim(h, k, s, p, ceil=ceil),
        pool_output_dim(w, k, s, p, ceil=ceil),
    )]


@_shapes("BatchNorm")
def _bn_shape(bottoms, kw):
    return [bottoms[0]]


@_params("BatchNorm")
def _bn_params(bottoms, kw):
    c = bottoms[0][1]
    stats = [(c,), (c,)]  # running mean/var travel with the model (Caffe)
    if kw.get("affine", True):
        return [(c,), (c,)] + stats
    return stats


@_shapes("Concat")
def _concat_shape(bottoms, kw):
    axis = kw.get("axis", 1)
    for shape in bottoms[1:]:
        for dim, (a, b) in enumerate(zip(shape, bottoms[0])):
            if dim != axis and a != b:
                raise LayerError(
                    f"concat: non-concat dims must match, got {shape} "
                    f"vs {bottoms[0]}"
                )
    out = list(bottoms[0])
    out[axis] = sum(shape[axis] for shape in bottoms)
    return [tuple(out)]


@_shapes("Eltwise")
def _eltwise_shape(bottoms, kw):
    return [bottoms[0]]


@_shapes("Flatten")
def _flatten_shape(bottoms, kw):
    shape = bottoms[0]
    return [(shape[0], int(np.prod(shape[1:])))]


@_shapes("Split")
def _split_shape(bottoms, kw):
    return [bottoms[0]] * int(kw.get("num_tops", 2))


@_shapes("SoftmaxWithLoss")
def _loss_shape(bottoms, kw):
    return [(1,)]


@_shapes("Accuracy")
def _acc_shape(bottoms, kw):
    return [(1,)]


def _identity_shape(bottoms, kw):
    return [bottoms[0]]


for _type in ("ReLU", "Sigmoid", "TanH", "Dropout", "LRN", "Softmax",
              "Power", "Scale"):
    _SHAPE_FNS[_type] = _identity_shape


@_params("Scale")
def _scale_params(bottoms, kw):
    c = bottoms[0][1]
    if kw.get("bias", True):
        return [(c,), (c,)]
    return [(c,)]


@dataclass
class InferenceResult:
    """Outcome of walking a spec without instantiating it."""

    blob_shapes: Dict[str, Shape]
    param_shapes: Dict[str, List[Shape]]  # layer name -> shapes

    @property
    def param_count(self) -> int:
        """Total learnable scalars in the network."""
        return sum(
            int(np.prod(shape))
            for shapes in self.param_shapes.values()
            for shape in shapes
        )

    @property
    def param_nbytes(self) -> int:
        """Model size in bytes at float32 (what SEASGD ships per exchange)."""
        return self.param_count * 4


def infer(spec: NetSpec) -> InferenceResult:
    """Shape-check a spec and count parameters without allocating them.

    Raises:
        LayerError: On unknown layer types, missing bottoms, or any
            geometry error the real layers would also reject.
    """
    blob_shapes: Dict[str, Shape] = {}
    param_shapes: Dict[str, List[Shape]] = {}
    for layer in spec.layers:
        try:
            shape_fn = _SHAPE_FNS[layer.type_name]
        except KeyError:
            raise LayerError(
                f"no shape rule for layer type {layer.type_name!r}"
            ) from None
        try:
            bottoms = [blob_shapes[name] for name in layer.bottoms]
        except KeyError as exc:
            raise LayerError(
                f"layer {layer.name!r} consumes undefined blob {exc}"
            ) from None
        tops = shape_fn(bottoms, layer.kwargs)
        if len(tops) != len(layer.tops):
            raise LayerError(
                f"layer {layer.name!r} declares {len(layer.tops)} tops "
                f"but produces {len(tops)}"
            )
        for name, shape in zip(layer.tops, tops):
            blob_shapes[name] = shape
        param_fn = _PARAM_FNS.get(layer.type_name)
        param_shapes[layer.name] = (
            param_fn(bottoms, layer.kwargs) if param_fn else []
        )
    return InferenceResult(blob_shapes, param_shapes)
