"""The Net: instantiate a spec and run forward/backward over its DAG.

Mirrors Caffe's ``Net<Dtype>``: layers execute in spec order (model builders
emit topologically sorted specs), named blobs carry activations between
layers, and gradients flow back in reverse order with fan-out summing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .blob import Blob, Shape
from .layers.base import LAYER_REGISTRY, Layer, LayerError
from .netspec import NetSpec, infer


class Net:
    """A runnable network instantiated from a :class:`NetSpec`.

    Args:
        spec: Layer graph to instantiate.
        seed: Seed for parameter initialisation and dropout masks; two nets
            built from the same spec and seed are bit-identical, which the
            distributed platforms rely on for replica initialisation.
    """

    def __init__(self, spec: NetSpec, seed: int = 0) -> None:
        self.spec = spec
        self.name = spec.name
        self._rng = np.random.default_rng(seed)
        self.layers: List[Layer] = []
        self.blob_shapes: Dict[str, Shape] = {}
        self.input_names: List[str] = []
        self.loss_names: List[str] = []
        self.metric_names: List[str] = []
        self._build()
        self._activations: Dict[str, np.ndarray] = {}

    def _build(self) -> None:
        # Validate connectivity and shapes once, allocation-free.
        inference = infer(self.spec)
        for layer_spec in self.spec.layers:
            try:
                cls = LAYER_REGISTRY[layer_spec.type_name]
            except KeyError:
                raise LayerError(
                    f"unknown layer type {layer_spec.type_name!r}"
                ) from None
            layer = cls(layer_spec.name, **layer_spec.kwargs)
            bottom_shapes = [
                self.blob_shapes[name] for name in layer_spec.bottoms
            ]
            top_shapes = layer.setup(bottom_shapes, self._rng)
            for name, shape in zip(layer_spec.tops, top_shapes):
                expected = inference.blob_shapes[name]
                if tuple(shape) != tuple(expected):
                    raise LayerError(
                        f"shape drift on blob {name!r}: net computed "
                        f"{shape}, inference says {expected}"
                    )
                self.blob_shapes[name] = tuple(shape)
            self.layers.append(layer)
            if layer_spec.type_name == "Input":
                self.input_names.extend(layer_spec.tops)
            elif layer_spec.type_name == "SoftmaxWithLoss":
                self.loss_names.extend(layer_spec.tops)
            elif layer_spec.type_name == "Accuracy":
                self.metric_names.extend(layer_spec.tops)

    # -- parameters --------------------------------------------------------

    @property
    def params(self) -> List[Blob]:
        """All learnable blobs in layer order."""
        return [p for layer in self.layers for p in layer.params]

    @property
    def param_entries(self) -> List[tuple]:
        """(blob, lr_mult, decay_mult) triples for the solver."""
        entries = []
        for layer in self.layers:
            for blob, lr, decay in zip(
                layer.params, layer.lr_mults, layer.decay_mults
            ):
                entries.append((blob, lr, decay))
        return entries

    def param_count(self) -> int:
        """Total learnable scalars."""
        return sum(p.count for p in self.params)

    def zero_param_diffs(self) -> None:
        """Clear accumulated gradients before a new solver step."""
        for param in self.params:
            param.zero_diff()

    def copy_params_from(self, other: "Net") -> None:
        """Clone another replica's weights (same spec required)."""
        mine, theirs = self.params, other.params
        if len(mine) != len(theirs):
            raise LayerError("cannot copy params between different specs")
        for dst, src in zip(mine, theirs):
            dst.copy_from(src)

    # -- execution ----------------------------------------------------------

    def forward(
        self, inputs: Dict[str, np.ndarray], train: bool = True
    ) -> Dict[str, np.ndarray]:
        """Run the net; returns every named blob (losses, metrics, logits).

        Args:
            inputs: Arrays for each ``Input`` blob, keyed by blob name.
            train: Train-phase behaviour for dropout/batch-norm.
        """
        missing = set(self.input_names) - set(inputs)
        if missing:
            raise LayerError(f"missing input blobs: {sorted(missing)}")
        activations: Dict[str, np.ndarray] = {}
        for name in self.input_names:
            array = np.asarray(inputs[name], dtype=np.float32)
            expected = self.blob_shapes[name]
            # The leading (batch) dimension is free at run time, like a
            # Caffe test net reshaped from the train net.
            if array.shape[1:] != expected[1:] or array.ndim != len(expected):
                raise LayerError(
                    f"input {name!r} has shape {array.shape}, "
                    f"expected (N,) + {expected[1:]}"
                )
            activations[name] = array
        for layer, layer_spec in zip(self.layers, self.spec.layers):
            if layer_spec.type_name == "Input":
                continue
            bottoms = [activations[n] for n in layer_spec.bottoms]
            tops = layer.forward(bottoms, train)
            for name, top in zip(layer_spec.tops, tops):
                activations[name] = top
        self._activations = activations
        return activations

    def backward(self) -> None:
        """Back-propagate from every loss blob; accumulates param diffs."""
        if not self._activations:
            raise LayerError("backward called before forward")
        blob_diffs: Dict[str, np.ndarray] = {}
        for name in self.loss_names:
            blob_diffs[name] = np.ones_like(self._activations[name])

        for layer, layer_spec in zip(
            reversed(self.layers), reversed(self.spec.layers)
        ):
            if layer_spec.type_name == "Input":
                continue
            top_diffs = []
            any_signal = False
            for name in layer_spec.tops:
                diff = blob_diffs.get(name)
                if diff is None:
                    diff = np.zeros_like(self._activations[name])
                else:
                    any_signal = True
                top_diffs.append(diff)
            if not any_signal and layer_spec.type_name != "SoftmaxWithLoss":
                continue  # dead branch (e.g. metrics); skip the work
            bottoms = [self._activations[n] for n in layer_spec.bottoms]
            tops = [self._activations[n] for n in layer_spec.tops]
            bottom_diffs = layer.backward(top_diffs, bottoms, tops)
            for name, diff in zip(layer_spec.bottoms, bottom_diffs):
                if name in blob_diffs:
                    blob_diffs[name] = blob_diffs[name] + diff
                else:
                    blob_diffs[name] = diff

    def total_loss(self, outputs: Optional[Dict[str, np.ndarray]] = None) -> float:
        """Sum of all loss blobs from the latest (or given) forward pass."""
        source = outputs if outputs is not None else self._activations
        return float(sum(source[name].ravel()[0] for name in self.loss_names))

    def blob(self, name: str) -> np.ndarray:
        """Access an activation from the latest forward pass."""
        try:
            return self._activations[name]
        except KeyError:
            raise LayerError(f"no activation named {name!r}") from None
