"""A prototxt-style text format for :class:`NetSpec`.

Caffe models are defined in protobuf text files; this module provides the
equivalent for this substrate so specs can be versioned, diffed and
shipped without Python code.  The dialect is a flat block format:

```
name: "inception_v1_scaled"
layer {
  type: "Convolution"
  name: "conv1"
  bottom: "data"
  top: "conv1"
  param { num_output: 16 kernel: 3 pad: 1 }
}
```

``param`` holds the layer's constructor kwargs.  Values are rendered as
bare ints/floats/bools, quoted strings, or parenthesised tuples
(``kernel: (1, 7)``).  :func:`loads` and :func:`dumps` round-trip every
spec this repository builds (property-tested).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple, Union

from .layers.base import LayerError
from .netspec import LayerSpec, NetSpec

Scalar = Union[int, float, bool, str, tuple]


class PrototxtError(Exception):
    """The text could not be parsed into a spec."""

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def _render_value(value: Scalar) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_render_value(v) for v in value)
        return f"({inner})"
    raise PrototxtError(f"cannot serialise value of type {type(value)!r}")


def dumps(spec: NetSpec) -> str:
    """Serialise a spec to prototxt-style text."""
    lines = [f'name: "{spec.name}"']
    for layer in spec.layers:
        lines.append("layer {")
        lines.append(f'  type: "{layer.type_name}"')
        lines.append(f'  name: "{layer.name}"')
        for bottom in layer.bottoms:
            lines.append(f'  bottom: "{bottom}"')
        for top in layer.tops:
            lines.append(f'  top: "{top}"')
        if layer.kwargs:
            rendered = " ".join(
                f"{key}: {_render_value(value)}"
                for key, value in layer.kwargs.items()
            )
            lines.append(f"  param {{ {rendered} }}")
        lines.append("}")
    return "\n".join(lines) + "\n"


def save(spec: NetSpec, path) -> None:
    """Write :func:`dumps` output to a file."""
    with open(path, "w") as handle:
        handle.write(dumps(spec))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")   # quoted string
  | (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}():,])
  | (?P<space>\s+)
  | (?P<comment>\#[^\n]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[Tuple[str, str, int]]:
    line = 1
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PrototxtError(
                f"unexpected character {text[position]!r}", line
            )
        kind = match.lastgroup
        value = match.group()
        if kind == "space":
            line += value.count("\n")
        elif kind != "comment":
            yield kind, value, line
        position = match.end()


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens: List[Tuple[str, str, int]] = list(_tokenize(text))
        self.index = 0

    def peek(self):
        if self.index >= len(self.tokens):
            return None
        return self.tokens[self.index]

    def next(self, expect_kind=None, expect_value=None):
        token = self.peek()
        if token is None:
            raise PrototxtError("unexpected end of input")
        kind, value, line = token
        if expect_kind and kind != expect_kind:
            raise PrototxtError(
                f"expected {expect_kind}, got {value!r}", line
            )
        if expect_value and value != expect_value:
            raise PrototxtError(
                f"expected {expect_value!r}, got {value!r}", line
            )
        self.index += 1
        return kind, value, line

    def parse_value(self) -> Scalar:
        kind, value, line = self.next()
        if kind == "string":
            return value[1:-1].replace('\\"', '"')
        if kind == "number":
            return float(value) if ("." in value or "e" in value.lower()) \
                else int(value)
        if kind == "word":
            if value == "true":
                return True
            if value == "false":
                return False
            raise PrototxtError(f"unexpected word {value!r}", line)
        if kind == "punct" and value == "(":
            items: List[Scalar] = []
            while True:
                token = self.peek()
                if token and token[1] == ")":
                    self.next()
                    return tuple(items)
                items.append(self.parse_value())
                token = self.peek()
                if token and token[1] == ",":
                    self.next()
        raise PrototxtError(f"cannot parse value {value!r}", line)

    def parse_params(self) -> dict:
        self.next(expect_value="{")
        params: dict = {}
        while True:
            token = self.peek()
            if token is None:
                raise PrototxtError("unterminated param block")
            if token[1] == "}":
                self.next()
                return params
            _, key, line = self.next(expect_kind="word")
            self.next(expect_value=":")
            params[key] = self.parse_value()

    def parse_layer(self) -> LayerSpec:
        self.next(expect_value="{")
        type_name = ""
        name = ""
        bottoms: List[str] = []
        tops: List[str] = []
        kwargs: dict = {}
        while True:
            token = self.peek()
            if token is None:
                raise PrototxtError("unterminated layer block")
            if token[1] == "}":
                self.next()
                break
            _, field, line = self.next(expect_kind="word")
            if field == "param":
                kwargs = self.parse_params()
                continue
            self.next(expect_value=":")
            value = self.parse_value()
            if field == "type":
                type_name = str(value)
            elif field == "name":
                name = str(value)
            elif field == "bottom":
                bottoms.append(str(value))
            elif field == "top":
                tops.append(str(value))
            else:
                raise PrototxtError(
                    f"unknown layer field {field!r}", line
                )
        if not type_name or not name:
            raise PrototxtError("layer needs both type and name")
        if not tops:
            tops = [name]
        return LayerSpec(type_name, name, bottoms, tops, kwargs)

    def parse_spec(self) -> NetSpec:
        spec_name = "net"
        layers: List[LayerSpec] = []
        while self.peek() is not None:
            _, word, line = self.next(expect_kind="word")
            if word == "name":
                self.next(expect_value=":")
                spec_name = str(self.parse_value())
            elif word == "layer":
                layers.append(self.parse_layer())
            else:
                raise PrototxtError(f"unknown top-level {word!r}", line)
        spec = NetSpec(spec_name)
        for layer in layers:
            try:
                spec.add(
                    layer.type_name, layer.name, layer.bottoms,
                    layer.tops, **layer.kwargs,
                )
            except LayerError as exc:
                raise PrototxtError(str(exc)) from exc
        return spec


def loads(text: str) -> NetSpec:
    """Parse prototxt-style text into a :class:`NetSpec`."""
    return _Parser(text).parse_spec()


def load(path) -> NetSpec:
    """Parse a prototxt-style file."""
    with open(path) as handle:
        return loads(handle.read())
