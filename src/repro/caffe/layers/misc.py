"""Additional Caffe layers: Scale, Softmax, Power.

These round out the substrate to Caffe's commonly used layer set:
``Scale`` is the learned-affine half Caffe pairs with its BatchNorm (our
BatchNorm fuses it, but standalone Scale appears in many prototxts),
``Softmax`` is the inference-time probability head, and ``Power``
implements Caffe's ``(shift + scale * x) ^ power`` element-wise map.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..blob import Blob, Shape
from .base import Layer, LayerError, register_layer
from .loss import softmax as _softmax


@register_layer("Scale")
class Scale(Layer):
    """Learned per-channel ``y = gamma * x (+ beta)`` (Caffe Scale layer)."""

    def __init__(self, name: str, bias: bool = True) -> None:
        super().__init__(name)
        self.bias = bias
        self.channels = 0

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        if len(shape) < 2:
            raise LayerError(f"{self.name!r}: Scale needs >= 2 dims")
        self.channels = shape[1]
        gamma = Blob((self.channels,), f"{self.name}.gamma")
        gamma.data.fill(1.0)
        self._register_param(gamma, decay_mult=0.0)
        if self.bias:
            self._register_param(
                Blob((self.channels,), f"{self.name}.beta"), decay_mult=0.0
            )
        return [shape]

    def _expand(self, vector: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1, self.channels] + [1] * (ndim - 2)
        return vector.reshape(shape)

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        out = bottom * self._expand(self.params[0].data, bottom.ndim)
        if self.bias:
            out = out + self._expand(self.params[1].data, bottom.ndim)
        return [out.astype(np.float32)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        axes = tuple(a for a in range(bottom.ndim) if a != 1)
        self.params[0].diff += (top_diff * bottom).sum(axis=axes)
        if self.bias:
            self.params[1].diff += top_diff.sum(axis=axes)
        return [
            top_diff * self._expand(self.params[0].data, bottom.ndim)
        ]


@register_layer("Softmax")
class Softmax(Layer):
    """Probabilities over the last axis (inference head, no loss)."""

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        return [_softmax(bottom)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (top,) = tops
        # dL/dx_i = p_i * (g_i - sum_j g_j p_j)
        dot = (top_diff * top).sum(axis=-1, keepdims=True)
        return [(top * (top_diff - dot)).astype(np.float32)]


@register_layer("Power")
class Power(Layer):
    """Caffe's Power layer: ``y = (shift + scale * x) ^ power``."""

    def __init__(
        self,
        name: str,
        power: float = 1.0,
        scale: float = 1.0,
        shift: float = 0.0,
    ) -> None:
        super().__init__(name)
        self.power = power
        self.scale = scale
        self.shift = shift
        self._base: Optional[np.ndarray] = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        base = self.shift + self.scale * bottom
        self._base = base
        if self.power == 1.0:
            return [base.astype(np.float32)]
        return [np.power(base, self.power).astype(np.float32)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        if self._base is None:
            raise LayerError("backward before forward in Power")
        base = self._base
        self._base = None
        if self.power == 1.0:
            grad = np.full_like(base, self.scale)
        else:
            grad = (
                self.power * self.scale
                * np.power(base, self.power - 1.0)
            )
        return [(top_diff * grad).astype(np.float32)]
