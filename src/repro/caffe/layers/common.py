"""Structural layers: input, dropout, concat, eltwise, flatten, split."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..blob import Shape
from .base import Layer, LayerError, register_layer


@register_layer("Input")
class Input(Layer):
    """Declares an externally fed blob (images or labels)."""

    def __init__(self, name: str, shape: Sequence[int]) -> None:
        super().__init__(name)
        self.declared_shape: Shape = tuple(int(d) for d in shape)

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        if bottom_shapes:
            raise LayerError(f"{self.name!r}: Input takes no bottoms")
        return [self.declared_shape]

    def forward(self, bottoms, train) -> List[np.ndarray]:
        raise LayerError(
            f"{self.name!r}: Input blobs are fed by the net, not computed"
        )

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        return []


@register_layer("Dropout")
class Dropout(Layer):
    """Inverted dropout (scales at train time, identity at test time)."""

    def __init__(self, name: str, ratio: float = 0.5) -> None:
        super().__init__(name)
        if not 0.0 <= ratio < 1.0:
            raise LayerError(f"dropout ratio must be in [0,1), got {ratio}")
        self.ratio = ratio
        self._mask: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        self._rng = rng
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        if not train or self.ratio == 0.0:
            self._mask = None
            return [bottom.copy()]
        keep = 1.0 - self.ratio
        self._mask = (
            self._rng.random(bottom.shape) < keep
        ).astype(np.float32) / keep
        return [bottom * self._mask]

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        if self._mask is None:
            return [top_diff.copy()]
        mask = self._mask
        self._mask = None
        return [top_diff * mask]


@register_layer("Concat")
class Concat(Layer):
    """Concatenate bottoms along the channel axis (Inception modules)."""

    def __init__(self, name: str, axis: int = 1) -> None:
        super().__init__(name)
        self.axis = axis
        self._splits: List[int] = []

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        if not bottom_shapes:
            raise LayerError(f"{self.name!r}: Concat needs bottoms")
        reference = list(bottom_shapes[0])
        total = 0
        self._splits = []
        for shape in bottom_shapes:
            if len(shape) != len(reference):
                raise LayerError(f"{self.name!r}: rank mismatch in Concat")
            for axis, (a, b) in enumerate(zip(shape, reference)):
                if axis != self.axis and a != b:
                    raise LayerError(
                        f"{self.name!r}: non-concat dims must match, "
                        f"got {shape} vs {tuple(reference)}"
                    )
            total += shape[self.axis]
            self._splits.append(shape[self.axis])
        reference[self.axis] = total
        return [tuple(reference)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        return [np.concatenate(bottoms, axis=self.axis)]

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        offsets = np.cumsum([0] + self._splits)
        slicer: List[slice] = [slice(None)] * top_diff.ndim
        outputs = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer[self.axis] = slice(start, stop)
            outputs.append(top_diff[tuple(slicer)].copy())
        return outputs


@register_layer("Eltwise")
class Eltwise(Layer):
    """Elementwise sum/prod/max of same-shaped bottoms (residual adds).

    ``coeffs`` scales each bottom in a sum, matching Caffe's
    ``eltwise_param.coeff`` — Inception-ResNet blocks use it for residual
    scaling (e.g. ``coeffs=(0.17, 1.0)``).
    """

    def __init__(
        self,
        name: str,
        operation: str = "sum",
        coeffs: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name)
        if operation not in ("sum", "prod", "max"):
            raise LayerError(f"unknown eltwise op {operation!r}")
        if coeffs is not None and operation != "sum":
            raise LayerError("coeffs only apply to the sum operation")
        self.operation = operation
        self.coeffs = tuple(coeffs) if coeffs is not None else None
        self._argmax: Optional[np.ndarray] = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        if len(bottom_shapes) < 2:
            raise LayerError(f"{self.name!r}: Eltwise needs >=2 bottoms")
        first = bottom_shapes[0]
        if any(shape != first for shape in bottom_shapes[1:]):
            raise LayerError(
                f"{self.name!r}: Eltwise shapes differ: {bottom_shapes}"
            )
        if self.coeffs is not None and len(self.coeffs) != len(bottom_shapes):
            raise LayerError(
                f"{self.name!r}: {len(self.coeffs)} coeffs for "
                f"{len(bottom_shapes)} bottoms"
            )
        return [first]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        if self.operation == "sum":
            if self.coeffs is not None:
                out = self.coeffs[0] * bottoms[0]
                for coeff, other in zip(self.coeffs[1:], bottoms[1:]):
                    out += coeff * other
                return [out.astype(np.float32)]
            out = bottoms[0].copy()
            for other in bottoms[1:]:
                out += other
            return [out]
        if self.operation == "prod":
            out = bottoms[0].copy()
            for other in bottoms[1:]:
                out *= other
            return [out]
        stacked = np.stack(bottoms)
        self._argmax = stacked.argmax(axis=0)
        return [stacked.max(axis=0)]

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        if self.operation == "sum":
            if self.coeffs is not None:
                return [
                    (coeff * top_diff).astype(np.float32)
                    for coeff in self.coeffs
                ]
            return [top_diff.copy() for _ in bottoms]
        if self.operation == "prod":
            (top,) = tops
            return [
                top_diff * top / np.where(b == 0, 1.0, b) for b in bottoms
            ]
        grads = []
        for index in range(len(bottoms)):
            grads.append(top_diff * (self._argmax == index))
        self._argmax = None
        return grads


@register_layer("Flatten")
class Flatten(Layer):
    """Flatten all trailing dims into one (before a classifier)."""

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [(shape[0], int(np.prod(shape[1:])))]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        return [bottom.reshape(bottom.shape[0], -1)]

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        return [top_diff.reshape(bottom.shape)]


@register_layer("Split")
class Split(Layer):
    """Fan one blob out to N consumers; gradients sum on the way back."""

    def __init__(self, name: str, num_tops: int = 2) -> None:
        super().__init__(name)
        if num_tops < 1:
            raise LayerError(f"num_tops must be >=1, got {num_tops}")
        self.num_tops = num_tops

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape] * self.num_tops

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        return [bottom.copy() for _ in range(self.num_tops)]

    def backward(self, top_diffs, bottoms, tops) -> List[np.ndarray]:
        total = top_diffs[0].copy()
        for diff in top_diffs[1:]:
            total += diff
        return [total]
