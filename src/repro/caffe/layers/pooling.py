"""Max and average pooling layers (Caffe ceil-mode geometry)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..blob import Shape
from .base import Layer, LayerError, pool_output_dim, register_layer


@register_layer("Pooling")
class Pooling(Layer):
    """Spatial pooling over square windows.

    Args:
        name: Layer name.
        method: ``"max"`` or ``"ave"``.
        kernel: Window side; ignored when ``global_pool`` is set.
        stride: Window stride.
        pad: Zero padding (average pooling counts padding into the mean,
            matching Caffe).
        global_pool: Pool the whole spatial extent to 1x1.
        ceil: Caffe's ceil-mode output size (default); ``False`` uses
            floor ("valid") semantics as TensorFlow-style Inception stems
            expect, so stride-2 pools align with stride-2 valid convs.
    """

    def __init__(
        self,
        name: str,
        method: str = "max",
        kernel: int = 2,
        stride: int = 2,
        pad: int = 0,
        global_pool: bool = False,
        ceil: bool = True,
    ) -> None:
        super().__init__(name)
        if method not in ("max", "ave"):
            raise LayerError(f"unknown pooling method {method!r}")
        self.method = method
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.global_pool = global_pool
        self.ceil = ceil
        self._argmax: Optional[np.ndarray] = None

    def _geometry(self, shape: Shape) -> tuple:
        _, _, h, w = shape
        if self.global_pool:
            return h, w, 1, 1, h, 1, 0  # kernel covers everything
        out_h = pool_output_dim(h, self.kernel, self.stride, self.pad,
                                ceil=self.ceil)
        out_w = pool_output_dim(w, self.kernel, self.stride, self.pad,
                                ceil=self.ceil)
        return h, w, out_h, out_w, self.kernel, self.stride, self.pad

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        n, c = shape[0], shape[1]
        _, _, out_h, out_w, _, _, _ = self._geometry(shape)
        return [(n, c, out_h, out_w)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        n, c, h, w = bottom.shape
        _, _, out_h, out_w, kernel, stride, pad = self._geometry(bottom.shape)

        if self.method == "max":
            fill = -np.inf
        else:
            fill = 0.0
        if pad > 0:
            padded = np.full(
                (n, c, h + 2 * pad, w + 2 * pad), fill, dtype=bottom.dtype
            )
            padded[:, :, pad:pad + h, pad:pad + w] = bottom
        else:
            padded = bottom

        top = np.empty((n, c, out_h, out_w), dtype=bottom.dtype)
        if self.method == "max":
            self._argmax = np.empty((n, c, out_h, out_w), dtype=np.int64)
        ph, pw = padded.shape[2], padded.shape[3]
        for oy in range(out_h):
            y0 = oy * stride
            y1 = min(y0 + kernel, ph)
            for ox in range(out_w):
                x0 = ox * stride
                x1 = min(x0 + kernel, pw)
                window = padded[:, :, y0:y1, x0:x1]
                flat = window.reshape(n, c, -1)
                if self.method == "max":
                    idx = flat.argmax(axis=2)
                    top[:, :, oy, ox] = np.take_along_axis(
                        flat, idx[:, :, None], axis=2
                    )[:, :, 0]
                    # Store position in padded coordinates for backward.
                    win_w = x1 - x0
                    local_y, local_x = idx // win_w, idx % win_w
                    self._argmax[:, :, oy, ox] = (
                        (y0 + local_y) * pw + (x0 + local_x)
                    )
                else:
                    top[:, :, oy, ox] = flat.mean(axis=2)
        return [top]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        n, c, h, w = bottom.shape
        _, _, out_h, out_w, kernel, stride, pad = self._geometry(bottom.shape)
        ph, pw = h + 2 * pad, w + 2 * pad
        padded_diff = np.zeros((n, c, ph * pw), dtype=np.float32)

        if self.method == "max":
            if self._argmax is None:
                raise LayerError("backward before forward in max pooling")
            # Overlapping windows (stride < kernel) can route two output
            # cells to the same input position; np.add.at accumulates
            # duplicates correctly where put_along_axis would overwrite.
            flat_idx = self._argmax.reshape(n * c, -1)
            flat_top = top_diff.reshape(n * c, -1)
            flat_diff = padded_diff.reshape(n * c, ph * pw)
            rows = np.repeat(
                np.arange(n * c)[:, None], flat_idx.shape[1], axis=1
            )
            np.add.at(flat_diff, (rows, flat_idx), flat_top)
            padded_diff_2d = padded_diff.reshape(n, c, ph, pw)
        else:
            padded_diff_2d = padded_diff.reshape(n, c, ph, pw)
            for oy in range(out_h):
                y0 = oy * stride
                y1 = min(y0 + kernel, ph)
                for ox in range(out_w):
                    x0 = ox * stride
                    x1 = min(x0 + kernel, pw)
                    area = (y1 - y0) * (x1 - x0)
                    padded_diff_2d[:, :, y0:y1, x0:x1] += (
                        top_diff[:, :, oy:oy + 1, ox:ox + 1] / area
                    )
        self._argmax = None
        if pad > 0:
            return [padded_diff_2d[:, :, pad:pad + h, pad:pad + w].copy()]
        return [padded_diff_2d]
