"""Elementwise activation layers."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..blob import Shape
from .base import Layer, register_layer


@register_layer("ReLU")
class ReLU(Layer):
    """Rectified linear unit, optionally leaky (Caffe ``negative_slope``)."""

    def __init__(self, name: str, negative_slope: float = 0.0) -> None:
        super().__init__(name)
        self.negative_slope = negative_slope

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        if self.negative_slope == 0.0:
            return [np.maximum(bottom, 0.0)]
        return [np.where(bottom > 0, bottom, self.negative_slope * bottom)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        grad = np.where(bottom > 0, 1.0, self.negative_slope).astype(
            np.float32
        )
        return [top_diff * grad]


@register_layer("Sigmoid")
class Sigmoid(Layer):
    """Logistic sigmoid."""

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        # Numerically stable split by sign.
        out = np.empty_like(bottom)
        positive = bottom >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-bottom[positive]))
        exp_x = np.exp(bottom[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return [out]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (top,) = tops
        return [top_diff * top * (1.0 - top)]


@register_layer("TanH")
class TanH(Layer):
    """Hyperbolic tangent."""

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        return [shape]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        return [np.tanh(bottom)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (top,) = tops
        return [top_diff * (1.0 - top * top)]
