"""im2col / col2im: the lowering Caffe uses to turn convolution into GEMM.

Kernels, strides and paddings are ``(height, width)`` pairs so asymmetric
factorised convolutions (1x7, 7x1 in Inception-ResNet-v2) are supported.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

IntPair = Tuple[int, int]


def as_pair(value: Union[int, IntPair]) -> IntPair:
    """Normalise an int-or-pair geometry argument to ``(h, w)``."""
    if isinstance(value, int):
        return value, value
    h, w = value
    return int(h), int(w)


def im2col(
    images: np.ndarray,
    kernel: Union[int, IntPair],
    stride: Union[int, IntPair],
    pad: Union[int, IntPair],
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` images into GEMM columns.

    Returns an array of shape ``(N, C * kh * kw, out_h * out_w)`` where each
    column holds one receptive field.
    """
    kh, kw = as_pair(kernel)
    sh, sw = as_pair(stride)
    ph, pw = as_pair(pad)
    n, c, h, w = images.shape
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    if ph > 0 or pw > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (ph, ph), (pw, pw)),
            mode="constant",
        )

    # Strided view: (N, C, kh, kw, out_h, out_w) without copying.
    stn, stc, sth, stw = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(stn, stc, sth, stw, sth * sh, stw * sw),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(
        n, c * kh * kw, out_h * out_w
    )


def col2im(
    columns: np.ndarray,
    image_shape: tuple,
    kernel: Union[int, IntPair],
    stride: Union[int, IntPair],
    pad: Union[int, IntPair],
) -> np.ndarray:
    """Fold GEMM columns back into images, summing overlaps.

    The adjoint of :func:`im2col`; used by convolution backward to produce
    bottom gradients.
    """
    kh, kw = as_pair(kernel)
    sh, sw = as_pair(stride)
    ph, pw = as_pair(pad)
    n, c, h, w = image_shape
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=columns.dtype)
    cols = columns.reshape(n, c, kh, kw, out_h, out_w)
    for ky in range(kh):
        y_end = ky + sh * out_h
        for kx in range(kw):
            x_end = kx + sw * out_w
            padded[:, :, ky:y_end:sh, kx:x_end:sw] += cols[:, :, ky, kx, :, :]
    if ph > 0 or pw > 0:
        return padded[:, :, ph:ph + h, pw:pw + w]
    return padded
