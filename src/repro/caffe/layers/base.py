"""Layer interface for the NumPy Caffe substrate.

Layers follow Caffe's contract: ``setup`` infers top shapes and allocates
parameter blobs, ``forward`` maps bottom arrays to top arrays, ``backward``
maps top gradients to bottom gradients and *accumulates* parameter
gradients into each parameter blob's ``diff``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..blob import Blob, Shape


class LayerError(Exception):
    """A layer was configured or invoked inconsistently."""


class Layer:
    """Base class for all layers.

    Subclasses set :attr:`params` during :meth:`setup` if they learn
    anything.  ``phase`` is ``"train"`` or ``"test"``; layers that behave
    differently (dropout, batch-norm) consult it each forward call via the
    ``train`` argument.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: List[Blob] = []
        #: Per-parameter learning-rate multipliers (Caffe's ``lr_mult``).
        self.lr_mults: List[float] = []
        #: Per-parameter weight-decay multipliers (Caffe's ``decay_mult``).
        self.decay_mults: List[float] = []

    def setup(
        self, bottom_shapes: Sequence[Shape], rng: np.random.Generator
    ) -> List[Shape]:
        """Validate bottoms, allocate params, and return top shapes."""
        raise NotImplementedError

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        """Compute top arrays from bottom arrays."""
        raise NotImplementedError

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Return bottom gradients; accumulate parameter gradients."""
        raise NotImplementedError

    def param_count(self) -> int:
        """Learnable scalar count (used for model-size accounting)."""
        return sum(p.count for p in self.params)

    def _register_param(
        self,
        blob: Blob,
        lr_mult: float = 1.0,
        decay_mult: float = 1.0,
    ) -> Blob:
        self.params.append(blob)
        self.lr_mults.append(lr_mult)
        self.decay_mults.append(decay_mult)
        return blob

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: Registry mapping layer type names (as used in net specs) to classes.
LAYER_REGISTRY: Dict[str, type] = {}


def register_layer(type_name: str):
    """Class decorator registering a layer under a spec type name."""

    def decorator(cls: type) -> type:
        if type_name in LAYER_REGISTRY:
            raise LayerError(f"duplicate layer type {type_name!r}")
        LAYER_REGISTRY[type_name] = cls
        cls.type_name = type_name
        return cls

    return decorator


def conv_output_dim(input_dim: int, kernel: int, stride: int, pad: int) -> int:
    """Caffe's convolution output-size formula."""
    out = (input_dim + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise LayerError(
            f"non-positive conv output: in={input_dim} k={kernel} "
            f"s={stride} p={pad}"
        )
    return out


def pool_output_dim(
    input_dim: int, kernel: int, stride: int, pad: int, ceil: bool = True
) -> int:
    """Caffe's pooling output-size formula (ceil mode by default)."""
    if ceil:
        out = int(np.ceil((input_dim + 2 * pad - kernel) / stride)) + 1
    else:
        out = (input_dim + 2 * pad - kernel) // stride + 1
    if pad > 0 and (out - 1) * stride >= input_dim + pad:
        out -= 1
    if out <= 0:
        raise LayerError(
            f"non-positive pool output: in={input_dim} k={kernel} "
            f"s={stride} p={pad}"
        )
    return out
