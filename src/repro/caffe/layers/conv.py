"""Convolution and inner-product (fully connected) layers."""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..blob import Blob, Shape, xavier_fill
from .base import Layer, LayerError, conv_output_dim, register_layer
from .im2col import as_pair, col2im, im2col

IntPair = Tuple[int, int]


@register_layer("Convolution")
class Convolution(Layer):
    """2-D convolution lowered to GEMM via im2col, as BVLC Caffe does.

    Args:
        name: Layer name.
        num_output: Output channels.
        kernel: Kernel side, or an ``(kh, kw)`` pair for asymmetric kernels
            (Inception-ResNet-v2's factorised 1x7 / 7x1 convolutions).
        stride: Stride, int or pair.
        pad: Zero padding, int or pair.
        bias: Learn an additive per-channel bias.
    """

    def __init__(
        self,
        name: str,
        num_output: int,
        kernel: Union[int, IntPair],
        stride: Union[int, IntPair] = 1,
        pad: Union[int, IntPair] = 0,
        bias: bool = True,
    ) -> None:
        super().__init__(name)
        self.kernel = as_pair(kernel)
        self.stride = as_pair(stride)
        self.pad = as_pair(pad)
        if (
            num_output <= 0
            or min(self.kernel) <= 0
            or min(self.stride) <= 0
            or min(self.pad) < 0
        ):
            raise LayerError(f"bad conv geometry in {name!r}")
        self.num_output = num_output
        self.bias = bias
        self._columns: np.ndarray | None = None

    def _out_hw(self, h: int, w: int) -> IntPair:
        return (
            conv_output_dim(h, self.kernel[0], self.stride[0], self.pad[0]),
            conv_output_dim(w, self.kernel[1], self.stride[1], self.pad[1]),
        )

    def setup(
        self, bottom_shapes: Sequence[Shape], rng: np.random.Generator
    ) -> List[Shape]:
        (shape,) = bottom_shapes
        n, c, h, w = shape
        out_h, out_w = self._out_hw(h, w)
        weight_shape = (self.num_output, c, self.kernel[0], self.kernel[1])
        self._register_param(
            Blob(weight_shape, f"{self.name}.weight",
                 data=xavier_fill(weight_shape, rng))
        )
        if self.bias:
            self._register_param(
                Blob((self.num_output,), f"{self.name}.bias"),
                lr_mult=2.0,
                decay_mult=0.0,
            )
        return [(n, self.num_output, out_h, out_w)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        n = bottom.shape[0]
        self._columns = im2col(bottom, self.kernel, self.stride, self.pad)
        weight = self.params[0].data.reshape(self.num_output, -1)
        # (O, C*kh*kw) @ (N, C*kh*kw, HW) -> (N, O, HW)
        top = np.matmul(weight, self._columns)
        if self.bias:
            top += self.params[1].data[None, :, None]
        out_h, out_w = self._out_hw(bottom.shape[2], bottom.shape[3])
        return [top.reshape(n, self.num_output, out_h, out_w)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        n = top_diff.shape[0]
        flat_diff = top_diff.reshape(n, self.num_output, -1)

        if self._columns is None:
            self._columns = im2col(bottom, self.kernel, self.stride, self.pad)
        # dW = sum_n top_diff @ columns^T
        grad_w = np.einsum("nop,ncp->oc", flat_diff, self._columns)
        self.params[0].diff += grad_w.reshape(self.params[0].shape)
        if self.bias:
            self.params[1].diff += flat_diff.sum(axis=(0, 2))

        weight = self.params[0].data.reshape(self.num_output, -1)
        col_diff = np.matmul(weight.T, flat_diff)
        bottom_diff = col2im(
            col_diff, bottom.shape, self.kernel, self.stride, self.pad
        )
        self._columns = None
        return [bottom_diff]


@register_layer("InnerProduct")
class InnerProduct(Layer):
    """Fully connected layer: flattens the bottom and applies ``xW^T + b``."""

    def __init__(self, name: str, num_output: int, bias: bool = True) -> None:
        super().__init__(name)
        if num_output <= 0:
            raise LayerError(f"bad num_output in {name!r}")
        self.num_output = num_output
        self.bias = bias

    def setup(
        self, bottom_shapes: Sequence[Shape], rng: np.random.Generator
    ) -> List[Shape]:
        (shape,) = bottom_shapes
        n = shape[0]
        dim = int(np.prod(shape[1:]))
        weight_shape = (self.num_output, dim)
        self._register_param(
            Blob(weight_shape, f"{self.name}.weight",
                 data=xavier_fill(weight_shape, rng))
        )
        if self.bias:
            self._register_param(
                Blob((self.num_output,), f"{self.name}.bias"),
                lr_mult=2.0,
                decay_mult=0.0,
            )
        return [(n, self.num_output)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        flat = bottom.reshape(bottom.shape[0], -1)
        top = flat @ self.params[0].data.T
        if self.bias:
            top += self.params[1].data
        return [top]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        flat = bottom.reshape(bottom.shape[0], -1)
        self.params[0].diff += top_diff.T @ flat
        if self.bias:
            self.params[1].diff += top_diff.sum(axis=0)
        bottom_diff = top_diff @ self.params[0].data
        return [bottom_diff.reshape(bottom.shape)]
