"""Normalisation layers: BatchNorm (+Scale) and LRN."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..blob import Blob, Shape
from .base import Layer, LayerError, register_layer


@register_layer("BatchNorm")
class BatchNorm(Layer):
    """Batch normalisation over channels of an ``(N, C, H, W)`` blob.

    Caffe splits normalisation (``BatchNorm``) from the learned affine part
    (``Scale``); this layer fuses both (``affine=True`` by default) since
    every modern net pairs them.  Running statistics follow Caffe's
    moving-average-fraction update and are used at test time.
    """

    def __init__(
        self,
        name: str,
        affine: bool = True,
        momentum: float = 0.9,
        eps: float = 1e-5,
    ) -> None:
        super().__init__(name)
        if not 0.0 < momentum < 1.0:
            raise LayerError(f"momentum must be in (0,1), got {momentum}")
        self.affine = affine
        self.momentum = momentum
        self.eps = eps
        self.channels = 0
        self._cache: Optional[tuple] = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        if len(shape) not in (2, 4):
            raise LayerError(
                f"{self.name!r}: BatchNorm needs (N,C) or (N,C,H,W), "
                f"got {shape}"
            )
        self.channels = shape[1]
        if self.affine:
            gamma = Blob((self.channels,), f"{self.name}.gamma")
            gamma.data.fill(1.0)
            self._register_param(gamma, decay_mult=0.0)
            self._register_param(
                Blob((self.channels,), f"{self.name}.beta"), decay_mult=0.0
            )
        # Running statistics are parameter blobs with lr_mult=0, exactly as
        # in Caffe: the solver never touches them, but parameter-sharing
        # code (FlatParams / SEASGD / allreduce broadcasts) carries them
        # between replicas so a model restored from shared weights
        # evaluates correctly.
        mean_blob = self._register_param(
            Blob((self.channels,), f"{self.name}.running_mean"),
            lr_mult=0.0,
            decay_mult=0.0,
        )
        var_blob = self._register_param(
            Blob((self.channels,), f"{self.name}.running_var"),
            lr_mult=0.0,
            decay_mult=0.0,
        )
        var_blob.data.fill(1.0)
        self._mean_blob = mean_blob
        self._var_blob = var_blob
        return [shape]

    @property
    def running_mean(self) -> np.ndarray:
        """Moving average of batch means (shared as an lr_mult=0 param)."""
        return self._mean_blob.data

    @property
    def running_var(self) -> np.ndarray:
        """Moving average of batch variances (lr_mult=0 param)."""
        return self._var_blob.data

    def _axes(self, ndim: int) -> tuple:
        return (0,) if ndim == 2 else (0, 2, 3)

    def _expand(self, vector: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return vector[None, :]
        return vector[None, :, None, None]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        axes = self._axes(bottom.ndim)
        if train:
            mean = bottom.mean(axis=axes)
            var = bottom.var(axis=axes)
            self._mean_blob.data[...] = (
                self.momentum * self._mean_blob.data
                + (1 - self.momentum) * mean
            )
            self._var_blob.data[...] = (
                self.momentum * self._var_blob.data
                + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        normalised = (bottom - self._expand(mean, bottom.ndim)) / self._expand(
            std, bottom.ndim
        )
        self._cache = (normalised, std) if train else None
        if self.affine:
            gamma, beta = self.params[0].data, self.params[1].data
            return [
                normalised * self._expand(gamma, bottom.ndim)
                + self._expand(beta, bottom.ndim)
            ]
        return [normalised.astype(np.float32)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        if self._cache is None:
            raise LayerError("backward before train-mode forward in BatchNorm")
        normalised, std = self._cache
        self._cache = None
        axes = self._axes(top_diff.ndim)
        m = float(np.prod([top_diff.shape[a] for a in axes]))

        if self.affine:
            gamma = self.params[0].data
            self.params[0].diff += (top_diff * normalised).sum(axis=axes)
            self.params[1].diff += top_diff.sum(axis=axes)
            d_norm = top_diff * self._expand(gamma, top_diff.ndim)
        else:
            d_norm = top_diff

        # Standard batch-norm backward through the batch statistics.
        sum_d = d_norm.sum(axis=axes)
        sum_dx = (d_norm * normalised).sum(axis=axes)
        bottom_diff = (
            d_norm
            - self._expand(sum_d / m, top_diff.ndim)
            - normalised * self._expand(sum_dx / m, top_diff.ndim)
        ) / self._expand(std, top_diff.ndim)
        return [bottom_diff.astype(np.float32)]


@register_layer("LRN")
class LRN(Layer):
    """Local response normalisation across channels (AlexNet/GoogLeNet era).

    ``b_c = a_c / (k + alpha/n * sum_{c'} a_{c'}^2)^beta`` over a window of
    ``local_size`` channels centred on ``c``.
    """

    def __init__(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ) -> None:
        super().__init__(name)
        if local_size % 2 == 0:
            raise LayerError(f"local_size must be odd, got {local_size}")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._scale: Optional[np.ndarray] = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        (shape,) = bottom_shapes
        if len(shape) != 4:
            raise LayerError(f"{self.name!r}: LRN needs (N,C,H,W), got {shape}")
        return [shape]

    def _window_sum(self, squares: np.ndarray) -> np.ndarray:
        c = squares.shape[1]
        half = self.local_size // 2
        padded = np.zeros(
            (squares.shape[0], c + 2 * half) + squares.shape[2:],
            dtype=squares.dtype,
        )
        padded[:, half:half + c] = squares
        cumulative = np.cumsum(padded, axis=1)
        window = np.empty_like(squares)
        # sum over [c-half, c+half] via cumulative differences
        upper = cumulative[:, self.local_size - 1:]
        lower = np.concatenate(
            [np.zeros_like(cumulative[:, :1]), cumulative[:, :-self.local_size]],
            axis=1,
        )
        window[:] = (upper - lower)[:, :c]
        return window

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        (bottom,) = bottoms
        window = self._window_sum(bottom * bottom)
        scale = self.k + (self.alpha / self.local_size) * window
        self._scale = scale
        return [bottom * np.power(scale, -self.beta)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        (top_diff,) = top_diffs
        (bottom,) = bottoms
        (top,) = tops
        if self._scale is None:
            raise LayerError("backward before forward in LRN")
        scale = self._scale
        self._scale = None
        # d a_c: direct term plus cross-channel term through the window sum.
        direct = top_diff * np.power(scale, -self.beta)
        ratio = top_diff * top / scale
        cross = self._window_sum(ratio)
        coef = 2.0 * self.alpha * self.beta / self.local_size
        return [direct - coef * bottom * cross]
