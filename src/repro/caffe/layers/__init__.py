"""Layer zoo for the NumPy Caffe substrate.

Importing this package populates :data:`LAYER_REGISTRY`, which
:mod:`repro.caffe.netspec` uses to instantiate layers from specs.
"""

from .activation import ReLU, Sigmoid, TanH
from .base import (
    LAYER_REGISTRY,
    Layer,
    LayerError,
    conv_output_dim,
    pool_output_dim,
    register_layer,
)
from .common import Concat, Dropout, Eltwise, Flatten, Input, Split
from .conv import Convolution, InnerProduct
from .im2col import col2im, im2col
from .loss import Accuracy, SoftmaxWithLoss, softmax
from .misc import Power, Scale, Softmax
from .normalization import LRN, BatchNorm
from .pooling import Pooling

__all__ = [
    "Accuracy",
    "BatchNorm",
    "Concat",
    "Convolution",
    "Dropout",
    "Eltwise",
    "Flatten",
    "InnerProduct",
    "Input",
    "LAYER_REGISTRY",
    "Layer",
    "LayerError",
    "LRN",
    "Pooling",
    "Power",
    "ReLU",
    "Scale",
    "Softmax",
    "Sigmoid",
    "SoftmaxWithLoss",
    "Split",
    "TanH",
    "col2im",
    "conv_output_dim",
    "im2col",
    "pool_output_dim",
    "register_layer",
    "softmax",
]
