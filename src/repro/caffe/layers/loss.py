"""Loss and metric layers.

``SoftmaxWithLoss`` fuses softmax and cross-entropy like Caffe does, both
for numerical stability and so the backward pass is the simple
``prob - onehot`` form.  ``Accuracy`` computes top-k accuracy and produces
no gradient (it is a metric, not a loss).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..blob import Shape
from .base import Layer, LayerError, register_layer


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@register_layer("SoftmaxWithLoss")
class SoftmaxWithLoss(Layer):
    """Mean cross-entropy over a minibatch.

    Bottoms: ``(logits, labels)`` where logits are ``(N, K)`` and labels are
    integer class ids of shape ``(N,)``.  Top: scalar loss (shape ``(1,)``).

    Args:
        name: Layer name.
        loss_weight: Scale on the produced gradient (Caffe's ``loss_weight``;
            auxiliary Inception heads use 0.3).
    """

    def __init__(self, name: str, loss_weight: float = 1.0) -> None:
        super().__init__(name)
        self.loss_weight = loss_weight
        self._prob: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        logits_shape, labels_shape = bottom_shapes
        if len(logits_shape) != 2:
            raise LayerError(
                f"{self.name!r}: logits must be (N, K), got {logits_shape}"
            )
        if labels_shape[0] != logits_shape[0]:
            raise LayerError(
                f"{self.name!r}: batch mismatch {logits_shape} vs {labels_shape}"
            )
        return [(1,)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        logits, labels = bottoms
        labels = labels.astype(np.int64).ravel()
        prob = softmax(logits)
        self._prob = prob
        self._labels = labels
        picked = prob[np.arange(len(labels)), labels]
        loss = -np.log(np.clip(picked, 1e-12, None)).mean()
        return [np.asarray([loss * self.loss_weight], dtype=np.float32)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        if self._prob is None or self._labels is None:
            raise LayerError("backward before forward in SoftmaxWithLoss")
        scale = float(top_diffs[0].ravel()[0]) if len(top_diffs) else 1.0
        grad = self._prob.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        grad *= self.loss_weight * scale / len(self._labels)
        self._prob = None
        labels_diff = np.zeros_like(bottoms[1], dtype=np.float32)
        self._labels = None
        return [grad, labels_diff]


@register_layer("Accuracy")
class Accuracy(Layer):
    """Top-k classification accuracy (metric only; no gradient).

    The paper reports top-5 accuracy for Inception-v1 on ImageNet; scaled
    experiments report top-1 unless configured otherwise.
    """

    def __init__(self, name: str, top_k: int = 1) -> None:
        super().__init__(name)
        if top_k <= 0:
            raise LayerError(f"top_k must be positive, got {top_k}")
        self.top_k = top_k

    def setup(self, bottom_shapes, rng) -> List[Shape]:
        logits_shape, labels_shape = bottom_shapes
        if labels_shape[0] != logits_shape[0]:
            raise LayerError(
                f"{self.name!r}: batch mismatch {logits_shape} vs {labels_shape}"
            )
        if self.top_k > logits_shape[1]:
            raise LayerError(
                f"{self.name!r}: top_k={self.top_k} > classes={logits_shape[1]}"
            )
        return [(1,)]

    def forward(
        self, bottoms: Sequence[np.ndarray], train: bool
    ) -> List[np.ndarray]:
        logits, labels = bottoms
        labels = labels.astype(np.int64).ravel()
        if self.top_k == 1:
            hits = logits.argmax(axis=1) == labels
        else:
            top = np.argpartition(-logits, self.top_k - 1, axis=1)[
                :, : self.top_k
            ]
            hits = (top == labels[:, None]).any(axis=1)
        return [np.asarray([hits.mean()], dtype=np.float32)]

    def backward(
        self,
        top_diffs: Sequence[np.ndarray],
        bottoms: Sequence[np.ndarray],
        tops: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        return [np.zeros_like(bottoms[0]), np.zeros_like(bottoms[1])]
