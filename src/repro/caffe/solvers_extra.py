"""The rest of Caffe 1.0's solver family: Nesterov, AdaGrad, Adam.

The paper trains exclusively with Caffe's momentum SGD (which SEASGD
wraps), but BVLC Caffe ships these too and the substrate should let a
downstream user swap them in.  Update rules follow Caffe's
``solvers/*.cpp`` exactly:

* Nesterov: ``V' = mu V + lr g``; ``W -= (1 + mu) V' - mu V``
* AdaGrad:  ``H += g^2``; ``W -= lr g / (sqrt(H) + eps)``
* Adam:     bias-corrected first/second moments, as in the paper/Caffe.

All respect per-parameter ``lr_mult`` / ``decay_mult`` (so BatchNorm
statistics with ``lr_mult=0`` stay untouched) and plug into every
distributed platform through the same :class:`SGDSolver` interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .net import Net
from .solver import SGDSolver, SolverConfig

#: Numerical floor for the adaptive denominators (Caffe's delta).
ADAPTIVE_EPS = 1e-8


class NesterovSolver(SGDSolver):
    """Nesterov accelerated gradient (Caffe's ``type: "Nesterov"``)."""

    def apply_update(self, lr: Optional[float] = None) -> None:
        if lr is None:
            lr = self.learning_rate
        wd = self.config.weight_decay
        mu = self.config.momentum
        for (blob, lr_mult, decay_mult), history in zip(
            self.net.param_entries, self._history
        ):
            grad = blob.diff.ravel()
            if wd != 0.0 and decay_mult != 0.0:
                grad = grad + wd * decay_mult * blob.data.ravel()
            previous = history.copy()
            history *= mu
            history += lr * lr_mult * grad
            step = (1.0 + mu) * history - mu * previous
            blob.data -= step.reshape(blob.shape)


class AdaGradSolver(SGDSolver):
    """AdaGrad (Caffe's ``type: "AdaGrad"``); momentum must be 0."""

    def __init__(self, net: Net, config: Optional[SolverConfig] = None) -> None:
        super().__init__(net, config)
        if self.config.momentum != 0.0:
            raise ValueError("AdaGrad does not use momentum; set it to 0")
        # _history doubles as the accumulated squared-gradient buffer.

    def apply_update(self, lr: Optional[float] = None) -> None:
        if lr is None:
            lr = self.learning_rate
        wd = self.config.weight_decay
        for (blob, lr_mult, decay_mult), accum in zip(
            self.net.param_entries, self._history
        ):
            if lr_mult == 0.0:
                continue
            grad = blob.diff.ravel()
            if wd != 0.0 and decay_mult != 0.0:
                grad = grad + wd * decay_mult * blob.data.ravel()
            accum += grad * grad
            step = lr * lr_mult * grad / (np.sqrt(accum) + ADAPTIVE_EPS)
            blob.data -= step.reshape(blob.shape)


class AdamSolver(SGDSolver):
    """Adam (Caffe's ``type: "Adam"``).

    ``config.momentum`` plays beta1; ``beta2`` is a constructor argument
    (Caffe's ``momentum2``, default 0.999).
    """

    def __init__(
        self,
        net: Net,
        config: Optional[SolverConfig] = None,
        beta2: float = 0.999,
    ) -> None:
        super().__init__(net, config)
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0,1), got {beta2}")
        self.beta2 = beta2
        self._second_moment = [
            np.zeros_like(history) for history in self._history
        ]

    def apply_update(self, lr: Optional[float] = None) -> None:
        if lr is None:
            lr = self.learning_rate
        wd = self.config.weight_decay
        beta1 = self.config.momentum
        step_number = self.iteration + 1
        correction = (
            np.sqrt(1.0 - self.beta2 ** step_number)
            / (1.0 - beta1 ** step_number)
        )
        for (blob, lr_mult, decay_mult), first, second in zip(
            self.net.param_entries, self._history, self._second_moment
        ):
            if lr_mult == 0.0:
                continue
            grad = blob.diff.ravel()
            if wd != 0.0 and decay_mult != 0.0:
                grad = grad + wd * decay_mult * blob.data.ravel()
            first *= beta1
            first += (1.0 - beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            step = (
                lr * lr_mult * correction * first
                / (np.sqrt(second) + ADAPTIVE_EPS)
            )
            blob.data -= step.reshape(blob.shape)
