"""Blobs: the named tensors Caffe passes between layers.

A blob pairs a ``data`` array with a same-shaped ``diff`` (gradient) array,
exactly as in BVLC Caffe.  Learnable parameters are blobs too; the solver
consumes ``diff`` and updates ``data``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

Shape = Tuple[int, ...]


class Blob:
    """A named (data, diff) tensor pair with a fixed shape."""

    def __init__(
        self,
        shape: Iterable[int],
        name: str = "",
        data: Optional[np.ndarray] = None,
    ) -> None:
        self.shape: Shape = tuple(int(dim) for dim in shape)
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"blob dims must be positive, got {self.shape}")
        self.name = name
        if data is not None:
            data = np.asarray(data, dtype=np.float32)
            if data.shape != self.shape:
                raise ValueError(
                    f"data shape {data.shape} != blob shape {self.shape}"
                )
            self.data = data.copy()
        else:
            self.data = np.zeros(self.shape, dtype=np.float32)
        self.diff = np.zeros(self.shape, dtype=np.float32)

    @property
    def count(self) -> int:
        """Number of elements."""
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Bytes of the data array (what crosses the network when shared)."""
        return self.count * 4

    def zero_diff(self) -> None:
        """Clear accumulated gradients (start of a solver step)."""
        self.diff.fill(0.0)

    def reshape_like(self, other: "Blob") -> None:
        """Adopt another blob's shape, reallocating storage."""
        self.shape = other.shape
        self.data = np.zeros(self.shape, dtype=np.float32)
        self.diff = np.zeros(self.shape, dtype=np.float32)

    def copy_from(self, other: "Blob", copy_diff: bool = False) -> None:
        """Copy data (and optionally diff) from a same-shaped blob."""
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {other.shape} vs {self.shape}")
        np.copyto(self.data, other.data)
        if copy_diff:
            np.copyto(self.diff, other.diff)

    def __repr__(self) -> str:
        return f"Blob(name={self.name!r}, shape={self.shape})"


def fan_in_out(weight_shape: Shape) -> Tuple[int, int]:
    """Fan-in/fan-out of a weight tensor (conv ``OIHW`` or FC ``OI``)."""
    if len(weight_shape) < 2:
        raise ValueError(f"weights need >=2 dims, got {weight_shape}")
    receptive = int(np.prod(weight_shape[2:])) if len(weight_shape) > 2 else 1
    fan_in = weight_shape[1] * receptive
    fan_out = weight_shape[0] * receptive
    return fan_in, fan_out


def xavier_fill(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """Caffe's ``xavier`` filler: uniform in ±sqrt(3 / fan_in)."""
    fan_in, _ = fan_in_out(shape)
    scale = float(np.sqrt(3.0 / fan_in))
    return rng.uniform(-scale, scale, size=shape).astype(np.float32)


def msra_fill(shape: Shape, rng: np.random.Generator) -> np.ndarray:
    """Caffe's ``msra`` (He) filler: normal with std sqrt(2 / fan_in)."""
    fan_in, _ = fan_in_out(shape)
    std = float(np.sqrt(2.0 / fan_in))
    return (rng.standard_normal(shape) * std).astype(np.float32)
