"""The SGD solver with Caffe's learning-rate policies and momentum rule.

Caffe's SGD update (``solvers/sgd_solver.cpp``) is

    V_{t+1} = mu * V_t + lr * lr_mult * (dW + wd * decay_mult * W)
    W_{t+1} = W_t - V_{t+1}

The paper's experiments use ``base_lr = 0.1``, ``gamma = 0.1``,
``momentum = 0.9`` with the ``step`` policy stepping every 4 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .net import Net

#: Learning-rate policies implemented (names follow Caffe's solver.prototxt).
LR_POLICIES = ("fixed", "step", "multistep", "poly", "inv", "exp")


@dataclass
class SolverConfig:
    """Hyper-parameters of one solver (a solver.prototxt equivalent)."""

    base_lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_policy: str = "fixed"
    gamma: float = 0.1
    stepsize: int = 1000
    stepvalues: Sequence[int] = field(default_factory=tuple)
    power: float = 1.0
    max_iter: int = 10000
    #: Caffe's ``clip_gradients``: if positive, scale the whole gradient
    #: so its global L2 norm never exceeds this value.
    clip_gradients: float = 0.0

    def __post_init__(self) -> None:
        if self.lr_policy not in LR_POLICIES:
            raise ValueError(
                f"unknown lr_policy {self.lr_policy!r}; "
                f"expected one of {LR_POLICIES}"
            )
        if self.base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {self.base_lr}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(
                f"momentum must be in [0,1), got {self.momentum}"
            )
        if self.max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {self.max_iter}")

    def learning_rate(self, iteration: int) -> float:
        """Caffe's ``GetLearningRate`` for the configured policy."""
        if self.lr_policy == "fixed":
            return self.base_lr
        if self.lr_policy == "step":
            return self.base_lr * self.gamma ** (iteration // self.stepsize)
        if self.lr_policy == "multistep":
            passed = sum(1 for s in self.stepvalues if iteration >= s)
            return self.base_lr * self.gamma ** passed
        if self.lr_policy == "poly":
            frac = min(iteration / self.max_iter, 1.0)
            return self.base_lr * (1.0 - frac) ** self.power
        if self.lr_policy == "inv":
            return self.base_lr * (1.0 + self.gamma * iteration) ** (
                -self.power
            )
        # exp
        return self.base_lr * self.gamma ** iteration


class SGDSolver:
    """Momentum SGD over one net replica.

    The solver owns the iteration counter and the momentum history; the
    distributed platforms call :meth:`step` for compute+local-update and
    layer their parameter-sharing logic around it.
    """

    def __init__(self, net: Net, config: Optional[SolverConfig] = None) -> None:
        self.net = net
        self.config = config if config is not None else SolverConfig()
        self.iteration = 0
        self._history: List[np.ndarray] = [
            np.zeros(blob.count, dtype=np.float32) for blob in net.params
        ]

    @property
    def learning_rate(self) -> float:
        """Learning rate the *next* step will use."""
        return self.config.learning_rate(self.iteration)

    def step(self, inputs: Dict[str, np.ndarray]) -> Dict[str, float]:
        """One training iteration: forward, backward, update.

        Returns a dict with ``loss``, every metric blob, and ``lr``.
        """
        self.net.zero_param_diffs()
        outputs = self.net.forward(inputs, train=True)
        self.net.backward()
        lr = self.learning_rate
        self.apply_update(lr)
        self.iteration += 1
        result = {"loss": self.net.total_loss(outputs), "lr": lr}
        for name in self.net.metric_names:
            result[name] = float(outputs[name].ravel()[0])
        return result

    def compute_gradients(
        self, inputs: Dict[str, np.ndarray]
    ) -> Dict[str, float]:
        """Forward+backward only (synchronous platforms aggregate first)."""
        self.net.zero_param_diffs()
        outputs = self.net.forward(inputs, train=True)
        self.net.backward()
        result = {"loss": self.net.total_loss(outputs)}
        for name in self.net.metric_names:
            result[name] = float(outputs[name].ravel()[0])
        return result

    def clip_stored_gradients(self) -> float:
        """Caffe's ClipGradients: rescale diffs to the configured L2 cap.

        Returns the pre-clip global gradient norm (for monitoring).
        """
        threshold = self.config.clip_gradients
        total = 0.0
        for blob in self.net.params:
            total += float(np.dot(blob.diff.ravel(), blob.diff.ravel()))
        norm = float(np.sqrt(total))
        if threshold > 0.0 and norm > threshold:
            scale = threshold / norm
            for blob in self.net.params:
                blob.diff *= scale
        return norm

    def apply_update(self, lr: Optional[float] = None) -> None:
        """Apply the momentum update from the currently stored diffs."""
        if self.config.clip_gradients > 0.0:
            self.clip_stored_gradients()
        if lr is None:
            lr = self.learning_rate
        wd = self.config.weight_decay
        mu = self.config.momentum
        for (blob, lr_mult, decay_mult), history in zip(
            self.net.param_entries, self._history
        ):
            grad = blob.diff.ravel()
            if wd != 0.0 and decay_mult != 0.0:
                grad = grad + wd * decay_mult * blob.data.ravel()
            history *= mu
            history += lr * lr_mult * grad
            blob.data -= history.reshape(blob.shape)

    def advance_iteration(self) -> None:
        """Bump the LR clock without running a step (sync platforms)."""
        self.iteration += 1

    def evaluate(
        self,
        batches: Sequence[Dict[str, np.ndarray]],
    ) -> Dict[str, float]:
        """Average loss/metrics over test-phase batches."""
        if not batches:
            raise ValueError("need at least one evaluation batch")
        totals: Dict[str, float] = {}
        for batch in batches:
            outputs = self.net.forward(batch, train=False)
            totals["loss"] = totals.get("loss", 0.0) + self.net.total_loss(
                outputs
            )
            for name in self.net.metric_names:
                totals[name] = totals.get(name, 0.0) + float(
                    outputs[name].ravel()[0]
                )
        return {key: value / len(batches) for key, value in totals.items()}
