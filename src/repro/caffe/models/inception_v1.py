"""Inception-v1 (GoogLeNet), the paper's primary benchmark model.

``full_spec`` is the faithful BVLC GoogLeNet graph (including both
auxiliary classifier heads with ``loss_weight = 0.3``), used for parameter
accounting in the performance model; ``scaled_spec`` is a trainable
miniature keeping the architectural motif — parallel 1x1 / 3x3 / 5x5 / pool
branches concatenated channel-wise — for the convergence experiments.
"""

from __future__ import annotations

from ..netspec import NetSpec

#: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj) per module, from the
#: GoogLeNet paper's Table 1.
INCEPTION_CONFIGS = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception_module(
    spec: NetSpec, name: str, bottom: str, config: tuple
) -> str:
    """One GoogLeNet inception module; returns the concat blob name."""
    n1, r3, n3, r5, n5, pp = config
    b1 = spec.conv_relu(f"{name}_1x1", bottom, n1, kernel=1)
    b3 = spec.conv_relu(f"{name}_3x3_reduce", bottom, r3, kernel=1)
    b3 = spec.conv_relu(f"{name}_3x3", b3, n3, kernel=3, pad=1)
    b5 = spec.conv_relu(f"{name}_5x5_reduce", bottom, r5, kernel=1)
    b5 = spec.conv_relu(f"{name}_5x5", b5, n5, kernel=5, pad=2)
    bp = spec.pool(f"{name}_pool", bottom, method="max", kernel=3, stride=1,
                   pad=1)
    bp = spec.conv_relu(f"{name}_pool_proj", bp, pp, kernel=1)
    return spec.concat(f"{name}_output", [b1, b3, b5, bp])


def _aux_head(
    spec: NetSpec, name: str, bottom: str, labels: str, num_classes: int
) -> None:
    """Auxiliary classifier (training-time regulariser, loss weight 0.3)."""
    top = spec.pool(f"{name}_ave_pool", bottom, method="ave", kernel=5,
                    stride=3)
    top = spec.conv_relu(f"{name}_conv", top, 128, kernel=1)
    top = spec.fc(f"{name}_fc", top, 1024)
    top = spec.relu(f"{name}_fc_relu", top)
    top = spec.add("Dropout", f"{name}_drop", [top], ratio=0.7)[0]
    logits = spec.fc(f"{name}_classifier", top, num_classes)
    spec.softmax_loss(f"{name}_loss", logits, labels, loss_weight=0.3)


def full_spec(
    batch_size: int = 60,
    image_size: int = 224,
    num_classes: int = 1000,
    aux_heads: bool = True,
) -> NetSpec:
    """The complete GoogLeNet graph at ImageNet scale.

    The default batch size of 60 matches the paper's per-worker minibatch.
    Instantiating this allocates ~13.4 M parameters; prefer
    :func:`repro.caffe.netspec.infer` when only sizes are needed.
    """
    spec = NetSpec("inception_v1")
    data = spec.input("data", (batch_size, 3, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = spec.conv_relu("conv1_7x7_s2", data, 64, kernel=7, stride=2, pad=3)
    top = spec.pool("pool1_3x3_s2", top, method="max", kernel=3, stride=2)
    top = spec.add("LRN", "pool1_norm1", [top], local_size=5)[0]
    top = spec.conv_relu("conv2_3x3_reduce", top, 64, kernel=1)
    top = spec.conv_relu("conv2_3x3", top, 192, kernel=3, pad=1)
    top = spec.add("LRN", "conv2_norm2", [top], local_size=5)[0]
    top = spec.pool("pool2_3x3_s2", top, method="max", kernel=3, stride=2)

    top = _inception_module(spec, "inception_3a", top, INCEPTION_CONFIGS["3a"])
    top = _inception_module(spec, "inception_3b", top, INCEPTION_CONFIGS["3b"])
    top = spec.pool("pool3_3x3_s2", top, method="max", kernel=3, stride=2)

    top = _inception_module(spec, "inception_4a", top, INCEPTION_CONFIGS["4a"])
    if aux_heads:
        _aux_head(spec, "loss1", top, labels, num_classes)
    top = _inception_module(spec, "inception_4b", top, INCEPTION_CONFIGS["4b"])
    top = _inception_module(spec, "inception_4c", top, INCEPTION_CONFIGS["4c"])
    top = _inception_module(spec, "inception_4d", top, INCEPTION_CONFIGS["4d"])
    if aux_heads:
        _aux_head(spec, "loss2", top, labels, num_classes)
    top = _inception_module(spec, "inception_4e", top, INCEPTION_CONFIGS["4e"])
    top = spec.pool("pool4_3x3_s2", top, method="max", kernel=3, stride=2)

    top = _inception_module(spec, "inception_5a", top, INCEPTION_CONFIGS["5a"])
    top = _inception_module(spec, "inception_5b", top, INCEPTION_CONFIGS["5b"])

    top = spec.pool("pool5", top, method="ave", global_pool=True)
    top = spec.add("Dropout", "pool5_drop", [top], ratio=0.4)[0]
    logits = spec.fc("loss3_classifier", top, num_classes)
    spec.softmax_loss("loss3", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels,
                  top_k=min(5, num_classes))
    return spec


def scaled_spec(
    batch_size: int = 16,
    image_size: int = 16,
    num_classes: int = 10,
    channels: int = 3,
) -> NetSpec:
    """A trainable miniature GoogLeNet for convergence experiments.

    Two inception modules over small images; trains to high accuracy on the
    synthetic task within a few hundred iterations on a CPU.
    """
    spec = NetSpec("inception_v1_scaled")
    data = spec.input("data", (batch_size, channels, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = spec.conv_relu("conv1", data, 16, kernel=3, pad=1)
    top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
    top = _inception_module(spec, "inception_a", top, (8, 8, 16, 4, 8, 8))
    top = _inception_module(spec, "inception_b", top, (16, 12, 24, 4, 8, 8))
    top = spec.pool("pool_final", top, method="ave", global_pool=True)
    logits = spec.fc("classifier", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels,
                  top_k=min(5, num_classes))
    return spec
