"""ResNet-50, the second model of the paper's scalability study.

Bottleneck residual blocks (1x1 reduce, 3x3, 1x1 expand) with projection
shortcuts at stage boundaries, batch-norm after every convolution; stage
depths (3, 4, 6, 3) per He et al.  ``full_spec`` counts ~25.6 M parameters
("about twice as many parameters as Inception_v1", paper Sec. IV-E).
"""

from __future__ import annotations

from typing import Tuple

from ..netspec import NetSpec

#: (blocks, bottleneck width, output width) per stage.
STAGES: Tuple[Tuple[int, int, int], ...] = (
    (3, 64, 256),
    (4, 128, 512),
    (6, 256, 1024),
    (3, 512, 2048),
)


def _bottleneck(
    spec: NetSpec,
    name: str,
    bottom: str,
    width: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> str:
    """One bottleneck block; returns the post-addition ReLU blob."""
    trunk = spec.conv_bn_relu(f"{name}_branch2a", bottom, width, kernel=1,
                              stride=stride)
    trunk = spec.conv_bn_relu(f"{name}_branch2b", trunk, width, kernel=3,
                              pad=1)
    trunk = spec.conv(f"{name}_branch2c", trunk, out_channels, kernel=1,
                      bias=False)
    trunk = spec.add("BatchNorm", f"{name}_branch2c_bn", [trunk])[0]

    if project:
        shortcut = spec.conv(f"{name}_branch1", bottom, out_channels,
                             kernel=1, stride=stride, bias=False)
        shortcut = spec.add("BatchNorm", f"{name}_branch1_bn", [shortcut])[0]
    else:
        shortcut = bottom
    total = spec.add("Eltwise", f"{name}_sum", [trunk, shortcut],
                     operation="sum")[0]
    return spec.relu(f"{name}_relu", total)


def full_spec(
    batch_size: int = 60,
    image_size: int = 224,
    num_classes: int = 1000,
) -> NetSpec:
    """The complete ResNet-50 graph at ImageNet scale (~25.6 M params)."""
    spec = NetSpec("resnet50")
    data = spec.input("data", (batch_size, 3, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = spec.conv_bn_relu("conv1", data, 64, kernel=7, stride=2, pad=3)
    top = spec.pool("pool1", top, method="max", kernel=3, stride=2)

    for stage_index, (blocks, width, out_channels) in enumerate(STAGES):
        for block_index in range(blocks):
            name = f"res{stage_index + 2}{chr(ord('a') + block_index)}"
            first = block_index == 0
            stride = 2 if (first and stage_index > 0) else 1
            top = _bottleneck(
                spec, name, top, width, out_channels,
                stride=stride, project=first,
            )

    top = spec.pool("pool5", top, method="ave", global_pool=True)
    logits = spec.fc("fc1000", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec


def scaled_spec(
    batch_size: int = 16,
    image_size: int = 16,
    num_classes: int = 10,
    channels: int = 3,
) -> NetSpec:
    """A trainable miniature ResNet for convergence experiments."""
    spec = NetSpec("resnet50_scaled")
    data = spec.input("data", (batch_size, channels, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = spec.conv_bn_relu("conv1", data, 16, kernel=3, pad=1)
    top = _bottleneck(spec, "res2a", top, width=8, out_channels=32,
                      stride=1, project=True)
    top = _bottleneck(spec, "res2b", top, width=8, out_channels=32,
                      stride=1, project=False)
    top = _bottleneck(spec, "res3a", top, width=16, out_channels=64,
                      stride=2, project=True)
    top = spec.pool("pool_final", top, method="ave", global_pool=True)
    logits = spec.fc("classifier", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec
