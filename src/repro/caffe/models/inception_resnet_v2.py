"""Inception-ResNet-v2, the paper's largest model (214 MB of parameters).

Follows the TF-slim filter configuration of Szegedy et al. 2016: stem, 10
Inception-ResNet-A blocks (35x35 grid), Reduction-A, 20 Inception-ResNet-B
blocks (17x17), Reduction-B, 10 Inception-ResNet-C blocks (8x8), then a
1536-wide 1x1, global pooling, dropout and the classifier.  Residual
branches end in a *linear* 1x1 projection summed into the trunk with the
published scale factors (0.17 / 0.10 / 0.20) via Eltwise coefficients.

The paper trains this model on 320x320 inputs (Sec. IV-E), so that is the
``full_spec`` default.
"""

from __future__ import annotations

from typing import Sequence

from ..netspec import NetSpec

#: Residual scale factors per block family, from the Inception-v4 paper.
SCALE_A = 0.17
SCALE_B = 0.10
SCALE_C = 0.20


def _block_a(spec: NetSpec, name: str, bottom: str, channels: int) -> str:
    """Inception-ResNet-A (block35)."""
    b0 = spec.conv_bn_relu(f"{name}_b0_1x1", bottom, 32, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_1x1", bottom, 32, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_3x3", b1, 32, kernel=3, pad=1)
    b2 = spec.conv_bn_relu(f"{name}_b2_1x1", bottom, 32, kernel=1)
    b2 = spec.conv_bn_relu(f"{name}_b2_3x3a", b2, 48, kernel=3, pad=1)
    b2 = spec.conv_bn_relu(f"{name}_b2_3x3b", b2, 64, kernel=3, pad=1)
    mixed = spec.concat(f"{name}_mixed", [b0, b1, b2])
    up = spec.conv(f"{name}_up", mixed, channels, kernel=1)  # linear
    total = spec.add(
        "Eltwise", f"{name}_sum", [up, bottom],
        operation="sum", coeffs=(SCALE_A, 1.0),
    )[0]
    return spec.relu(f"{name}_relu", total)


def _block_b(spec: NetSpec, name: str, bottom: str, channels: int) -> str:
    """Inception-ResNet-B (block17) with factorised 1x7 / 7x1 convs."""
    b0 = spec.conv_bn_relu(f"{name}_b0_1x1", bottom, 192, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_1x1", bottom, 128, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_1x7", b1, 160, kernel=(1, 7),
                           pad=(0, 3))
    b1 = spec.conv_bn_relu(f"{name}_b1_7x1", b1, 192, kernel=(7, 1),
                           pad=(3, 0))
    mixed = spec.concat(f"{name}_mixed", [b0, b1])
    up = spec.conv(f"{name}_up", mixed, channels, kernel=1)  # linear
    total = spec.add(
        "Eltwise", f"{name}_sum", [up, bottom],
        operation="sum", coeffs=(SCALE_B, 1.0),
    )[0]
    return spec.relu(f"{name}_relu", total)


def _block_c(spec: NetSpec, name: str, bottom: str, channels: int) -> str:
    """Inception-ResNet-C (block8) with factorised 1x3 / 3x1 convs."""
    b0 = spec.conv_bn_relu(f"{name}_b0_1x1", bottom, 192, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_1x1", bottom, 192, kernel=1)
    b1 = spec.conv_bn_relu(f"{name}_b1_1x3", b1, 224, kernel=(1, 3),
                           pad=(0, 1))
    b1 = spec.conv_bn_relu(f"{name}_b1_3x1", b1, 256, kernel=(3, 1),
                           pad=(1, 0))
    mixed = spec.concat(f"{name}_mixed", [b0, b1])
    up = spec.conv(f"{name}_up", mixed, channels, kernel=1)  # linear
    total = spec.add(
        "Eltwise", f"{name}_sum", [up, bottom],
        operation="sum", coeffs=(SCALE_C, 1.0),
    )[0]
    return spec.relu(f"{name}_relu", total)


def _stem(spec: NetSpec, data: str) -> str:
    """The Inception-v4 stem, ending at 384 channels."""
    top = spec.conv_bn_relu("stem_conv1", data, 32, kernel=3, stride=2)
    top = spec.conv_bn_relu("stem_conv2", top, 32, kernel=3)
    top = spec.conv_bn_relu("stem_conv3", top, 64, kernel=3, pad=1)

    pool_a = spec.pool("stem_pool1", top, method="max", kernel=3, stride=2,
                       ceil=False)
    conv_a = spec.conv_bn_relu("stem_conv4", top, 96, kernel=3, stride=2)
    top = spec.concat("stem_mixed1", [pool_a, conv_a])  # 160

    left = spec.conv_bn_relu("stem_l_1x1", top, 64, kernel=1)
    left = spec.conv_bn_relu("stem_l_3x3", left, 96, kernel=3)
    right = spec.conv_bn_relu("stem_r_1x1", top, 64, kernel=1)
    right = spec.conv_bn_relu("stem_r_7x1", right, 64, kernel=(7, 1),
                              pad=(3, 0))
    right = spec.conv_bn_relu("stem_r_1x7", right, 64, kernel=(1, 7),
                              pad=(0, 3))
    right = spec.conv_bn_relu("stem_r_3x3", right, 96, kernel=3)
    top = spec.concat("stem_mixed2", [left, right])  # 192

    conv_b = spec.conv_bn_relu("stem_conv5", top, 192, kernel=3, stride=2)
    pool_b = spec.pool("stem_pool2", top, method="max", kernel=3, stride=2,
                       ceil=False)
    return spec.concat("stem_mixed3", [conv_b, pool_b])  # 384


def _reduction_a(spec: NetSpec, bottom: str) -> str:
    """35x35 -> 17x17; 384 -> 1088 channels (k=256, l=256, m=384, n=384)."""
    pool = spec.pool("reda_pool", bottom, method="max", kernel=3, stride=2,
                     ceil=False)
    conv = spec.conv_bn_relu("reda_3x3", bottom, 384, kernel=3, stride=2)
    branch = spec.conv_bn_relu("reda_b_1x1", bottom, 256, kernel=1)
    branch = spec.conv_bn_relu("reda_b_3x3a", branch, 256, kernel=3, pad=1)
    branch = spec.conv_bn_relu("reda_b_3x3b", branch, 384, kernel=3, stride=2)
    return spec.concat("reda_out", [pool, conv, branch])  # 384+384+384 = 1152


def _reduction_b(spec: NetSpec, bottom: str) -> str:
    """17x17 -> 8x8; 1152 -> 2144 channels."""
    pool = spec.pool("redb_pool", bottom, method="max", kernel=3, stride=2,
                     ceil=False)
    b1 = spec.conv_bn_relu("redb_b1_1x1", bottom, 256, kernel=1)
    b1 = spec.conv_bn_relu("redb_b1_3x3", b1, 384, kernel=3, stride=2)
    b2 = spec.conv_bn_relu("redb_b2_1x1", bottom, 256, kernel=1)
    b2 = spec.conv_bn_relu("redb_b2_3x3", b2, 288, kernel=3, stride=2)
    b3 = spec.conv_bn_relu("redb_b3_1x1", bottom, 256, kernel=1)
    b3 = spec.conv_bn_relu("redb_b3_3x3a", b3, 288, kernel=3, pad=1)
    b3 = spec.conv_bn_relu("redb_b3_3x3b", b3, 320, kernel=3, stride=2)
    return spec.concat("redb_out", [pool, b1, b2, b3])


def full_spec(
    batch_size: int = 60,
    image_size: int = 320,
    num_classes: int = 1000,
    blocks: Sequence[int] = (10, 20, 10),
) -> NetSpec:
    """The complete Inception-ResNet-v2 graph (~55 M parameters).

    ``image_size`` defaults to the paper's 320x320 training resolution.
    """
    spec = NetSpec("inception_resnet_v2")
    data = spec.input("data", (batch_size, 3, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = _stem(spec, data)
    a_channels = 384
    for index in range(blocks[0]):
        top = _block_a(spec, f"block35_{index + 1}", top, a_channels)
    top = _reduction_a(spec, top)
    b_channels = 1152
    for index in range(blocks[1]):
        top = _block_b(spec, f"block17_{index + 1}", top, b_channels)
    top = _reduction_b(spec, top)
    c_channels = 2144
    for index in range(blocks[2]):
        top = _block_c(spec, f"block8_{index + 1}", top, c_channels)

    top = spec.conv_bn_relu("conv7b", top, 1536, kernel=1)
    top = spec.pool("pool8", top, method="ave", global_pool=True)
    top = spec.add("Dropout", "drop8", [top], ratio=0.2)[0]
    logits = spec.fc("logits", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec


def scaled_spec(
    batch_size: int = 16,
    image_size: int = 16,
    num_classes: int = 10,
    channels: int = 3,
) -> NetSpec:
    """A trainable miniature keeping the residual-inception motif."""
    spec = NetSpec("inception_resnet_v2_scaled")
    data = spec.input("data", (batch_size, channels, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = spec.conv_bn_relu("stem", data, 24, kernel=3, pad=1)

    # Two miniature residual-inception blocks with scaled additions.
    for index, scale in enumerate((SCALE_A, SCALE_B)):
        name = f"mini_block_{index + 1}"
        b0 = spec.conv_bn_relu(f"{name}_b0", top, 8, kernel=1)
        b1 = spec.conv_bn_relu(f"{name}_b1_1x1", top, 8, kernel=1)
        b1 = spec.conv_bn_relu(f"{name}_b1_3x3", b1, 8, kernel=3, pad=1)
        mixed = spec.concat(f"{name}_mixed", [b0, b1])
        up = spec.conv(f"{name}_up", mixed, 24, kernel=1)
        total = spec.add(
            "Eltwise", f"{name}_sum", [up, top],
            operation="sum", coeffs=(scale, 1.0),
        )[0]
        top = spec.relu(f"{name}_relu", total)

    top = spec.pool("pool_reduce", top, method="max", kernel=2, stride=2)
    top = spec.conv_bn_relu("conv_final", top, 32, kernel=1)
    top = spec.pool("pool_final", top, method="ave", global_pool=True)
    logits = spec.fc("classifier", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec
