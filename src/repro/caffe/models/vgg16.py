"""VGG16, the paper's communication-bound extreme (553 MB of parameters).

Thirteen 3x3 convolutions in five blocks plus three fully connected layers;
the 138 M parameters (over 100 M in ``fc6`` alone) are why the paper finds
multi-node scaling counterproductive for this model (Sec. IV-E).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..netspec import NetSpec

#: Channel widths per conv block, from Simonyan & Zisserman configuration D.
BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 2), (128, 2), (256, 3), (512, 3), (512, 3),
)


def full_spec(
    batch_size: int = 60,
    image_size: int = 224,
    num_classes: int = 1000,
) -> NetSpec:
    """The complete VGG16 graph at ImageNet scale (~138 M params)."""
    spec = NetSpec("vgg16")
    data = spec.input("data", (batch_size, 3, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = data
    for block_index, (width, depth) in enumerate(BLOCKS):
        for conv_index in range(depth):
            name = f"conv{block_index + 1}_{conv_index + 1}"
            top = spec.conv_relu(name, top, width, kernel=3, pad=1)
        top = spec.pool(f"pool{block_index + 1}", top, method="max",
                        kernel=2, stride=2)

    top = spec.fc("fc6", top, 4096)
    top = spec.relu("fc6_relu", top)
    top = spec.add("Dropout", "fc6_drop", [top], ratio=0.5)[0]
    top = spec.fc("fc7", top, 4096)
    top = spec.relu("fc7_relu", top)
    top = spec.add("Dropout", "fc7_drop", [top], ratio=0.5)[0]
    logits = spec.fc("fc8", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec


def scaled_spec(
    batch_size: int = 16,
    image_size: int = 16,
    num_classes: int = 10,
    channels: int = 3,
    widths: Sequence[int] = (16, 32),
) -> NetSpec:
    """A trainable miniature VGG for convergence experiments."""
    spec = NetSpec("vgg16_scaled")
    data = spec.input("data", (batch_size, channels, image_size, image_size))
    labels = spec.input("label", (batch_size,))

    top = data
    for block_index, width in enumerate(widths):
        for conv_index in range(2):
            name = f"conv{block_index + 1}_{conv_index + 1}"
            top = spec.conv_relu(name, top, width, kernel=3, pad=1)
        top = spec.pool(f"pool{block_index + 1}", top, method="max",
                        kernel=2, stride=2)

    top = spec.fc("fc6", top, 64)
    top = spec.relu("fc6_relu", top)
    top = spec.add("Dropout", "fc6_drop", [top], ratio=0.5)[0]
    logits = spec.fc("fc8", top, num_classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("accuracy_top1", logits, labels, top_k=1)
    spec.accuracy("accuracy_top5", logits, labels, top_k=min(5, num_classes))
    return spec
