"""The four CNN models of the paper's evaluation (Table IV).

Each module exposes ``full_spec`` (the faithful ImageNet-scale graph, used
allocation-free for parameter accounting) and ``scaled_spec`` (a trainable
miniature keeping the architectural motif, used for convergence runs).
"""

from types import ModuleType
from typing import Dict

from . import inception_resnet_v2, inception_v1, resnet50, vgg16

#: Registry keyed by the model names the paper's tables use.
MODEL_MODULES: Dict[str, ModuleType] = {
    "inception_v1": inception_v1,
    "resnet_50": resnet50,
    "inception_resnet_v2": inception_resnet_v2,
    "vgg16": vgg16,
}


def full_spec(model: str, **kwargs):
    """Build the ImageNet-scale spec for a model by table name."""
    return _module(model).full_spec(**kwargs)


def scaled_spec(model: str, **kwargs):
    """Build the trainable miniature spec for a model by table name."""
    return _module(model).scaled_spec(**kwargs)


def _module(model: str) -> ModuleType:
    try:
        return MODEL_MODULES[model]
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; expected one of "
            f"{sorted(MODEL_MODULES)}"
        ) from None


__all__ = [
    "MODEL_MODULES",
    "full_spec",
    "inception_resnet_v2",
    "inception_v1",
    "resnet50",
    "scaled_spec",
    "vgg16",
]
