"""Input transformations: Caffe's ``transform_param`` for the data layer.

Caffe's data layers preprocess every datum with an optional scale, mean
subtraction, random mirror and random crop.  The paper disables
augmentation for its speed experiments ("training data augmentation is
not applied"), so the default :class:`Transformer` is a no-op — but the
substrate supports the full set for downstream users, with deterministic
per-seed behaviour like everything else in this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .data import Minibatch


class TransformError(Exception):
    """A transform configuration does not fit the data."""


@dataclass(frozen=True)
class TransformParams:
    """Caffe's ``transform_param`` fields.

    Attributes:
        scale: Multiplies every pixel (Caffe applies it after mean
            subtraction).
        mean_value: Per-channel mean to subtract; a scalar applies to all
            channels.  ``None`` disables mean subtraction.
        mirror: Randomly flip images horizontally at train time.
        crop_size: Take a ``crop_size x crop_size`` window — random at
            train time, centred at test time.  0 disables cropping.
    """

    scale: float = 1.0
    mean_value: Optional[Union[float, Sequence[float]]] = None
    mirror: bool = False
    crop_size: int = 0

    def __post_init__(self) -> None:
        if self.crop_size < 0:
            raise ValueError(
                f"crop_size must be >= 0, got {self.crop_size}"
            )

    @property
    def is_identity(self) -> bool:
        """True when the transform changes nothing."""
        return (
            self.scale == 1.0
            and self.mean_value is None
            and not self.mirror
            and self.crop_size == 0
        )


class Transformer:
    """Applies :class:`TransformParams` to minibatches, deterministically.

    Args:
        params: The transform configuration.
        seed: Seed for the mirror/crop randomness (train phase).
    """

    def __init__(
        self,
        params: Optional[TransformParams] = None,
        seed: int = 0,
    ) -> None:
        self.params = params if params is not None else TransformParams()
        self._rng = np.random.default_rng(seed)

    def _mean_array(self, channels: int) -> Optional[np.ndarray]:
        mean = self.params.mean_value
        if mean is None:
            return None
        if np.isscalar(mean):
            return np.full(channels, float(mean), dtype=np.float32)
        mean = np.asarray(mean, dtype=np.float32)
        if mean.size != channels:
            raise TransformError(
                f"{mean.size} mean values for {channels} channels"
            )
        return mean

    def apply(self, batch: Minibatch, train: bool = True) -> Minibatch:
        """Transform one minibatch; the input batch is never mutated."""
        if self.params.is_identity:
            return batch
        images = batch.images.astype(np.float32, copy=True)
        n, c, h, w = images.shape

        mean = self._mean_array(c)
        if mean is not None:
            images -= mean[None, :, None, None]
        if self.params.scale != 1.0:
            images *= self.params.scale

        if self.params.mirror and train:
            flip = self._rng.random(n) < 0.5
            images[flip] = images[flip][:, :, :, ::-1]

        crop = self.params.crop_size
        if crop:
            if crop > h or crop > w:
                raise TransformError(
                    f"crop_size {crop} exceeds image {h}x{w}"
                )
            out = np.empty((n, c, crop, crop), dtype=np.float32)
            if train:
                ys = self._rng.integers(0, h - crop + 1, size=n)
                xs = self._rng.integers(0, w - crop + 1, size=n)
            else:
                ys = np.full(n, (h - crop) // 2)
                xs = np.full(n, (w - crop) // 2)
            for index in range(n):
                y, x = int(ys[index]), int(xs[index])
                out[index] = images[index, :, y:y + crop, x:x + crop]
            images = out

        return Minibatch(images, batch.labels.copy())

    def stream(self, batches, train: bool = True):
        """Wrap a minibatch iterator with this transform."""
        for batch in batches:
            yield self.apply(batch, train=train)
