"""Training data substrate: synthetic images, an LMDB-like store, prefetch.

The paper trains on ILSVRC-2012 converted to LMDB and prefetches ten
minibatches ahead of the GPU.  Without the 240 GB dataset we substitute a
deterministic synthetic image task whose difficulty is controlled by a noise
parameter: each class has a random spatial prototype and samples are noisy
prototypes.  This keeps the convergence dynamics (and the async-degradation
effects the paper studies) while fitting in laptop memory.

Three pieces mirror the paper's data path:

* :class:`SyntheticImageDataset` — the dataset itself, with disjoint
  train/test splits and worker sharding ("deep learning data is assigned to
  all workers without duplication", Sec. III-C);
* :class:`LmdbStore` / :func:`encode_datum` — a keyed record store with the
  serialised-datum format Caffe uses for LMDB ingestion;
* :class:`Prefetcher` — a background thread keeping a bounded queue of
  ready minibatches (depth 10, like ShmCaffe's prefetch).
"""

from __future__ import annotations

import queue
import struct
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class Minibatch:
    """One training batch as fed to ``Net.forward``."""

    images: np.ndarray  # (N, C, H, W) float32
    labels: np.ndarray  # (N,) int64

    @property
    def size(self) -> int:
        return int(self.images.shape[0])

    def as_inputs(
        self, image_blob: str = "data", label_blob: str = "label"
    ) -> Dict[str, np.ndarray]:
        """Map onto the net's input blob names."""
        return {image_blob: self.images, label_blob: self.labels}


class SyntheticImageDataset:
    """Deterministic multi-class image task.

    Class ``k`` has a fixed random prototype image; a sample is
    ``prototype + noise * N(0, 1)``.  With moderate noise a small CNN
    separates the classes in a few hundred iterations, slowly enough that
    optimiser differences (SSGD vs SEASGD vs stale variants) are visible in
    the accuracy curves.

    Args:
        num_classes: Number of classes.
        image_size: Square image side.
        channels: Image channels.
        train_per_class: Training samples per class.
        test_per_class: Held-out samples per class.
        noise: Standard deviation of the additive noise.
        seed: Generator seed; the whole dataset is a pure function of it.
    """

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 16,
        channels: int = 3,
        train_per_class: int = 100,
        test_per_class: int = 20,
        noise: float = 1.0,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need >=2 classes, got {num_classes}")
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.noise = noise
        rng = np.random.default_rng(seed)
        shape = (num_classes, channels, image_size, image_size)
        self.prototypes = rng.standard_normal(shape).astype(np.float32)

        def make_split(per_class: int, split_rng: np.random.Generator):
            images = np.empty(
                (num_classes * per_class, channels, image_size, image_size),
                dtype=np.float32,
            )
            labels = np.empty(num_classes * per_class, dtype=np.int64)
            for k in range(num_classes):
                lo = k * per_class
                hi = lo + per_class
                images[lo:hi] = self.prototypes[k] + noise * split_rng.standard_normal(
                    (per_class, channels, image_size, image_size)
                ).astype(np.float32)
                labels[lo:hi] = k
            order = split_rng.permutation(len(labels))
            return images[order], labels[order]

        self.train_images, self.train_labels = make_split(
            train_per_class, np.random.default_rng(seed + 1)
        )
        self.test_images, self.test_labels = make_split(
            test_per_class, np.random.default_rng(seed + 2)
        )

    @property
    def train_size(self) -> int:
        return len(self.train_labels)

    @property
    def test_size(self) -> int:
        return len(self.test_labels)

    def shard(self, rank: int, num_shards: int) -> Tuple[np.ndarray, np.ndarray]:
        """Worker ``rank``'s slice of the training set, without duplication.

        Round-robin sharding so every shard sees every class even when the
        shard count does not divide the dataset size.
        """
        if not 0 <= rank < num_shards:
            raise ValueError(f"rank {rank} out of range for {num_shards} shards")
        indices = np.arange(rank, self.train_size, num_shards)
        return self.train_images[indices], self.train_labels[indices]

    def minibatches(
        self,
        batch_size: int,
        seed: int = 0,
        rank: int = 0,
        num_shards: int = 1,
        skip: int = 0,
    ) -> Iterator[Minibatch]:
        """Endless stream of shuffled minibatches from this worker's shard.

        The stream is a pure function of ``(seed, rank, num_shards)``, so
        ``skip=N`` fast-forwards past the first ``N`` batches — this is
        the *dataset cursor* a resumed training leg uses to continue the
        exact batch sequence an interrupted run was consuming.  Skipping
        only advances the shuffle RNG (no batch materialisation), so a
        large cursor is cheap.
        """
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        images, labels = self.shard(rank, num_shards)
        if batch_size > len(labels):
            raise ValueError(
                f"batch {batch_size} exceeds shard size {len(labels)}"
            )
        rng = np.random.default_rng(seed)
        per_epoch = (len(labels) - batch_size) // batch_size + 1
        # Fast-forward whole epochs by burning one permutation each.
        for _ in range(skip // per_epoch):
            rng.permutation(len(labels))
        skip %= per_epoch
        while True:
            order = rng.permutation(len(labels))
            for start in range(0, len(order) - batch_size + 1, batch_size):
                if skip:
                    skip -= 1
                    continue
                chosen = order[start:start + batch_size]
                yield Minibatch(images[chosen], labels[chosen])

    def test_batches(self, batch_size: int) -> List[Minibatch]:
        """The full test split as a batch list (last batch may be short)."""
        batches = []
        for start in range(0, self.test_size, batch_size):
            stop = min(start + batch_size, self.test_size)
            batches.append(
                Minibatch(
                    self.test_images[start:stop], self.test_labels[start:stop]
                )
            )
        return batches


# ---------------------------------------------------------------------------
# LMDB-like record store
# ---------------------------------------------------------------------------

_DATUM_HEADER = "!IIIq"  # channels, height, width, label


def encode_datum(image: np.ndarray, label: int) -> bytes:
    """Serialise one sample the way Caffe packs a Datum into LMDB."""
    if image.ndim != 3:
        raise ValueError(f"expected (C,H,W) image, got shape {image.shape}")
    c, h, w = image.shape
    header = struct.pack(_DATUM_HEADER, c, h, w, label)
    return header + np.ascontiguousarray(image, dtype=np.float32).tobytes()


def decode_datum(blob: bytes) -> Tuple[np.ndarray, int]:
    """Inverse of :func:`encode_datum`."""
    header_size = struct.calcsize(_DATUM_HEADER)
    c, h, w, label = struct.unpack(_DATUM_HEADER, blob[:header_size])
    image = np.frombuffer(blob[header_size:], dtype=np.float32).reshape(
        c, h, w
    )
    return image.copy(), int(label)


class LmdbStore:
    """A keyed record store mimicking Caffe's LMDB usage.

    Supports ``put``/``get`` plus ordered cursor iteration, which is how the
    data layer streams a training epoch.  Thread-safe.
    """

    def __init__(self) -> None:
        self._records: Dict[bytes, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._records[key] = value

    def get(self, key: bytes) -> bytes:
        with self._lock:
            try:
                return self._records[key]
            except KeyError:
                raise KeyError(f"no record for key {key!r}") from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def cursor(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate records in key order (LMDB cursors are sorted)."""
        with self._lock:
            items = sorted(self._records.items())
        yield from items

    @classmethod
    def from_dataset(
        cls, dataset: SyntheticImageDataset, split: str = "train"
    ) -> "LmdbStore":
        """Ingest one split, one datum per record, zero-padded keys."""
        if split == "train":
            images, labels = dataset.train_images, dataset.train_labels
        elif split == "test":
            images, labels = dataset.test_images, dataset.test_labels
        else:
            raise ValueError(f"unknown split {split!r}")
        store = cls()
        for index, (image, label) in enumerate(zip(images, labels)):
            key = f"{index:08d}".encode()
            store.put(key, encode_datum(image, int(label)))
        return store

    def stream_batches(self, batch_size: int) -> Iterator[Minibatch]:
        """One pass over the store in key order, batched."""
        images: List[np.ndarray] = []
        labels: List[int] = []
        for _, value in self.cursor():
            image, label = decode_datum(value)
            images.append(image)
            labels.append(label)
            if len(images) == batch_size:
                yield Minibatch(
                    np.stack(images), np.asarray(labels, dtype=np.int64)
                )
                images, labels = [], []
        if images:
            yield Minibatch(
                np.stack(images), np.asarray(labels, dtype=np.int64)
            )


class Prefetcher:
    """Background minibatch prefetch with a bounded queue.

    ShmCaffe "prefetches 10 sets of minibatch training data" so data I/O
    never stalls the GPU; ``depth=10`` is therefore the default.
    """

    _SENTINEL = None

    def __init__(self, batches: Iterator[Minibatch], depth: int = 10) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._source = batches
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._fill, name="prefetcher", daemon=True
        )
        self._thread.start()

    def _fill(self) -> None:
        try:
            for batch in self._source:
                if self._stop.is_set():
                    return
                while not self._stop.is_set():
                    try:
                        self._queue.put(batch, timeout=0.1)
                        break
                    except queue.Full:
                        continue
        finally:
            if not self._stop.is_set():
                try:
                    self._queue.put(self._SENTINEL, timeout=1.0)
                except queue.Full:
                    pass

    def next_batch(self, timeout: float = 30.0) -> Optional[Minibatch]:
        """Next prefetched batch, or ``None`` when the source is exhausted."""
        item = self._queue.get(timeout=timeout)
        return item

    def stop(self) -> None:
        """Stop the background thread and drain the queue."""
        self._stop.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
