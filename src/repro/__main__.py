"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``reproduce``   — regenerate the paper's tables/figures
  (``--analytic`` for the model-only ones, ``--full`` for full-length
  training).
* ``train``       — run one platform on the synthetic task.
* ``smb serve``   — start a standalone TCP Soft Memory Box server,
  optionally durable (``--journal-dir``); ``smb-server`` is a
  compatibility alias.
* ``smb chaos``   — replay a seeded fault-injection scenario against a
  small SEASGD job (retry/worker-loss drill; see
  ``docs/fault_tolerance.md``).
* ``smb drill``   — the server-loss drill: kill a journaled server
  mid-run, restart it from its journal, verify every worker re-attaches.
* ``checkpoint``  — ``inspect`` / ``resume`` a coordinated-checkpoint
  directory; ``save`` forces a durable server snapshot.
* ``bandwidth``   — run the Fig. 7 measurement against a server.
* ``telemetry``   — inspect telemetry artifacts saved by a run
  (``telemetry report <metrics.json>``).

Global flags (before the command): ``--log-level`` picks the logging
verbosity, ``--telemetry {off,metrics,trace}`` turns on the telemetry
subsystem for the whole process, and ``--telemetry-out DIR`` saves the
collected metrics (and trace, in trace mode) when the command finishes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .telemetry import LOG_LEVELS, MODES, configure, current, setup_logging


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments import runner

    print(
        runner.run_all(
            quick=not args.full, include_training=not args.analytic
        )
    )
    return 0


def _telemetry_meta(args: argparse.Namespace) -> dict:
    """Run context stored next to saved metrics for offline reporting."""
    return {
        "platform": args.platform,
        "model": args.model,
        "workers": args.workers,
        "group_size": args.group_size,
        "update_interval": args.update_interval,
    }


def _finish_telemetry(args: argparse.Namespace, meta: dict) -> None:
    """Print (and optionally save) what the current session collected."""
    tel = current()
    if not tel.enabled:
        return
    from .telemetry.report import report_from_session

    print()
    print(report_from_session(tel, meta))
    if args.telemetry_out:
        paths = tel.save(args.telemetry_out, meta)
        for kind, path in sorted(paths.items()):
            print(f"telemetry {kind} written to {path}")


def _cmd_train(args: argparse.Namespace) -> int:
    import tempfile

    from .experiments.convergence import ConvergenceSetup, run_platform

    setup = ConvergenceSetup(
        model=args.model,
        epochs=args.epochs,
        train_per_class=args.samples_per_class,
        noise=args.noise,
        batch_size=args.batch_size,
        base_lr=args.lr,
        moving_rate=args.moving_rate,
        update_interval=args.update_interval,
    )
    registry_dir = args.registry_dir or None
    if args.elastic and registry_dir is None:
        registry_dir = tempfile.mkdtemp(prefix="repro-registry-")
        print(f"elastic: membership registry in {registry_dir}")
    result = run_platform(
        setup, args.platform, workers=args.workers,
        group_size=args.group_size,
        elastic=args.elastic,
        max_workers=args.max_workers,
        registry_dir=registry_dir,
        autoscale=args.elastic,
    )
    print(f"platform:   {result.platform}")
    print(f"workers:    {result.num_workers}")
    print(f"final acc:  {result.final_accuracy:.3f}")
    print(f"final loss: {result.final_loss:.3f}")
    _finish_telemetry(args, _telemetry_meta(args))
    return 0


def _cmd_smb_members(args: argparse.Namespace) -> int:
    """Inspect an elastic run's membership registry."""
    import json as json_mod

    from .smb import MembershipRegistry

    registry = MembershipRegistry(args.registry)
    view = registry.read()
    if args.json:
        # The full multi-job document: every namespace's entry, not just
        # the legacy default mirror.
        print(json_mod.dumps(view.to_doc(), indent=2, sort_keys=True))
        return 0
    namespaces = view.namespaces()
    if not namespaces:
        print(f"no job published in {args.registry}")
        return 1
    print(f"registry:  {args.registry}")
    print(f"version:   {view.version}   epoch: {view.epoch}   "
          f"namespaces: {len(namespaces)}")
    for namespace in namespaces:
        entry = view.entry(namespace)
        print(f"namespace: {namespace!r}   capacity: {entry.capacity}")
        if entry.server:
            mode = entry.server.get("mode", "?")
            if mode == "tcp":
                print(f"  server:    tcp {entry.server.get('host')}:"
                      f"{entry.server.get('port')}")
            else:
                print(f"  server:    {mode}")
        if entry.servers:
            fleet = ", ".join(
                str(s.get("id", "?")) for s in entry.servers
            )
            print(f"  fleet:     {len(entry.servers)} server(s): {fleet}")
        if entry.job:
            print(f"  job:       namespace={entry.job.get('namespace', '')!r} "
                  f"count={entry.job.get('count')} "
                  f"algorithm={entry.job.get('algorithm')}")
        members = view.live_members(namespace)
        print(f"  members:   {len(members)} live")
        for member in members:
            print(f"    {member.member_id:>12s}  slot {member.slot}  "
                  f"gen {member.generation}  {member.status:>8s}  "
                  f"{member.heartbeats} heartbeat(s)")
    return 0


def _cmd_smb_tenants(args: argparse.Namespace) -> int:
    """Per-namespace usage, quotas and op counters of a live server."""
    import json as json_mod

    from .smb import SMBClient

    client = SMBClient.connect(_parse_address(args.address))
    try:
        stats = client.tenant_stats()
    finally:
        client.close()
    if args.json:
        print(json_mod.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"{'tenant':<16s} {'quota':>14s} {'used':>14s} "
          f"{'segments':>8s} {'ops':>10s} {'denied':>7s}")
    for name in sorted(stats):
        entry = stats[name]
        counters = entry.get("counters", {})
        quota = entry.get("quota")
        print(f"{name:<16s} "
              f"{'unlimited' if quota is None else str(quota):>14s} "
              f"{entry.get('used', 0):>14d} "
              f"{entry.get('segments', 0):>8d} "
              f"{counters.get('ops', 0):>10d} "
              f"{counters.get('quota_denials', 0):>7d}")
    return 0


def _cmd_smb_elastic_drill(args: argparse.Namespace) -> int:
    """The ``--scenario elastic`` branch of ``smb chaos``."""
    import tempfile

    from .experiments.elastic import run_elastic_drill

    workdir = args.workdir or tempfile.mkdtemp(prefix="elastic-drill-")
    print(f"elastic drill: {args.workers} launch workers, "
          f"ceiling {args.max_workers}, seed {args.seed}")
    print(f"  join after {args.join_at} heartbeat(s), retire after "
          f"{args.retire_after}; workdir {workdir}")
    report = run_elastic_drill(
        workdir,
        num_workers=args.workers,
        max_workers=args.max_workers,
        iterations=args.iterations,
        join_at=args.join_at,
        retire_after=args.retire_after,
        seed=args.seed,
        batch_size=args.batch_size,
        timeout=args.timeout,
    )
    print()
    for event in report.events:
        print(f"  {event}")
    print()
    for history in report.result.histories:
        status = ("LOST" if history.failed
                  else "retired" if history.retired else "ok")
        print(f"  worker {history.rank}: {status:>7s}  "
              f"{history.completed_iterations:3d} iterations")
    print()
    print(f"  membership epoch: {report.final_epoch}")
    for name in sorted(report.membership_counters):
        print(f"  {name}: {report.membership_counters[name]}")
    joiner, replacement = report.joiner, report.replacement
    if joiner is not None:
        print(f"  joiner:      {joiner.member_id} slot={joiner.slot} "
              f"gen={joiner.generation} retired={report.joiner_retired}")
    if replacement is not None:
        print(f"  replacement: {replacement.member_id} "
              f"slot={replacement.slot} gen={replacement.generation} "
              f"reclaimed={report.slot_reclaimed}")
    if not report.completed:
        print("  outcome: drill FAILED")
        return 1
    print("  outcome: join, retire and slot reclaim all completed")
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry.report import format_report, load

    try:
        payload = load(args.metrics)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_report(payload))
    return 0


def _cmd_smb_serve(args: argparse.Namespace) -> int:
    from .smb import TcpSMBServer

    server = TcpSMBServer(
        host=args.host, port=args.port,
        capacity=int(args.capacity_mb * 1e6),
        journal_dir=args.journal_dir or None,
        snapshot_interval=args.snapshot_interval,
        journal_ops=not args.no_journal_ops,
    ).start()
    print(f"SMB server listening on {server.address[0]}:{server.address[1]} "
          f"(capacity {args.capacity_mb:.0f} MB); Ctrl-C to stop")
    if args.journal_dir:
        mode = "snapshots only" if args.no_journal_ops else "snapshots + ops"
        print(f"durable: journal dir {args.journal_dir} ({mode}, "
              f"snapshot every {args.snapshot_interval:.0f}s, "
              f"epoch {server.core.epoch})")
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        server.stop()
        print("stopped")
    return 0


def _cmd_smb_chaos(args: argparse.Namespace) -> int:
    """Replay one seeded fault-injection scenario locally.

    Runs a small SEASGD job on a tiny synthetic task with the requested
    fault plan and retry policy, then reports per-worker outcomes and the
    fault/retry counters — the CLI face of the ``pytest -m chaos`` suite,
    for reproducing a scenario from its seed.  ``--scenario elastic``
    runs the membership churn drill instead (join / retire / reclaim).
    """
    if args.scenario == "elastic":
        return _cmd_smb_elastic_drill(args)
    from .caffe import SolverConfig, SyntheticImageDataset
    from .core import (
        DistributedTrainingManager,
        ShmCaffeConfig,
        TerminationCriterion,
    )
    from .experiments.recovery import drill_spec
    from .smb import FaultPlan, RetryPolicy
    from .telemetry import session as telemetry_session

    def spec_factory():
        return drill_spec(args.batch_size)

    dataset = SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40,
        test_per_class=8, noise=0.7, seed=args.seed,
    )
    plan = FaultPlan(
        seed=args.seed,
        error_rate=args.error_rate,
        delay_rate=args.delay_rate,
        delay_seconds=args.delay,
        disconnect_rate=args.disconnect_rate,
        kill_rank=args.kill_rank,
        kill_after=args.kill_after,
    )
    policy = RetryPolicy(
        max_attempts=args.retries + 1,
        base_backoff=args.backoff,
        seed=args.seed,
    )
    config = ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        max_iterations=args.iterations,
        termination=TerminationCriterion.AVERAGE_ITERATIONS,
    )
    print(f"chaos drill: {args.workers} workers x {args.iterations} iters, "
          f"seed {args.seed}")
    print(f"  plan:   error={plan.error_rate:.0%} delay={plan.delay_rate:.0%} "
          f"disconnect={plan.disconnect_rate:.0%} "
          f"kill_rank={plan.kill_rank} kill_after={plan.kill_after}")
    print(f"  policy: {policy.max_attempts} attempts, "
          f"base backoff {policy.base_backoff * 1e3:.1f} ms")
    with telemetry_session("metrics") as tel:
        manager = DistributedTrainingManager(
            spec_factory=spec_factory,
            config=config,
            dataset=dataset,
            batch_size=args.batch_size,
            num_workers=args.workers,
            seed=args.seed,
            telemetry=tel,
            retry_policy=policy,
            fault_plan=plan,
        )
        result = manager.run(timeout=args.timeout)
        snapshot = tel.registry.snapshot()

    def counter(name: str) -> int:
        entry = snapshot.get(name)
        return int(entry["value"]) if entry else 0

    print()
    for history in result.histories:
        status = "LOST" if history.failed else "ok"
        line = (f"  worker {history.rank}: {status:>4s}  "
                f"{history.completed_iterations:3d} iterations")
        if history.failed:
            line += f"  ({history.failure})"
        print(line)
    print()
    print(f"  injected faults: "
          + " ".join(f"{kind}={counter(f'smb/faults/{kind}')}"
                     for kind in ("error", "delay", "disconnect", "kill")))
    print(f"  client retries:  {counter('smb/client/retries')}")
    print(f"  workers lost:    {len(result.failed_ranks)} "
          f"{result.failed_ranks if result.failed_ranks else ''}")
    survivors = result.surviving_ranks
    if not survivors:
        print("  outcome: every worker died")
        return 1
    print(f"  outcome: {len(survivors)}/{args.workers} workers completed "
          f"training")
    return 0


def _cmd_smb_bench(args: argparse.Namespace) -> int:
    """Measure the SMB data path and gate against a committed baseline."""
    from .smb import bench

    try:
        config = bench.BenchConfig(
            sizes=tuple(args.sizes) if args.sizes else bench.DEFAULT_SIZES,
            ops=tuple(args.ops.split(",")) if args.ops else bench.OPS,
            transports=(
                tuple(args.transports.split(","))
                if args.transports else bench.TRANSPORTS
            ),
            iterations=args.iterations,
            sharded=args.sharded,
            clients=(
                tuple(int(n) for n in args.clients.split(","))
                if args.clients else ()
            ),
            tenancy=args.tenancy,
            serving=(
                tuple(int(n) for n in args.serving.split(","))
                if args.serving else ()
            ),
            quick=args.quick,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = bench.run_bench(config)
    print(bench.format_table(payload))
    if args.out:
        bench.save(payload, args.out)
        print(f"wrote {args.out}")
    if args.compare:
        try:
            baseline = bench.load(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        regressions = bench.compare(
            payload, baseline, max_regression=args.max_regression
        )
        if regressions:
            print(
                f"REGRESSION: {len(regressions)} cell(s) exceed "
                f"{args.max_regression:.1f}x the baseline p50:"
            )
            for regression in regressions:
                print(f"  {regression.describe()}")
            return 1
        print(
            f"no regressions vs {args.compare} "
            f"(gate: {args.max_regression:.1f}x p50)"
        )
    return 0


def _cmd_smb_drill(args: argparse.Namespace) -> int:
    """Kill the SMB server mid-run and restart it from its journal.

    The server-loss companion to ``smb chaos``: instead of flaky
    requests, the whole parameter box dies (``kill -9`` semantics) once
    the fleet has sealed a checkpoint, and a replacement recovers from
    the journal directory on a fresh port.  Success means every worker
    re-attached within its grace window and the run completed with no
    lost ranks.
    """
    import tempfile

    from .experiments.recovery import run_server_loss_drill

    workdir = args.workdir or tempfile.mkdtemp(prefix="smb-drill-")
    print(f"server-loss drill: {args.workers} workers x {args.iterations} "
          f"iters, seed {args.seed}, workdir {workdir}")
    print(f"  kill after checkpoint at iteration {args.kill_at}, "
          f"outage {args.outage:.1f}s, grace {args.grace:.0f}s")
    report = run_server_loss_drill(
        workdir,
        num_workers=args.workers,
        iterations=args.iterations,
        checkpoint_every=args.checkpoint_every,
        kill_at_iteration=args.kill_at,
        outage=args.outage,
        grace=args.grace,
        seed=args.seed,
        batch_size=args.batch_size,
        timeout=args.timeout,
    )
    print()
    for history in report.result.histories:
        status = "LOST" if history.failed else "ok"
        print(f"  worker {history.rank}: {status:>4s}  "
              f"{history.completed_iterations:3d} iterations")
    print()
    print(f"  server: {report.old_address[1]} -> {report.new_address[1]} "
          f"(epoch {report.recovered_epoch}, "
          f"{report.recoveries} recovery)")
    print(f"  client re-attachments: {report.reattachments}")
    print(f"  final loss: {report.result.histories[0].losses[-1]:.4f}")
    if not report.completed:
        print(f"  outcome: FAILED — lost ranks {report.result.failed_ranks}")
        return 1
    print(f"  outcome: all {args.workers} workers survived the server loss")
    return 0


def _parse_address(value: str):
    host, _, port = value.partition(":")
    return host, int(port)


def _resolve_primary(args: argparse.Namespace):
    """Primary endpoint from --connect or --rendezvous (serve commands)."""
    from .smb import read_rendezvous

    if args.rendezvous:
        address = read_rendezvous(args.rendezvous)
        if address is None:
            print(f"error: no readable rendezvous at {args.rendezvous}",
                  file=sys.stderr)
            return None
        return address
    if args.connect:
        return _parse_address(args.connect)
    print("error: one of --connect or --rendezvous is required",
          file=sys.stderr)
    return None


def _serve_loop(stop) -> int:
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        stop()
        print("stopped")
    return 0


def _cmd_serve_replica(args: argparse.Namespace) -> int:
    from .smb import ReplicaServer, SMBClient, TcpSMBServer

    address = _resolve_primary(args)
    if address is None:
        return 1
    segments = [name for name in args.segments.split(",") if name]
    if not segments:
        print("error: --segments needs at least one name", file=sys.stderr)
        return 1

    def connect() -> "SMBClient":
        return SMBClient.connect(address, tenant=args.tenant)

    replica = ReplicaServer(
        connect, segments, tenant=args.tenant,
        ring_depth=args.ring_depth,
        capacity=int(args.capacity_mb * 1e6),
        name=args.name,
    ).start()
    if not replica.wait_ready(timeout=args.sync_timeout):
        print(f"error: initial sync did not finish within "
              f"{args.sync_timeout:.0f}s", file=sys.stderr)
        replica.stop()
        return 1
    front = TcpSMBServer(
        host=args.host, port=args.port, core=replica.core
    ).start()
    print(f"read replica {args.name!r} mirroring {len(segments)} segment(s) "
          f"from {address[0]}:{address[1]}")
    print(f"serving SMB reads on {front.address[0]}:{front.address[1]} "
          f"(ring depth {args.ring_depth}); Ctrl-C to stop")

    def stop() -> None:
        front.stop()
        replica.stop()

    return _serve_loop(stop)


def _cmd_serve_gateway(args: argparse.Namespace) -> int:
    from .serve import ModelGateway
    from .smb import ReplicaServer, SMBClient

    address = _resolve_primary(args)
    if address is None:
        return 1
    segments = [name for name in args.segments.split(",") if name]
    if not segments:
        print("error: --segments needs at least one name", file=sys.stderr)
        return 1

    def connect() -> "SMBClient":
        return SMBClient.connect(address, tenant=args.tenant)

    replicas = [
        ReplicaServer(
            connect, segments, tenant=args.tenant,
            ring_depth=args.ring_depth,
            capacity=int(args.capacity_mb * 1e6),
            name=f"replica-{rank}",
        ).start()
        for rank in range(args.replicas)
    ]
    for replica in replicas:
        if not replica.wait_ready(timeout=args.sync_timeout):
            print(f"error: {replica.name} did not sync within "
                  f"{args.sync_timeout:.0f}s", file=sys.stderr)
            for other in replicas:
                other.stop()
            return 1
    gateway = ModelGateway(
        replicas, host=args.host, port=args.port
    ).start()
    print(f"model gateway over {len(replicas)} replica(s) of "
          f"{address[0]}:{address[1]}")
    print(f"serving HTTP on {gateway.url} "
          f"(GET /v1/models/{args.tenant}/<name>[?version=N]); "
          f"Ctrl-C to stop")

    def stop() -> None:
        gateway.stop()
        for replica in replicas:
            replica.stop()

    return _serve_loop(stop)


def _cmd_checkpoint_inspect(args: argparse.Namespace) -> int:
    import json

    from .core import inspect_checkpoint

    print(json.dumps(inspect_checkpoint(args.directory), indent=2))
    return 0


def _cmd_checkpoint_save(args: argparse.Namespace) -> int:
    """Force a journaled SMB server to write a durable snapshot now."""
    from .smb import SMBClient, errors, read_rendezvous

    if args.rendezvous:
        address = read_rendezvous(args.rendezvous)
        if address is None:
            print(f"error: no readable rendezvous at {args.rendezvous}",
                  file=sys.stderr)
            return 1
    elif args.connect:
        address = _parse_address(args.connect)
    else:
        print("error: one of --connect or --rendezvous is required",
              file=sys.stderr)
        return 1
    with SMBClient.connect(address) as client:
        try:
            seq, epoch = client.request_snapshot()
        except errors.SMBError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(f"snapshot seq {seq} written (server epoch {epoch})")
    return 0


def _cmd_checkpoint_resume(args: argparse.Namespace) -> int:
    """Continue a run from its latest checkpoint, rebuilt from metadata."""
    from .core import latest_checkpoint
    from .experiments.recovery import build_manager

    info = latest_checkpoint(args.directory)
    if info is None:
        print(f"error: no complete checkpoint under {args.directory}",
              file=sys.stderr)
        return 1
    print(f"resuming from {info.directory} "
          f"(iteration {info.iteration}, {info.num_workers} workers)")
    try:
        manager = build_manager(
            info.metadata,
            resume=args.directory,
            max_iterations=args.iterations or None,
            server_address=(
                _parse_address(args.connect) if args.connect else None
            ),
            rendezvous=args.rendezvous or None,
            server_down_grace=args.grace,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = manager.run(timeout=args.timeout)
    print()
    for history in result.histories:
        status = "LOST" if history.failed else "ok"
        final = f"{history.losses[-1]:.4f}" if history.records else "n/a"
        print(f"  worker {history.rank}: {status:>4s}  "
              f"{history.completed_iterations:3d} iterations, "
              f"final loss {final}")
    return 1 if result.failed_ranks else 0


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    from .perfmodel import measure_smb_bandwidth, modeled_bandwidth_gbs

    address = None
    if args.connect:
        host, _, port = args.connect.partition(":")
        address = (host, int(port))
    print(f"{'procs':>6s} {'modeled GB/s':>13s} {'measured GB/s':>14s}")
    for processes in (2, 4, 8, 16, 32):
        sample = measure_smb_bandwidth(
            processes, buffer_mb=args.buffer_mb,
            operations=args.operations, address=address,
        )
        print(
            f"{processes:6d} {modeled_bandwidth_gbs(processes):13.2f} "
            f"{sample.gbs:14.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--log-level", default="warning", choices=LOG_LEVELS,
        help="logging verbosity for the whole process",
    )
    parser.add_argument(
        "--telemetry", default="off", choices=MODES,
        help="record metrics, or metrics plus a Chrome trace",
    )
    parser.add_argument(
        "--telemetry-out", default="", metavar="DIR",
        help="directory to save metrics.json (and trace.json) into",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    reproduce.add_argument("--analytic", action="store_true",
                           help="model-only experiments (seconds)")
    reproduce.add_argument("--full", action="store_true",
                           help="full-length training experiments")
    reproduce.set_defaults(entry=_cmd_reproduce)

    train = commands.add_parser(
        "train", help="train one platform on the synthetic task"
    )
    train.add_argument("--platform", default="shmcaffe_a",
                       choices=["caffe", "caffe_mpi", "mpi_caffe",
                                "shmcaffe_a", "shmcaffe_h", "smb_asgd"])
    train.add_argument("--model", default="inception_v1",
                       choices=["inception_v1", "resnet_50",
                                "inception_resnet_v2", "vgg16"])
    train.add_argument("--workers", type=int, default=4)
    train.add_argument("--group-size", type=int, default=1)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--batch-size", type=int, default=10)
    train.add_argument("--samples-per-class", type=int, default=200)
    train.add_argument("--noise", type=float, default=0.9)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--moving-rate", type=float, default=0.2)
    train.add_argument("--update-interval", type=int, default=1)
    train.add_argument("--elastic", action="store_true",
                       help="elastic membership: workers claim slots "
                            "dynamically and an autoscaler may grow or "
                            "shrink the fleet (shmcaffe_a only)")
    train.add_argument("--max-workers", type=int, default=None,
                       help="slot ceiling for --elastic (default: "
                            "--workers, i.e. churn without growth)")
    train.add_argument("--registry-dir", default="",
                       help="membership registry directory for --elastic "
                            "(default: a fresh temp dir); inspect it "
                            "live with `repro smb members`")
    train.set_defaults(entry=_cmd_train)

    def _add_serve_args(target: argparse.ArgumentParser) -> None:
        target.add_argument("--host", default="127.0.0.1")
        target.add_argument("--port", type=int, default=0)
        target.add_argument("--capacity-mb", type=float, default=1024.0)
        target.add_argument(
            "--journal-dir", default="",
            help="make the server durable: snapshots + op journal + "
                 "rendezvous file go here; restarting with the same "
                 "directory recovers every segment",
        )
        target.add_argument(
            "--snapshot-interval", type=float, default=30.0,
            help="seconds between periodic durable snapshots",
        )
        target.add_argument(
            "--no-journal-ops", action="store_true",
            help="snapshot-only durability (bounded lost-delta window "
                 "instead of per-op journaling)",
        )
        target.set_defaults(entry=_cmd_smb_serve)

    smb_legacy = commands.add_parser(
        "smb-server",
        help="alias for `smb serve` (kept for compatibility)",
    )
    _add_serve_args(smb_legacy)

    smb_tools = commands.add_parser(
        "smb", help="SMB utilities (server, fault-injection replay)"
    )
    smb_sub = smb_tools.add_subparsers(dest="smb_command", required=True)
    serve = smb_sub.add_parser(
        "serve", help="run a standalone TCP Soft Memory Box server"
    )
    _add_serve_args(serve)
    chaos = smb_sub.add_parser(
        "chaos",
        help="replay a seeded fault-injection scenario against a small "
             "SEASGD job (or an elastic membership churn drill)",
    )
    chaos.add_argument("--scenario", default="faults",
                       choices=["faults", "elastic"],
                       help="faults: seeded fault injection; elastic: "
                            "join a worker mid-run, retire one, reclaim "
                            "its slot")
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--iterations", type=int, default=6)
    chaos.add_argument("--batch-size", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for data, faults, and retry jitter")
    chaos.add_argument("--error-rate", type=float, default=0.05,
                       help="per-request injected transport-error rate")
    chaos.add_argument("--delay-rate", type=float, default=0.0)
    chaos.add_argument("--delay", type=float, default=0.005,
                       help="seconds per injected delay")
    chaos.add_argument("--disconnect-rate", type=float, default=0.0)
    chaos.add_argument("--kill-rank", type=int, default=None,
                       help="rank whose transport dies permanently")
    chaos.add_argument("--kill-after", type=int, default=15,
                       help="requests the killed rank may complete first")
    chaos.add_argument("--retries", type=int, default=5,
                       help="retry attempts after a transient failure")
    chaos.add_argument("--backoff", type=float, default=0.001,
                       help="base retry backoff, seconds")
    chaos.add_argument("--timeout", type=float, default=300.0,
                       help="overall drill deadline, seconds")
    chaos.add_argument("--max-workers", type=int, default=4,
                       help="[elastic] control-block slot ceiling")
    chaos.add_argument("--join-at", type=int, default=5,
                       help="[elastic] spawn the joiner once rank0 has "
                            "this many registry heartbeats")
    chaos.add_argument("--retire-after", type=int, default=3,
                       help="[elastic] retire the joiner after this many "
                            "of its heartbeats")
    chaos.add_argument("--workdir", default="",
                       help="[elastic] registry root (default: a fresh "
                            "temp dir)")
    chaos.set_defaults(entry=_cmd_smb_chaos)

    members = smb_sub.add_parser(
        "members",
        help="inspect an elastic run's membership registry (job, live "
             "members, leases)",
    )
    members.add_argument("--registry", required=True,
                         help="registry directory of the run")
    members.add_argument("--json", action="store_true",
                         help="dump the raw registry document")
    members.set_defaults(entry=_cmd_smb_members)

    tenants = smb_sub.add_parser(
        "tenants",
        help="per-namespace usage, quotas and op counters of a live "
             "TCP server",
    )
    tenants.add_argument("--address", required=True,
                         help="server endpoint as host:port")
    tenants.add_argument("--json", action="store_true",
                         help="dump the raw tenant-stats document")
    tenants.set_defaults(entry=_cmd_smb_tenants)

    smb_bench = smb_sub.add_parser(
        "bench",
        help="benchmark SMB READ/WRITE/ACCUMULATE across payload sizes "
             "and gate against a committed baseline",
    )
    smb_bench.add_argument("--quick", action="store_true",
                           help="reduced sweep for CI smoke runs")
    smb_bench.add_argument("--sizes", type=int, nargs="*", default=None,
                           help="payload sizes in bytes (default: "
                                "1 KiB..64 MiB sweep)")
    smb_bench.add_argument("--ops", default=None,
                           help="comma-separated ops "
                                "(READ,WRITE,ACCUMULATE)")
    smb_bench.add_argument("--transports", default=None,
                           help="comma-separated transports (inproc,tcp)")
    smb_bench.add_argument("--iterations", type=int, default=None,
                           help="iterations per cell (default: "
                                "auto-scaled by size)")
    smb_bench.add_argument("--clients", default="",
                           help="comma-separated client counts for the "
                                "N-client contention sweep (e.g. 1,8,32); "
                                "empty skips it")
    smb_bench.add_argument("--sharded", type=int, default=0,
                           help="also measure K-server ShardedArray "
                                "overlap with this many shards")
    smb_bench.add_argument("--tenancy", action="store_true",
                           help="also run the two-tenant fairness cell "
                                "(1 KiB READs vs a bulk ACCUMULATE "
                                "stream); gated on the small tenant's "
                                "contended p95")
    smb_bench.add_argument("--serving", default="",
                           help="comma-separated client counts for the "
                                "read-fanout sweep against a replica "
                                "mirror (e.g. 1,4,16); empty skips it")
    smb_bench.add_argument("--out", default="",
                           help="write BENCH_smb.json here")
    smb_bench.add_argument("--compare", default="",
                           help="baseline BENCH_smb.json to gate against")
    smb_bench.add_argument("--max-regression", type=float, default=2.0,
                           help="fail if any cell's p50 exceeds this "
                                "factor of the baseline")
    smb_bench.set_defaults(entry=_cmd_smb_bench)

    drill = smb_sub.add_parser(
        "drill",
        help="server-loss drill: kill a journaled server mid-run, "
             "restart it from the journal, verify workers re-attach",
    )
    drill.add_argument("--workers", type=int, default=2)
    drill.add_argument("--iterations", type=int, default=10)
    drill.add_argument("--batch-size", type=int, default=4)
    drill.add_argument("--seed", type=int, default=0,
                       help="seed for data, weights, and retry jitter")
    drill.add_argument("--checkpoint-every", type=int, default=2)
    drill.add_argument("--kill-at", type=int, default=4,
                       help="kill once a checkpoint at this iteration "
                            "is sealed")
    drill.add_argument("--outage", type=float, default=0.3,
                       help="seconds the server stays dead")
    drill.add_argument("--grace", type=float, default=30.0,
                       help="per-client server-down reconnect window, "
                            "seconds")
    drill.add_argument("--workdir", default="",
                       help="journal + checkpoint root (default: a "
                            "fresh temp dir)")
    drill.add_argument("--timeout", type=float, default=300.0)
    drill.set_defaults(entry=_cmd_smb_drill)

    serving = commands.add_parser(
        "serve",
        help="parameter-serving read tier: SMB read replicas and the "
             "HTTP model gateway",
    )
    serving_sub = serving.add_subparsers(dest="serve_command", required=True)

    def _add_replica_args(target: argparse.ArgumentParser) -> None:
        target.add_argument("--connect", default="",
                            help="host:port of the primary SMB server")
        target.add_argument("--rendezvous", default="",
                            help="primary's endpoint.json (alternative "
                                 "to --connect)")
        target.add_argument("--segments", required=True,
                            help="comma-separated segment names to mirror "
                                 "(e.g. W_g)")
        target.add_argument("--tenant", default="default",
                            help="namespace the segments live in")
        target.add_argument("--ring-depth", type=int, default=8,
                            help="snapshot versions retained per segment "
                                 "for pinned reads")
        target.add_argument("--capacity-mb", type=float, default=1024.0)
        target.add_argument("--sync-timeout", type=float, default=30.0,
                            help="seconds to wait for the initial mirror")
        target.add_argument("--host", default="127.0.0.1")
        target.add_argument("--port", type=int, default=0)

    replica = serving_sub.add_parser(
        "replica",
        help="mirror segments from a primary and serve SMB reads "
             "(versioned, with a pinned-read snapshot ring)",
    )
    _add_replica_args(replica)
    replica.add_argument("--name", default="replica",
                         help="replica id (placement key in a fleet)")
    replica.set_defaults(entry=_cmd_serve_replica)

    gateway = serving_sub.add_parser(
        "gateway",
        help="HTTP/REST front end over an in-process replica fleet "
             "(GET /v1/models/<tenant>/<name>?version=N)",
    )
    _add_replica_args(gateway)
    gateway.add_argument("--replicas", type=int, default=2,
                         help="replica fleet size behind the gateway")
    gateway.set_defaults(entry=_cmd_serve_gateway)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="coordinated checkpoints: inspect/resume a checkpoint "
             "directory, force a server snapshot",
    )
    ckpt_sub = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    ckpt_inspect = ckpt_sub.add_parser(
        "inspect", help="summarize a checkpoint directory as JSON"
    )
    ckpt_inspect.add_argument("directory")
    ckpt_inspect.set_defaults(entry=_cmd_checkpoint_inspect)
    ckpt_save = ckpt_sub.add_parser(
        "save",
        help="ask a journaled SMB server to write a durable snapshot now",
    )
    ckpt_save.add_argument("--connect", default="",
                           help="host:port of the server")
    ckpt_save.add_argument("--rendezvous", default="",
                           help="endpoint.json written by a journaled "
                                "server (alternative to --connect)")
    ckpt_save.set_defaults(entry=_cmd_checkpoint_save)
    ckpt_resume = ckpt_sub.add_parser(
        "resume",
        help="rebuild a run from its checkpoint metadata and continue it",
    )
    ckpt_resume.add_argument("directory")
    ckpt_resume.add_argument("--iterations", type=int, default=0,
                             help="override the stored iteration target")
    ckpt_resume.add_argument("--connect", default="",
                             help="host:port of an SMB server to resume "
                                  "against (default: fresh in-process)")
    ckpt_resume.add_argument("--rendezvous", default="",
                             help="journaled server's endpoint.json, "
                                  "re-resolved on reconnects")
    ckpt_resume.add_argument("--grace", type=float, default=0.0,
                             help="server-down reconnect window, seconds")
    ckpt_resume.add_argument("--timeout", type=float, default=300.0)
    ckpt_resume.set_defaults(entry=_cmd_checkpoint_resume)

    bandwidth = commands.add_parser(
        "bandwidth", help="Fig. 7 bandwidth sweep against an SMB server"
    )
    bandwidth.add_argument(
        "--connect", default="",
        help="host:port of a running server (default: in-process)",
    )
    bandwidth.add_argument("--buffer-mb", type=float, default=2.0)
    bandwidth.add_argument("--operations", type=int, default=10)
    bandwidth.set_defaults(entry=_cmd_bandwidth)

    tele = commands.add_parser(
        "telemetry", help="inspect telemetry artifacts saved by a run"
    )
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    tele_report = tele_sub.add_parser(
        "report",
        help="summarize a saved metrics.json (phase histograms, SMB ops, "
             "perf-model cross-validation)",
    )
    tele_report.add_argument("metrics", help="path to a saved metrics.json")
    tele_report.set_defaults(entry=_cmd_telemetry_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.telemetry != "off":
        configure(args.telemetry)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
