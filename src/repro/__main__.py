"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``reproduce``   — regenerate the paper's tables/figures
  (``--analytic`` for the model-only ones, ``--full`` for full-length
  training).
* ``train``       — run one platform on the synthetic task.
* ``smb-server``  — start a standalone TCP Soft Memory Box server.
* ``smb chaos``   — replay a seeded fault-injection scenario against a
  small SEASGD job (retry/worker-loss drill; see
  ``docs/fault_tolerance.md``).
* ``bandwidth``   — run the Fig. 7 measurement against a server.
* ``telemetry``   — inspect telemetry artifacts saved by a run
  (``telemetry report <metrics.json>``).

Global flags (before the command): ``--log-level`` picks the logging
verbosity, ``--telemetry {off,metrics,trace}`` turns on the telemetry
subsystem for the whole process, and ``--telemetry-out DIR`` saves the
collected metrics (and trace, in trace mode) when the command finishes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .telemetry import LOG_LEVELS, MODES, configure, current, setup_logging


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments import runner

    print(
        runner.run_all(
            quick=not args.full, include_training=not args.analytic
        )
    )
    return 0


def _telemetry_meta(args: argparse.Namespace) -> dict:
    """Run context stored next to saved metrics for offline reporting."""
    return {
        "platform": args.platform,
        "model": args.model,
        "workers": args.workers,
        "group_size": args.group_size,
        "update_interval": args.update_interval,
    }


def _finish_telemetry(args: argparse.Namespace, meta: dict) -> None:
    """Print (and optionally save) what the current session collected."""
    tel = current()
    if not tel.enabled:
        return
    from .telemetry.report import report_from_session

    print()
    print(report_from_session(tel, meta))
    if args.telemetry_out:
        paths = tel.save(args.telemetry_out, meta)
        for kind, path in sorted(paths.items()):
            print(f"telemetry {kind} written to {path}")


def _cmd_train(args: argparse.Namespace) -> int:
    from .experiments.convergence import ConvergenceSetup, run_platform

    setup = ConvergenceSetup(
        model=args.model,
        epochs=args.epochs,
        train_per_class=args.samples_per_class,
        noise=args.noise,
        batch_size=args.batch_size,
        base_lr=args.lr,
        moving_rate=args.moving_rate,
        update_interval=args.update_interval,
    )
    result = run_platform(
        setup, args.platform, workers=args.workers,
        group_size=args.group_size,
    )
    print(f"platform:   {result.platform}")
    print(f"workers:    {result.num_workers}")
    print(f"final acc:  {result.final_accuracy:.3f}")
    print(f"final loss: {result.final_loss:.3f}")
    _finish_telemetry(args, _telemetry_meta(args))
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry.report import format_report, load

    try:
        payload = load(args.metrics)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_report(payload))
    return 0


def _cmd_smb_server(args: argparse.Namespace) -> int:
    from .smb import TcpSMBServer

    server = TcpSMBServer(
        host=args.host, port=args.port,
        capacity=int(args.capacity_mb * 1e6),
    ).start()
    print(f"SMB server listening on {server.address[0]}:{server.address[1]} "
          f"(capacity {args.capacity_mb:.0f} MB); Ctrl-C to stop")
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        server.stop()
        print("stopped")
    return 0


def _cmd_smb_chaos(args: argparse.Namespace) -> int:
    """Replay one seeded fault-injection scenario locally.

    Runs a small SEASGD job on a tiny synthetic task with the requested
    fault plan and retry policy, then reports per-worker outcomes and the
    fault/retry counters — the CLI face of the ``pytest -m chaos`` suite,
    for reproducing a scenario from its seed.
    """
    from .caffe import SolverConfig, SyntheticImageDataset
    from .caffe.netspec import NetSpec
    from .core import (
        DistributedTrainingManager,
        ShmCaffeConfig,
        TerminationCriterion,
    )
    from .smb import FaultPlan, RetryPolicy
    from .telemetry import session as telemetry_session

    def spec_factory() -> NetSpec:
        spec = NetSpec("chaos-drill")
        data = spec.input("data", (args.batch_size, 3, 8, 8))
        labels = spec.input("label", (args.batch_size,))
        top = spec.conv_relu("conv1", data, 6, kernel=3, pad=1)
        top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
        top = spec.pool("gp", top, method="ave", global_pool=True)
        logits = spec.fc("fc", top, 4)
        spec.softmax_loss("loss", logits, labels)
        spec.accuracy("acc", logits, labels)
        return spec

    dataset = SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40,
        test_per_class=8, noise=0.7, seed=args.seed,
    )
    plan = FaultPlan(
        seed=args.seed,
        error_rate=args.error_rate,
        delay_rate=args.delay_rate,
        delay_seconds=args.delay,
        disconnect_rate=args.disconnect_rate,
        kill_rank=args.kill_rank,
        kill_after=args.kill_after,
    )
    policy = RetryPolicy(
        max_attempts=args.retries + 1,
        base_backoff=args.backoff,
        seed=args.seed,
    )
    config = ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        max_iterations=args.iterations,
        termination=TerminationCriterion.AVERAGE_ITERATIONS,
    )
    print(f"chaos drill: {args.workers} workers x {args.iterations} iters, "
          f"seed {args.seed}")
    print(f"  plan:   error={plan.error_rate:.0%} delay={plan.delay_rate:.0%} "
          f"disconnect={plan.disconnect_rate:.0%} "
          f"kill_rank={plan.kill_rank} kill_after={plan.kill_after}")
    print(f"  policy: {policy.max_attempts} attempts, "
          f"base backoff {policy.base_backoff * 1e3:.1f} ms")
    with telemetry_session("metrics") as tel:
        manager = DistributedTrainingManager(
            spec_factory=spec_factory,
            config=config,
            dataset=dataset,
            batch_size=args.batch_size,
            num_workers=args.workers,
            seed=args.seed,
            telemetry=tel,
            retry_policy=policy,
            fault_plan=plan,
        )
        result = manager.run(timeout=args.timeout)
        snapshot = tel.registry.snapshot()

    def counter(name: str) -> int:
        entry = snapshot.get(name)
        return int(entry["value"]) if entry else 0

    print()
    for history in result.histories:
        status = "LOST" if history.failed else "ok"
        line = (f"  worker {history.rank}: {status:>4s}  "
                f"{history.completed_iterations:3d} iterations")
        if history.failed:
            line += f"  ({history.failure})"
        print(line)
    print()
    print(f"  injected faults: "
          + " ".join(f"{kind}={counter(f'smb/faults/{kind}')}"
                     for kind in ("error", "delay", "disconnect", "kill")))
    print(f"  client retries:  {counter('smb/client/retries')}")
    print(f"  workers lost:    {len(result.failed_ranks)} "
          f"{result.failed_ranks if result.failed_ranks else ''}")
    survivors = result.surviving_ranks
    if not survivors:
        print("  outcome: every worker died")
        return 1
    print(f"  outcome: {len(survivors)}/{args.workers} workers completed "
          f"training")
    return 0


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    from .perfmodel import measure_smb_bandwidth, modeled_bandwidth_gbs

    address = None
    if args.connect:
        host, _, port = args.connect.partition(":")
        address = (host, int(port))
    print(f"{'procs':>6s} {'modeled GB/s':>13s} {'measured GB/s':>14s}")
    for processes in (2, 4, 8, 16, 32):
        sample = measure_smb_bandwidth(
            processes, buffer_mb=args.buffer_mb,
            operations=args.operations, address=address,
        )
        print(
            f"{processes:6d} {modeled_bandwidth_gbs(processes):13.2f} "
            f"{sample.gbs:14.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--log-level", default="warning", choices=LOG_LEVELS,
        help="logging verbosity for the whole process",
    )
    parser.add_argument(
        "--telemetry", default="off", choices=MODES,
        help="record metrics, or metrics plus a Chrome trace",
    )
    parser.add_argument(
        "--telemetry-out", default="", metavar="DIR",
        help="directory to save metrics.json (and trace.json) into",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    reproduce.add_argument("--analytic", action="store_true",
                           help="model-only experiments (seconds)")
    reproduce.add_argument("--full", action="store_true",
                           help="full-length training experiments")
    reproduce.set_defaults(entry=_cmd_reproduce)

    train = commands.add_parser(
        "train", help="train one platform on the synthetic task"
    )
    train.add_argument("--platform", default="shmcaffe_a",
                       choices=["caffe", "caffe_mpi", "mpi_caffe",
                                "shmcaffe_a", "shmcaffe_h", "smb_asgd"])
    train.add_argument("--model", default="inception_v1",
                       choices=["inception_v1", "resnet_50",
                                "inception_resnet_v2", "vgg16"])
    train.add_argument("--workers", type=int, default=4)
    train.add_argument("--group-size", type=int, default=1)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--batch-size", type=int, default=10)
    train.add_argument("--samples-per-class", type=int, default=200)
    train.add_argument("--noise", type=float, default=0.9)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--moving-rate", type=float, default=0.2)
    train.add_argument("--update-interval", type=int, default=1)
    train.set_defaults(entry=_cmd_train)

    smb = commands.add_parser(
        "smb-server", help="run a standalone TCP Soft Memory Box server"
    )
    smb.add_argument("--host", default="127.0.0.1")
    smb.add_argument("--port", type=int, default=0)
    smb.add_argument("--capacity-mb", type=float, default=1024.0)
    smb.set_defaults(entry=_cmd_smb_server)

    smb_tools = commands.add_parser(
        "smb", help="SMB utilities (fault-injection replay)"
    )
    smb_sub = smb_tools.add_subparsers(dest="smb_command", required=True)
    chaos = smb_sub.add_parser(
        "chaos",
        help="replay a seeded fault-injection scenario against a small "
             "SEASGD job",
    )
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--iterations", type=int, default=6)
    chaos.add_argument("--batch-size", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for data, faults, and retry jitter")
    chaos.add_argument("--error-rate", type=float, default=0.05,
                       help="per-request injected transport-error rate")
    chaos.add_argument("--delay-rate", type=float, default=0.0)
    chaos.add_argument("--delay", type=float, default=0.005,
                       help="seconds per injected delay")
    chaos.add_argument("--disconnect-rate", type=float, default=0.0)
    chaos.add_argument("--kill-rank", type=int, default=None,
                       help="rank whose transport dies permanently")
    chaos.add_argument("--kill-after", type=int, default=15,
                       help="requests the killed rank may complete first")
    chaos.add_argument("--retries", type=int, default=5,
                       help="retry attempts after a transient failure")
    chaos.add_argument("--backoff", type=float, default=0.001,
                       help="base retry backoff, seconds")
    chaos.add_argument("--timeout", type=float, default=300.0,
                       help="overall drill deadline, seconds")
    chaos.set_defaults(entry=_cmd_smb_chaos)

    bandwidth = commands.add_parser(
        "bandwidth", help="Fig. 7 bandwidth sweep against an SMB server"
    )
    bandwidth.add_argument(
        "--connect", default="",
        help="host:port of a running server (default: in-process)",
    )
    bandwidth.add_argument("--buffer-mb", type=float, default=2.0)
    bandwidth.add_argument("--operations", type=int, default=10)
    bandwidth.set_defaults(entry=_cmd_bandwidth)

    tele = commands.add_parser(
        "telemetry", help="inspect telemetry artifacts saved by a run"
    )
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    tele_report = tele_sub.add_parser(
        "report",
        help="summarize a saved metrics.json (phase histograms, SMB ops, "
             "perf-model cross-validation)",
    )
    tele_report.add_argument("metrics", help="path to a saved metrics.json")
    tele_report.set_defaults(entry=_cmd_telemetry_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.telemetry != "off":
        configure(args.telemetry)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
