"""Elastic-membership drill: grow, drain and reclaim a live fleet.

The fault drills in :mod:`repro.experiments.recovery` exercise workers
*losing* things (their server, their process); this drill exercises the
membership layer (:mod:`repro.smb.membership`) changing the fleet on
purpose while a run is in flight:

1. a 2-worker SEASGD job starts with ``AVERAGE_ITERATIONS`` termination
   and an elastic control block sized to ``max_workers`` slots;
2. once the launch fleet has demonstrably progressed (``join_at``
   registry heartbeats), a third worker joins **through the registry** —
   job discovery, slot claim, warm start from ``W_g``;
3. once the joiner has progressed (``retire_after`` heartbeats), it is
   asked to retire; it drains out after a full iteration, releases its
   slot back to FREE and leaves the registry;
4. a fourth worker then joins and must **reclaim the retired slot** at a
   higher generation — the churn signature the control block's
   generation stamps exist to make detectable;
5. the run completes with every member (launch + joiners) folded into
   the rescaled AVERAGE termination decision.

Everything but thread timing derives from ``seed``; the assertions are
structural (who held which slot at which generation, who retired, did
the fleet terminate) and hold under any interleaving.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Any, Dict, List, Optional, Union

from ..caffe import SolverConfig, SyntheticImageDataset
from ..core import (
    DistributedTrainingManager,
    ElasticWorkerHandle,
    ShmCaffeConfig,
    TerminationCriterion,
    TrainingResult,
)
from ..telemetry import TelemetrySession
from ..telemetry import session as telemetry_session
from .recovery import drill_spec

PathLike = Union[str, Path]


@dataclass
class ElasticDrillReport:
    """What :func:`run_elastic_drill` observed."""

    result: TrainingResult
    #: The mid-run joiner (spawned at ``join_at``, later retired).
    joiner: Optional[ElasticWorkerHandle]
    #: The post-retire joiner that should reclaim the freed slot.
    replacement: Optional[ElasticWorkerHandle]
    #: Final membership epoch (counts every join/leave/expiry).
    final_epoch: int
    #: ``smb/membership/*`` counter values at the end of the run.
    membership_counters: Dict[str, int] = field(default_factory=dict)
    registry_dir: str = ""
    #: Driver-phase notes for the CLI report (what fired, in order).
    events: List[str] = field(default_factory=list)

    @property
    def joiner_retired(self) -> bool:
        """Did the mid-run joiner drain out via the retire path?"""
        return bool(
            self.joiner is not None
            and self.joiner.history is not None
            and self.joiner.history.retired
        )

    @property
    def slot_reclaimed(self) -> bool:
        """Did the replacement take the retired slot at a newer generation?"""
        return bool(
            self.joiner is not None
            and self.replacement is not None
            and self.replacement.slot == self.joiner.slot
            and self.replacement.generation is not None
            and self.joiner.generation is not None
            and self.replacement.generation > self.joiner.generation
        )

    @property
    def completed(self) -> bool:
        """Launch fleet finished, joiner retired, and its slot reclaimed."""
        return (
            not self.result.failed_ranks
            and self.joiner is not None
            and self.joiner.error is None
            and self.joiner_retired
            and self.replacement is not None
            and self.replacement.error is None
            and self.slot_reclaimed
        )


def run_elastic_drill(
    workdir: PathLike,
    *,
    num_workers: int = 2,
    max_workers: int = 4,
    iterations: int = 60,
    join_at: int = 5,
    retire_after: int = 3,
    seed: int = 0,
    batch_size: int = 4,
    timeout: float = 300.0,
    telemetry: Optional[TelemetrySession] = None,
) -> ElasticDrillReport:
    """Join a worker mid-run, retire one, reclaim its slot; see module doc.

    The drill is driven off **registry heartbeats** (one per member
    iteration), so each phase provably starts only after the previous
    fleet shape has trained: the joiner enters a moving run, the retire
    lands on a progressing member, the replacement reclaims a genuinely
    freed slot.
    """
    if join_at < 1 or retire_after < 1:
        raise ValueError("join_at and retire_after must be >= 1")
    workdir = Path(workdir)
    registry_dir = workdir / "registry"
    config = ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        update_interval=2,
        max_iterations=iterations,
        termination=TerminationCriterion.AVERAGE_ITERATIONS,
    )
    dataset = SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=seed,
    )
    if telemetry is not None:
        session_ctx: Any = contextlib.nullcontext(telemetry)
    else:
        session_ctx = telemetry_session("metrics")
    events: List[str] = []
    out: Dict[str, ElasticWorkerHandle] = {}
    with session_ctx as tel:
        manager = DistributedTrainingManager(
            spec_factory=lambda: drill_spec(batch_size),
            config=config,
            dataset=dataset,
            batch_size=batch_size,
            num_workers=num_workers,
            seed=seed,
            telemetry=tel,
            registry_dir=str(registry_dir),
            elastic=True,
            max_workers=max_workers,
        )
        registry = manager.registry
        assert registry is not None

        def _beats(member_id: str) -> Optional[int]:
            record = registry.read().members.get(member_id)
            return None if record is None else record.heartbeats

        def _wait_beats(
            member_id: str,
            target: int,
            deadline: float,
            handle: Optional[ElasticWorkerHandle] = None,
        ) -> bool:
            """True once the member has ``target`` heartbeats.

            False when it finished (left the registry / its thread
            returned) before getting there — the run ended under the
            driver.  A spawned member that has not *joined yet* is
            waited for, not treated as gone.
            """
            while monotonic() < deadline:
                beats = _beats(member_id)
                if beats is not None and beats >= target:
                    return True
                if handle is not None:
                    if handle.join(0.0):
                        return False
                elif beats is None:
                    # A launch member is registered before run() opens
                    # the spawn gate; absence means it already left.
                    return False
                sleep(0.005)
            return False

        def _drive() -> None:
            deadline = monotonic() + timeout
            # The spawn gate opens only after every launch member holds
            # its slot and registry record, so "rank0 absent" below can
            # only mean it already left.
            if not manager._job_ready.wait(timeout):
                events.append("job was never published")
                return
            if not _wait_beats("rank0", join_at, deadline):
                events.append("launch fleet finished before the join fired")
                return
            joiner = manager.spawn_worker(timeout=timeout)
            out["joiner"] = joiner
            events.append(
                f"{joiner.member_id} joined after rank0 reached "
                f"{join_at} heartbeat(s)"
            )
            if not _wait_beats(
                joiner.member_id, retire_after, deadline, handle=joiner
            ):
                events.append(
                    f"{joiner.member_id} finished before the retire fired"
                )
                return
            manager.retire_worker(joiner.member_id)
            events.append(
                f"retire requested for {joiner.member_id} after "
                f"{retire_after} heartbeat(s)"
            )
            if not joiner.join(max(deadline - monotonic(), 1.0)):
                events.append(f"{joiner.member_id} failed to drain in time")
                return
            events.append(
                f"{joiner.member_id} drained (slot {joiner.slot} freed)"
            )
            replacement = manager.spawn_worker(timeout=timeout)
            out["replacement"] = replacement
            events.append(f"{replacement.member_id} joined to reclaim")

        driver = threading.Thread(
            target=_drive, name="elastic-driver", daemon=True
        )
        driver.start()
        result = manager.run(timeout=timeout)
        driver.join(timeout=timeout)

        counters: Dict[str, int] = {}
        if tel.enabled:
            for name in tel.registry.names():
                if name.startswith("smb/membership/") or name.startswith(
                    "autoscale/decisions/"
                ):
                    metric = tel.registry.get(name)
                    value = getattr(metric, "value", None)
                    if value is not None:
                        counters[name] = int(value)
        final_epoch = registry.read().epoch

    return ElasticDrillReport(
        result=result,
        joiner=out.get("joiner"),
        replacement=out.get("replacement"),
        final_epoch=final_epoch,
        membership_counters=counters,
        registry_dir=str(registry_dir),
        events=events,
    )
