"""Table IV: parameter size and computation time of the four CNN models.

Two sources are compared per model: the paper-derived hardware profile
(:data:`repro.perfmodel.models.PAPER_MODELS`) and the parameter count our
own full-scale model builders produce under allocation-free shape
inference — a structural cross-check that the builders are faithful.
"""

from __future__ import annotations

from ..caffe import models as model_builders
from ..caffe.netspec import infer
from ..perfmodel.models import PAPER_MODELS
from .report import ExperimentResult


def run() -> ExperimentResult:
    """Regenerate Table IV with a built-vs-paper size comparison."""
    result = ExperimentResult(
        experiment="table4",
        title="CNN model parameter sizes and single-GPU compute times",
    )
    for name, profile in PAPER_MODELS.items():
        spec = model_builders.full_spec(
            name,
            batch_size=1,
            image_size=profile.image_size,
        )
        inference = infer(spec)
        built_mb = inference.param_nbytes / 1e6
        result.rows.append(
            {
                "model": name,
                "image": profile.image_size,
                "paper_param_mb": profile.param_mb,
                "built_param_mb": round(built_mb, 1),
                "size_error_pct": round(
                    (built_mb - profile.param_mb) / profile.param_mb * 100, 1
                ),
                "compute_ms": profile.compute_ms,
                "built_params_m": round(inference.param_count / 1e6, 2),
            }
        )
    result.notes.append(
        "compute_ms is the paper-testbed fwd+bwd time for a 60-image "
        "minibatch on one Titan X Pascal (an input to the performance "
        "model, not measured here)"
    )
    return result
