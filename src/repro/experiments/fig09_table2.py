"""Fig. 9 / Table II: Inception-v1 training time (15 epochs) & scalability.

The headline result: ShmCaffe trains 10.1x faster than Caffe and 2.8x
faster than Caffe-MPI at 16 GPUs.  Rows come from the calibrated
per-iteration model applied to the 15-epoch iteration counts.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..perfmodel.models import model_profile
from ..perfmodel.training_time import training_hours, training_time
from .report import ExperimentResult

#: Platforms in Table II order.
PLATFORMS: Tuple[str, ...] = ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe")

#: GPU counts of Table II.
GPU_COUNTS: Tuple[int, ...] = (1, 8, 16)

#: Reference values stated by the paper.
PAPER_CAFFE_1GPU = "22:59"
PAPER_SPEEDUP_VS_CAFFE = 10.1
PAPER_SPEEDUP_VS_CAFFE_MPI = 2.8
PAPER_CAFFE_SCALABILITY = {1: 1.0, 8: 2.7, 16: 2.3}


def run(
    platforms: Sequence[str] = PLATFORMS,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    epochs: int = 15,
) -> ExperimentResult:
    """Regenerate Table II (and the Fig. 9 bar heights)."""
    model = model_profile("inception_v1")
    result = ExperimentResult(
        experiment="fig9/table2",
        title="Inception-v1 training time (15 epochs) and scalability",
    )
    for platform in platforms:
        row: dict = {"platform": platform}
        for n in gpu_counts:
            cell = training_time(platform, model, n, epochs=epochs)
            row[f"time@{n}"] = cell.hours_minutes
            row[f"scal@{n}"] = round(cell.scalability, 1)
        result.rows.append(row)

    shm16 = training_hours("shmcaffe", model, 16, epochs=epochs)
    vs_caffe = training_hours("caffe", model, 1, epochs=epochs) / shm16
    vs_caffe_mpi = training_hours("caffe_mpi", model, 16, epochs=epochs) / shm16
    result.notes.append(
        f"ShmCaffe@16 is {vs_caffe:.1f}x faster than Caffe "
        f"(paper: {PAPER_SPEEDUP_VS_CAFFE}x) and {vs_caffe_mpi:.1f}x faster "
        f"than Caffe-MPI (paper: {PAPER_SPEEDUP_VS_CAFFE_MPI}x)"
    )
    result.notes.append(
        f"Caffe 1-GPU time target: {PAPER_CAFFE_1GPU}; "
        f"Caffe scalability targets {PAPER_CAFFE_SCALABILITY}"
    )
    return result
