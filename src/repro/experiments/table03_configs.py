"""Table III: hardware configurations of the hybrid experiments.

The paper writes hybrid shapes as ``N (S<s> x A<g>)``: ``N`` total GPUs in
``g`` asynchronous groups of ``s`` synchronous GPUs each.  ``4 (S4)`` —
one all-synchronous group — is the BVLC Caffe comparison point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .report import ExperimentResult


@dataclass(frozen=True)
class HybridConfig:
    """One (synchronous width, asynchronous group count) configuration."""

    workers: int
    group_size: int

    def __post_init__(self) -> None:
        if self.workers < 1 or self.group_size < 1:
            raise ValueError("workers and group_size must be >= 1")
        if self.workers % self.group_size != 0:
            raise ValueError(
                f"group_size {self.group_size} must divide workers "
                f"{self.workers}"
            )

    @property
    def groups(self) -> int:
        """Number of asynchronous SEASGD participants."""
        return self.workers // self.group_size

    @property
    def label(self) -> str:
        """The paper's ``N (S# x A#)`` notation."""
        if self.groups == 1:
            return f"{self.workers} (S{self.group_size})"
        return f"{self.workers} (S{self.group_size} x A{self.groups})"


#: The configurations of Table III / Fig. 14 (Tables VI columns).
TABLE3_CONFIGS: Tuple[HybridConfig, ...] = (
    HybridConfig(4, 4),    # 4 (S4): single-node synchronous reference
    HybridConfig(4, 2),    # 4 (S2 x A2)
    HybridConfig(8, 2),    # 8 (S2 x A4)
    HybridConfig(8, 4),    # 8 (S4 x A2)
    HybridConfig(16, 4),   # 16 (S4 x A4)
)


def run() -> ExperimentResult:
    """Enumerate Table III."""
    result = ExperimentResult(
        experiment="table3",
        title="Hybrid (HSGD) hardware configurations",
    )
    for config in TABLE3_CONFIGS:
        result.rows.append(
            {
                "label": config.label,
                "total_gpus": config.workers,
                "sync_group_size": config.group_size,
                "async_groups": config.groups,
            }
        )
    return result
