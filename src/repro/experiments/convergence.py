"""Shared setup for the convergence experiments (Figs. 8 and 11).

The paper trains Inception-v1 on ImageNet for 15 epochs (base_lr 0.1,
gamma 0.1, momentum 0.9, step every 4 epochs, minibatch 60/worker,
moving_rate 0.2, update_interval 1).  The reproduction keeps every ratio
of that recipe — same optimiser, same step-every-4-epochs schedule, same
SEASGD hyper-parameters — on the scaled Inception-v1 and the synthetic
dataset, with the learning rate retuned for the miniature model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..caffe.data import SyntheticImageDataset
from ..caffe.models import scaled_spec
from ..caffe.netspec import NetSpec
from ..caffe.solver import SolverConfig
from ..platforms import (
    PlatformResult,
    bvlc_caffe,
    caffe_mpi,
    iterations_per_epoch,
    mpi_caffe,
    shmcaffe,
)


@dataclass
class ConvergenceSetup:
    """One convergence experiment's knobs, paper-recipe shaped."""

    model: str = "inception_v1"
    num_classes: int = 10
    image_size: int = 12
    train_per_class: int = 100
    test_per_class: int = 20
    noise: float = 1.0
    batch_size: int = 10
    epochs: int = 15
    base_lr: float = 0.05
    gamma: float = 0.1
    momentum: float = 0.9
    lr_step_epochs: int = 4
    moving_rate: float = 0.2
    update_interval: int = 1
    seed: int = 7
    extra: Dict[str, object] = field(default_factory=dict)

    def dataset(self) -> SyntheticImageDataset:
        """The (deterministic) synthetic stand-in for ImageNet."""
        return SyntheticImageDataset(
            num_classes=self.num_classes,
            image_size=self.image_size,
            train_per_class=self.train_per_class,
            test_per_class=self.test_per_class,
            noise=self.noise,
            seed=self.seed,
        )

    def spec_factory(self) -> Callable[[], NetSpec]:
        """Replica spec builder for the chosen model."""
        model = self.model
        batch = self.batch_size
        image = self.image_size
        classes = self.num_classes

        def build() -> NetSpec:
            return scaled_spec(
                model, batch_size=batch, image_size=image,
                num_classes=classes,
            )

        return build

    def iterations(self, dataset: SyntheticImageDataset, workers: int) -> int:
        """Per-worker iterations covering ``epochs`` dataset passes."""
        return self.epochs * iterations_per_epoch(
            dataset, self.batch_size, workers
        )

    def solver_config(
        self, dataset: SyntheticImageDataset, workers: int
    ) -> SolverConfig:
        """Paper recipe: step LR decay every ``lr_step_epochs`` epochs."""
        step = self.lr_step_epochs * iterations_per_epoch(
            dataset, self.batch_size, workers
        )
        return SolverConfig(
            base_lr=self.base_lr,
            momentum=self.momentum,
            lr_policy="step",
            gamma=self.gamma,
            stepsize=max(step, 1),
            max_iter=max(self.iterations(dataset, workers), 1),
        )


def run_platform(
    setup: ConvergenceSetup,
    platform: str,
    workers: int,
    group_size: int = 1,
    eval_every: Optional[int] = None,
    elastic: bool = False,
    max_workers: Optional[int] = None,
    registry_dir: Optional[str] = None,
    autoscale: bool = False,
) -> PlatformResult:
    """Train one platform under a shared setup and return its history.

    The elastic options (``elastic``/``max_workers``/``registry_dir``/
    ``autoscale``) only apply to the direct-participant ShmCaffe variants
    (``shmcaffe_a``, ``smb_asgd``); see
    :func:`repro.platforms.shmcaffe.train`.
    """
    dataset = setup.dataset()
    spec_factory = setup.spec_factory()
    iterations = setup.iterations(dataset, workers)
    solver_config = setup.solver_config(dataset, workers)
    if eval_every is None:
        eval_every = max(1, iterations // 5)

    common = dict(
        spec_factory=spec_factory,
        dataset=dataset,
        solver_config=solver_config,
        batch_size=setup.batch_size,
        iterations=iterations,
        eval_every=eval_every,
        seed=setup.seed,
    )
    if platform == "caffe":
        if workers == 1:
            return bvlc_caffe.train_standalone(**common)
        return bvlc_caffe.train_multi_gpu(num_workers=workers, **common)
    if platform == "caffe_mpi":
        return caffe_mpi.train(num_workers=workers, **common)
    if platform == "mpi_caffe":
        return mpi_caffe.train(num_workers=workers, **common)
    if elastic and platform not in ("shmcaffe", "shmcaffe_a"):
        raise ValueError(
            f"elastic membership is only supported on shmcaffe_a, "
            f"not {platform!r}"
        )
    if platform in ("shmcaffe", "shmcaffe_a", "shmcaffe_h", "smb_asgd"):
        if platform == "shmcaffe_a":
            group_size = 1
        if platform == "smb_asgd":
            # Downpour over the SMB accumulate primitive: a direct
            # (group-less) participant per worker.
            group_size = 1
        return shmcaffe.train(
            num_workers=workers,
            group_size=group_size,
            moving_rate=setup.moving_rate,
            update_interval=setup.update_interval,
            algorithm="smb_asgd" if platform == "smb_asgd" else "seasgd",
            elastic=elastic,
            max_workers=max_workers,
            registry_dir=registry_dir,
            autoscale=autoscale,
            **common,
        )
    raise ValueError(f"unknown platform {platform!r}")
