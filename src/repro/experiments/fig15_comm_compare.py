"""Fig. 15: communication time, ShmCaffe-A vs ShmCaffe-H across models.

The paper's takeaway: at 8 GPUs the small models barely differ between A
and H, but as parameter size grows and the job scales out to 16 GPUs,
hybrid grouping wins decisively on communication — and therefore on total
iteration time for every model at 16 GPUs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..perfmodel.iteration import shmcaffe_a, shmcaffe_h
from ..perfmodel.models import PAPER_MODELS
from .report import ExperimentResult

GPU_COUNTS: Tuple[int, ...] = (8, 16)
HYBRID_GROUP_SIZE = 4


def run(gpu_counts: Sequence[int] = GPU_COUNTS) -> ExperimentResult:
    """Regenerate the Fig. 15 A-vs-H communication comparison."""
    result = ExperimentResult(
        experiment="fig15",
        title="Communication time per iteration: ShmCaffe-A vs ShmCaffe-H",
    )
    for name, profile in PAPER_MODELS.items():
        for workers in gpu_counts:
            async_bd = shmcaffe_a(profile, workers)
            hybrid_bd = shmcaffe_h(profile, workers, HYBRID_GROUP_SIZE)
            result.rows.append(
                {
                    "model": name,
                    "gpus": workers,
                    "A_comm_ms": round(async_bd.comm_ms, 1),
                    "H_comm_ms": round(hybrid_bd.comm_ms, 1),
                    "H_vs_A": round(
                        hybrid_bd.comm_ms / max(async_bd.comm_ms, 1e-9), 2
                    ),
                    "A_iter_ms": round(async_bd.iteration_ms, 1),
                    "H_iter_ms": round(hybrid_bd.iteration_ms, 1),
                }
            )
    result.notes.append(
        "paper: H matches or beats A on communication for the larger "
        "models, and beats A on total iteration time for every model at "
        "16 GPUs"
    )
    return result
