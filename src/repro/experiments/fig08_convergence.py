"""Fig. 8: accuracy and loss of the four platforms (Inception-v1).

The paper trains Inception-v1 for 15 epochs on each platform at 8 and 16
GPUs and plots top-5 accuracy and loss against epochs: ShmCaffe "reliably
converges whereas it is a little bit lower than the Caffe" and edges out
Caffe-MPI / MPICaffe at 16 GPUs.

This is a *real training* experiment on the scaled Inception-v1 and the
synthetic dataset (same optimiser recipe, retuned LR) — not the analytic
model; expect a couple of minutes per full run.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .convergence import ConvergenceSetup, run_platform
from .report import ExperimentResult

PLATFORMS: Tuple[str, ...] = ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe")
GPU_COUNTS: Tuple[int, ...] = (8,)

#: Group size of the ShmCaffe-H runs (one node's worth of GPUs).
HYBRID_GROUP_SIZE = 4


def default_setup(quick: bool = False) -> ConvergenceSetup:
    """The tuned Fig. 8 recipe (quick mode shrinks the epoch budget).

    Quick mode still gives the synchronous baselines ~200 global updates;
    fewer than that and SSGD at effective batch 80 has not converged yet,
    which would confound the platform comparison.
    """
    return ConvergenceSetup(
        epochs=8 if quick else 15,
        train_per_class=200 if quick else 300,
        noise=0.9,
        base_lr=0.05,
    )


def run(
    setup: ConvergenceSetup = None,
    platforms: Sequence[str] = PLATFORMS,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    include_single_gpu: bool = True,
    quick: bool = False,
) -> ExperimentResult:
    """Train all platforms and tabulate final accuracy/loss plus curves."""
    if setup is None:
        setup = default_setup(quick)
    result = ExperimentResult(
        experiment="fig8",
        title="Test accuracy and loss by platform (scaled Inception-v1)",
    )
    runs: Dict[Tuple[str, int], object] = {}
    if include_single_gpu:
        runs[("caffe", 1)] = run_platform(setup, "caffe", workers=1)
    for workers in gpu_counts:
        for platform in platforms:
            group = HYBRID_GROUP_SIZE if platform == "shmcaffe" else 1
            group = min(group, workers)
            runs[(platform, workers)] = run_platform(
                setup, platform, workers=workers, group_size=group
            )
    for (platform, workers), outcome in runs.items():
        curve = " ".join(
            f"{iteration}:{accuracy:.2f}"
            for iteration, accuracy in outcome.accuracy_curve()
        )
        result.rows.append(
            {
                "platform": platform,
                "gpus": workers,
                "final_acc": round(outcome.final_accuracy, 3),
                "final_loss": round(outcome.final_loss, 3),
                "accuracy_curve": curve,
            }
        )
    result.notes.append(
        "paper shape: every platform converges; ShmCaffe lands slightly "
        "below 1-GPU Caffe and at or above Caffe-MPI/MPICaffe"
    )
    return result
