"""Experiment harness: one module per table and figure of the paper.

| Module | Reproduces |
|---|---|
| :mod:`.fig07_bandwidth` | Fig. 7 — SMB server R/W bandwidth |
| :mod:`.fig08_convergence` | Fig. 8 — 4-platform accuracy/loss |
| :mod:`.fig09_table2` | Fig. 9 / Table II — training time & scalability |
| :mod:`.fig10_comp_comm` | Fig. 10 — per-iteration comp/comm |
| :mod:`.fig11_a_vs_h` | Fig. 11 — ShmCaffe-A vs -H convergence |
| :mod:`.table03_configs` | Table III — hybrid configurations |
| :mod:`.table04_models` | Table IV — model sizes & compute times |
| :mod:`.fig12_table5` | Figs. 12-13 / Table V — ShmCaffe-A sweep |
| :mod:`.fig14_table6` | Fig. 14 / Table VI — ShmCaffe-H sweep |
| :mod:`.fig15_comm_compare` | Fig. 15 — A vs H communication |
"""

from . import (
    convergence,
    fig07_bandwidth,
    fig08_convergence,
    fig09_table2,
    fig10_comp_comm,
    fig11_a_vs_h,
    fig12_table5,
    fig14_table6,
    fig15_comm_compare,
    runner,
    table03_configs,
    table04_models,
)
from .report import ExperimentResult

__all__ = [
    "ExperimentResult",
    "convergence",
    "fig07_bandwidth",
    "fig08_convergence",
    "fig09_table2",
    "fig10_comp_comm",
    "fig11_a_vs_h",
    "fig12_table5",
    "fig14_table6",
    "fig15_comm_compare",
    "runner",
    "table03_configs",
    "table04_models",
]
