"""Row/series formatting shared by every experiment module.

Each experiment returns an :class:`ExperimentResult`: an ordered list of
row dicts plus the paper's reference values where the text states them, so
the benchmark harness can print paper-vs-measured tables exactly like
EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format(self, columns: Optional[Sequence[str]] = None) -> str:
        """Render the rows as an aligned text table."""
        if not self.rows:
            return f"== {self.experiment}: {self.title} ==\n(no rows)"
        if columns is None:
            columns = list(self.rows[0].keys())
        header = [str(col) for col in columns]
        body = [
            [_cell(row.get(col, "")) for col in columns] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body))
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header)))
        )
        lines.append("  ".join("-" * width for width in widths))
        for line in body:
            lines.append(
                "  ".join(line[i].ljust(widths[i]) for i in range(len(line)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column across rows."""
        return [row.get(name) for row in self.rows]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def ratio_or_nan(numerator: float, denominator: float) -> float:
    """Safe ratio for table cells."""
    if denominator == 0:
        return float("nan")
    return numerator / denominator
