"""Fig. 11: ShmCaffe-A vs ShmCaffe-H accuracy/loss as workers scale.

The paper's finding: with SEASGD alone (ShmCaffe-A) accuracy slips as the
worker count grows — 79.2% at 16 GPUs, 5.7 points under the 1-GPU run —
while the hybrid (ShmCaffe-H) holds within 0.9-2.2 points of 1-GPU Caffe
(84.0 / 82.7 / 83.5% at 4 / 8 / 16 GPUs).  moving_rate 0.2,
update_interval 1, hybrid groups per Table III.

Real training on the scaled model; the reproduced *shape* is the async
degradation with scale and hybrid's resistance to it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .convergence import ConvergenceSetup, run_platform
from .report import ExperimentResult

WORKER_COUNTS: Tuple[int, ...] = (4, 8, 16)

#: Hybrid group sizes per worker count, following Table III / Sec. IV-D
#: ("with 4 GPUs ... 2 nodes where each node has 2 GPUs").
HYBRID_GROUPS: Dict[int, int] = {4: 2, 8: 4, 16: 4}

#: Paper accuracies for reference.
PAPER_ACC = {
    ("caffe", 1): 84.9,  # implied by "5.7% lower" at A@16 = 79.2
    ("shmcaffe_a", 16): 79.2,
    ("shmcaffe_h", 4): 84.0,
    ("shmcaffe_h", 8): 82.7,
    ("shmcaffe_h", 16): 83.5,
}


def default_setup(quick: bool = False) -> ConvergenceSetup:
    """The tuned Fig. 11 recipe.

    Quick mode keeps enough per-worker iterations at 16 workers (~150)
    that the async-degradation signal is driven by staleness rather than
    by an unconverged run.
    """
    return ConvergenceSetup(
        epochs=10 if quick else 15,
        train_per_class=240 if quick else 300,
        noise=1.1,
        base_lr=0.05,
    )


def run(
    setup: ConvergenceSetup = None,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    quick: bool = False,
) -> ExperimentResult:
    """Train ShmCaffe-A and -H across worker counts plus the 1-GPU anchor."""
    if setup is None:
        setup = default_setup(quick)
    result = ExperimentResult(
        experiment="fig11",
        title="ShmCaffe-A vs ShmCaffe-H accuracy/loss by GPU count",
    )
    anchor = run_platform(setup, "caffe", workers=1)
    result.rows.append(
        {
            "variant": "caffe",
            "gpus": 1,
            "final_acc": round(anchor.final_accuracy, 3),
            "final_loss": round(anchor.final_loss, 3),
            "paper_acc_pct": PAPER_ACC.get(("caffe", 1), "-"),
        }
    )
    for workers in worker_counts:
        for variant in ("shmcaffe_a", "shmcaffe_h"):
            group = HYBRID_GROUPS[workers] if variant == "shmcaffe_h" else 1
            outcome = run_platform(
                setup, variant, workers=workers, group_size=group
            )
            result.rows.append(
                {
                    "variant": variant,
                    "gpus": workers,
                    "final_acc": round(outcome.final_accuracy, 3),
                    "final_loss": round(outcome.final_loss, 3),
                    "paper_acc_pct": PAPER_ACC.get((variant, workers), "-"),
                }
            )
    result.notes.append(
        "paper shape: A degrades as workers grow (79.2% at 16, -5.7 pts); "
        "H stays within ~2 pts of the 1-GPU anchor at every scale"
    )
    return result
