"""Losing the parameter box: recovery drills and resumable synthetic jobs.

Two fault-tolerance layers protect a ShmCaffe run (see
``docs/fault_tolerance.md``):

* the SMB **journal** (:mod:`repro.smb.journal`) makes the parameter
  server itself durable — a killed server restarts from its snapshot +
  op journal and clients re-attach through the rendezvous file;
* **coordinated checkpoints** (:mod:`repro.core.checkpoint`) make the
  job durable — every rank's solver state plus ``W_g`` at a shared
  iteration boundary.

This module exercises them together and gives the CLI a job it can
rebuild from nothing but a checkpoint directory:

* :func:`job_metadata` / :func:`build_manager` — a synthetic SEASGD job
  described entirely by a JSON-serialisable dict, stored in every
  checkpoint manifest so ``repro checkpoint resume <dir>`` can continue
  a run without the original command line;
* :func:`run_server_loss_drill` — the seeded chaos drill: train against
  a journaled TCP server, ``kill -9`` the server mid-run, restart it
  from the journal on a fresh port, and verify every worker re-attaches
  within its grace window and the run completes.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, sleep
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..caffe import SolverConfig, SyntheticImageDataset
from ..caffe.netspec import NetSpec
from ..core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
    TrainingResult,
    latest_checkpoint,
)
from ..smb import RetryPolicy, TcpSMBServer
from ..smb.journal import RENDEZVOUS_NAME
from ..telemetry import TelemetrySession
from ..telemetry import session as telemetry_session

PathLike = Union[str, Path]

#: Marker stored in checkpoint metadata so ``repro checkpoint resume``
#: knows the manifest describes a job this module can rebuild.
JOB_KIND = "synthetic-seasgd"


def drill_spec(batch_size: int) -> NetSpec:
    """The tiny conv net every recovery/chaos drill trains."""
    spec = NetSpec("recovery-drill")
    data = spec.input("data", (batch_size, 3, 8, 8))
    labels = spec.input("label", (batch_size,))
    top = spec.conv_relu("conv1", data, 6, kernel=3, pad=1)
    top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
    top = spec.pool("gp", top, method="ave", global_pool=True)
    logits = spec.fc("fc", top, 4)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("acc", logits, labels)
    return spec


#: Net specs a metadata-described job may name.  Keyed by the string
#: stored under ``metadata["spec"]``; each builder takes the batch size.
SPEC_BUILDERS: Dict[str, Callable[[int], NetSpec]] = {
    "drill-tiny": drill_spec,
}


def job_metadata(
    *,
    num_workers: int,
    max_iterations: int,
    checkpoint_every: int,
    batch_size: int = 4,
    seed: int = 0,
    spec: str = "drill-tiny",
    base_lr: float = 0.05,
    momentum: float = 0.9,
    moving_rate: float = 0.2,
    update_interval: int = 1,
    overlap_updates: bool = False,
    termination: TerminationCriterion = TerminationCriterion.MASTER_STOP,
    dataset: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A JSON-serialisable description of one synthetic SEASGD job.

    Stored verbatim in every checkpoint manifest; :func:`build_manager`
    turns it back into a :class:`DistributedTrainingManager`.
    """
    if spec not in SPEC_BUILDERS:
        raise ValueError(f"unknown spec {spec!r}; have {sorted(SPEC_BUILDERS)}")
    return {
        "job": JOB_KIND,
        "spec": spec,
        "num_workers": num_workers,
        "max_iterations": max_iterations,
        "checkpoint_every": checkpoint_every,
        "batch_size": batch_size,
        "seed": seed,
        "base_lr": base_lr,
        "momentum": momentum,
        "moving_rate": moving_rate,
        "update_interval": update_interval,
        "overlap_updates": overlap_updates,
        "termination": termination.value,
        "dataset": dict(dataset) if dataset is not None else {
            "num_classes": 4,
            "image_size": 8,
            "train_per_class": 40,
            "test_per_class": 8,
            "noise": 0.7,
            "seed": seed,
        },
    }


def build_manager(
    metadata: Dict[str, Any],
    *,
    resume: Optional[PathLike] = None,
    checkpoint_dir: Optional[PathLike] = None,
    max_iterations: Optional[int] = None,
    server_address: Optional[Tuple[str, int]] = None,
    rendezvous: Optional[str] = None,
    server_down_grace: float = 0.0,
    retry_policy: Optional[RetryPolicy] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> DistributedTrainingManager:
    """Rebuild the job a :func:`job_metadata` dict describes.

    Args:
        metadata: The manifest metadata (must carry ``job == JOB_KIND``).
        resume: Checkpoint directory to continue from.
        checkpoint_dir: Where the rebuilt run keeps checkpointing (a
            resumed run defaults to its own ``resume`` directory so the
            next crash is covered too).
        max_iterations: Override the stored target, e.g. to extend a run.
        server_address / rendezvous / server_down_grace / retry_policy /
            telemetry: Forwarded to the manager unchanged.
    """
    kind = metadata.get("job")
    if kind != JOB_KIND:
        raise ValueError(
            f"checkpoint metadata describes job {kind!r}, not {JOB_KIND!r} "
            "— it was not taken by a run this tool knows how to rebuild"
        )
    spec_name = metadata["spec"]
    if spec_name not in SPEC_BUILDERS:
        raise ValueError(f"metadata names unknown net spec {spec_name!r}")
    batch_size = int(metadata["batch_size"])
    builder = SPEC_BUILDERS[spec_name]
    config = ShmCaffeConfig(
        solver=SolverConfig(
            base_lr=float(metadata["base_lr"]),
            momentum=float(metadata["momentum"]),
        ),
        moving_rate=float(metadata["moving_rate"]),
        update_interval=int(metadata["update_interval"]),
        max_iterations=(
            int(max_iterations) if max_iterations is not None
            else int(metadata["max_iterations"])
        ),
        termination=TerminationCriterion(metadata["termination"]),
        overlap_updates=bool(metadata["overlap_updates"]),
    )
    dataset = SyntheticImageDataset(**metadata["dataset"])
    if checkpoint_dir is None and resume is not None:
        checkpoint_dir = resume
    return DistributedTrainingManager(
        spec_factory=lambda: builder(batch_size),
        config=config,
        dataset=dataset,
        batch_size=batch_size,
        num_workers=int(metadata["num_workers"]),
        seed=int(metadata["seed"]),
        telemetry=telemetry,
        retry_policy=retry_policy,
        server_address=server_address,
        rendezvous=rendezvous,
        server_down_grace=server_down_grace,
        checkpoint_dir=(
            None if checkpoint_dir is None else str(checkpoint_dir)
        ),
        checkpoint_every=(
            int(metadata["checkpoint_every"]) if checkpoint_dir else 0
        ),
        checkpoint_metadata=metadata,
        resume=None if resume is None else str(resume),
    )


@dataclass
class DrillReport:
    """What :func:`run_server_loss_drill` observed."""

    result: TrainingResult
    kill_iteration: int
    outage: float
    old_address: Tuple[str, int]
    new_address: Tuple[str, int]
    recovered_epoch: int
    reattachments: int
    recoveries: int
    journal_dir: str
    checkpoint_dir: str

    @property
    def completed(self) -> bool:
        """Did every worker survive the server loss and finish?"""
        return not self.result.failed_ranks


def run_server_loss_drill(
    workdir: PathLike,
    *,
    num_workers: int = 2,
    iterations: int = 8,
    checkpoint_every: int = 2,
    kill_at_iteration: int = 4,
    outage: float = 0.3,
    grace: float = 30.0,
    seed: int = 0,
    batch_size: int = 4,
    snapshot_interval: float = 30.0,
    timeout: float = 300.0,
    telemetry: Optional[TelemetrySession] = None,
) -> DrillReport:
    """Kill the parameter box mid-run, restart it from its journal.

    Sequence: a journaled :class:`TcpSMBServer` starts and the job
    trains against it over TCP with a rendezvous file and a
    ``server_down_grace`` window.  A watcher thread waits until the
    fleet has sealed a checkpoint at ``kill_at_iteration`` (so the kill
    provably lands mid-run, with durable state behind it), then
    ``kill()``-s the server — no clean-shutdown snapshot; recovery must
    come from the journal.  After ``outage`` seconds a replacement
    server recovers from the same directory on a fresh ephemeral port
    and republishes the rendezvous file.  Workers re-attach
    transparently and the run completes.

    The drill is deterministic in everything but thread timing: data,
    weights and retry jitter all derive from ``seed``; only *where*
    within an iteration the kill lands varies, which is exactly the
    nondeterminism a real server loss has.
    """
    workdir = Path(workdir)
    journal_dir = workdir / "journal"
    checkpoint_dir = workdir / "checkpoints"
    metadata = job_metadata(
        num_workers=num_workers,
        max_iterations=iterations,
        checkpoint_every=checkpoint_every,
        batch_size=batch_size,
        seed=seed,
    )
    policy = RetryPolicy(
        max_attempts=8, base_backoff=0.05, max_backoff=0.5, seed=seed
    )
    if telemetry is not None:
        session_ctx: Any = contextlib.nullcontext(telemetry)
    else:
        session_ctx = telemetry_session("metrics")
    replacement: Dict[str, TcpSMBServer] = {}
    server: Optional[TcpSMBServer] = None
    try:
        with session_ctx as tel:
            server = TcpSMBServer(
                port=0,
                journal_dir=journal_dir,
                snapshot_interval=snapshot_interval,
                telemetry=tel,
            ).start()
            old_address = server.address

            def _watch_and_kill() -> None:
                deadline = monotonic() + timeout
                while monotonic() < deadline:
                    info = latest_checkpoint(checkpoint_dir)
                    if info is not None and (
                        info.iteration >= kill_at_iteration
                    ):
                        break
                    sleep(0.02)
                server.kill()
                sleep(outage)
                replacement["server"] = TcpSMBServer(
                    port=0, journal_dir=journal_dir,
                    snapshot_interval=snapshot_interval,
                    telemetry=tel,
                ).start()

            manager = build_manager(
                metadata,
                checkpoint_dir=checkpoint_dir,
                server_address=old_address,
                rendezvous=str(journal_dir / RENDEZVOUS_NAME),
                server_down_grace=grace,
                retry_policy=policy,
                telemetry=tel,
            )
            watcher = threading.Thread(
                target=_watch_and_kill, name="drill-killer", daemon=True
            )
            watcher.start()
            result = manager.run(timeout=timeout)
            watcher.join(timeout=timeout)
            counters = tel.registry.snapshot() if tel.enabled else {}
    finally:
        new_server = replacement.get("server")
        if new_server is not None:
            new_server.stop()
        elif server is not None:
            # The run finished before the kill fired; clean up server 1.
            with contextlib.suppress(Exception):
                server.stop()

    def _counter(name: str) -> int:
        entry = counters.get(name)
        return int(entry["value"]) if entry else 0

    return DrillReport(
        result=result,
        kill_iteration=kill_at_iteration,
        outage=outage,
        old_address=old_address,
        new_address=(
            new_server.address if new_server is not None else old_address
        ),
        recovered_epoch=(
            new_server.core.epoch if new_server is not None else 0
        ),
        reattachments=_counter("smb/recovery/reattach"),
        recoveries=_counter("smb/recovery/recoveries"),
        journal_dir=str(journal_dir),
        checkpoint_dir=str(checkpoint_dir),
    )
