"""Fig. 10: per-iteration computation vs communication, four platforms.

The paper plots the one-iteration comp/comm split of Inception-v1 training
for Caffe, Caffe-MPI, MPICaffe and ShmCaffe at 8 and 16 GPUs, observing
that ShmCaffe's communication is 5.3x faster than Caffe-MPI's.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..perfmodel.models import model_profile
from ..perfmodel.training_time import platform_breakdown
from .report import ExperimentResult

PLATFORMS: Tuple[str, ...] = ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe")
GPU_COUNTS: Tuple[int, ...] = (8, 16)

#: "ShmCaffe Communication time is 5.3 time faster than Caffe-MPI".
PAPER_COMM_SPEEDUP_VS_CAFFE_MPI = 5.3


def run(
    platforms: Sequence[str] = PLATFORMS,
    gpu_counts: Sequence[int] = GPU_COUNTS,
) -> ExperimentResult:
    """Regenerate the Fig. 10 comp/comm bars."""
    model = model_profile("inception_v1")
    result = ExperimentResult(
        experiment="fig10",
        title="Per-iteration computation vs communication (Inception-v1)",
    )
    comm = {}
    for platform in platforms:
        for n in gpu_counts:
            breakdown = platform_breakdown(platform, model, n)
            comm[(platform, n)] = breakdown.comm_ms
            result.rows.append(
                {
                    "platform": platform,
                    "gpus": n,
                    "comp_ms": round(breakdown.compute_ms, 1),
                    "comm_ms": round(breakdown.comm_ms, 1),
                    "iter_ms": round(breakdown.iteration_ms, 1),
                    "comm_pct": round(breakdown.comm_ratio * 100, 1),
                }
            )
    if ("caffe_mpi", 16) in comm and ("shmcaffe", 16) in comm:
        speedup = comm[("caffe_mpi", 16)] / comm[("shmcaffe", 16)]
        result.notes.append(
            f"ShmCaffe communication is {speedup:.1f}x faster than "
            f"Caffe-MPI at 16 GPUs "
            f"(paper: {PAPER_COMM_SPEEDUP_VS_CAFFE_MPI}x)"
        )
    return result
