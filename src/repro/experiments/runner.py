"""Run every experiment and print the paper's tables and figure series.

Used by ``examples/reproduce_paper.py`` and handy interactively::

    from repro.experiments import runner
    print(runner.run_all(quick=True))
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List

from ..telemetry import current as _telemetry_current
from . import (
    fig07_bandwidth,
    fig08_convergence,
    fig09_table2,
    fig10_comp_comm,
    fig11_a_vs_h,
    fig12_table5,
    fig14_table6,
    fig15_comm_compare,
    table03_configs,
    table04_models,
)
from .report import ExperimentResult

#: Fast, model-only experiments (seconds).
ANALYTIC_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig7": lambda: fig07_bandwidth.run(measure=False),
    "fig9/table2": fig09_table2.run,
    "fig10": fig10_comp_comm.run,
    "table3": table03_configs.run,
    "table4": table04_models.run,
    "fig12-13/table5": fig12_table5.run,
    "fig14/table6": fig14_table6.run,
    "fig15": fig15_comm_compare.run,
}


logger = logging.getLogger(__name__)


def _run_one(name: str, build: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run one experiment, timed into the current telemetry session."""
    tel = _telemetry_current()
    logger.info("running experiment %s", name)
    metric = f"experiment/time/{name.replace('/', '_')}"
    with tel.timed(metric, trace_name=name, cat="experiment"):
        return build()


def run_analytic() -> List[ExperimentResult]:
    """All model-driven tables/figures (no training runs)."""
    return [
        _run_one(name, build)
        for name, build in ANALYTIC_EXPERIMENTS.items()
    ]


def run_training(quick: bool = True) -> List[ExperimentResult]:
    """The two real-training experiments (minutes when not quick)."""
    return [
        _run_one("fig8", lambda: fig08_convergence.run(quick=quick)),
        _run_one("fig11", lambda: fig11_a_vs_h.run(quick=quick)),
    ]


def run_all(quick: bool = True, include_training: bool = True) -> str:
    """Render every experiment as one report string."""
    results = run_analytic()
    if include_training:
        results.extend(run_training(quick=quick))
    return "\n\n".join(result.format() for result in results)
