"""Figs. 12-13 / Table V: ShmCaffe-A comp/comm per iteration, 4 models.

The paper sweeps worker counts 1..16 for each CNN and reports the
per-iteration computation and (non-overlapped) communication times,
observing communication ratios of 16.3%/26% for Inception-v1 at 8/16
GPUs, 30%/56% for ResNet-50, a steep blow-up for Inception-ResNet-v2
(6848 MB of traffic per iteration at 16), and VGG16's 727.7 ms of
communication with just 2 GPUs — making multi-node VGG training
counterproductive.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..perfmodel.iteration import shmcaffe_a
from ..perfmodel.models import PAPER_MODELS
from .report import ExperimentResult

WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16)

#: Communication ratios the paper states (model -> {workers: percent}).
PAPER_COMM_RATIOS: Dict[str, Dict[int, float]] = {
    "inception_v1": {8: 16.3, 16: 26.0},
    "resnet_50": {8: 30.0, 16: 56.0},
    "inception_resnet_v2": {16: 65.0},
}
#: VGG16 at 2 workers: communication 727.7 ms, iteration 941.8 ms.
PAPER_VGG16_2GPU = {"comm_ms": 727.7, "iter_ms": 941.8}


def run(
    worker_counts: Sequence[int] = WORKER_COUNTS,
    update_interval: int = 1,
) -> ExperimentResult:
    """Regenerate Table V (the Fig. 12/13 series)."""
    result = ExperimentResult(
        experiment="fig12-13/table5",
        title="ShmCaffe-A computation and communication per iteration",
    )
    for name, profile in PAPER_MODELS.items():
        for workers in worker_counts:
            breakdown = shmcaffe_a(
                profile, workers, update_interval=update_interval
            )
            paper_pct = PAPER_COMM_RATIOS.get(name, {}).get(workers)
            result.rows.append(
                {
                    "model": name,
                    "workers": workers,
                    "comp_ms": round(breakdown.compute_ms, 1),
                    "comm_ms": round(breakdown.comm_ms, 1),
                    "comm_pct": round(breakdown.comm_ratio * 100, 1),
                    "paper_comm_pct": paper_pct if paper_pct else "-",
                }
            )
    vgg2 = shmcaffe_a(PAPER_MODELS["vgg16"], 2)
    single = 2 * PAPER_MODELS["vgg16"].compute_ms
    result.notes.append(
        f"VGG16@2: iteration {vgg2.iteration_ms:.0f} ms vs "
        f"{single:.0f} ms for the same throughput on 1 GPU -> multi-node "
        f"counterproductive (paper: 941.8 ms vs 389.8 ms)"
    )
    inc16 = PAPER_MODELS["inception_resnet_v2"]
    volume_mb = inc16.param_mb * 2 * 16
    result.notes.append(
        f"Inception-ResNet-v2@16 moves {volume_mb:.0f} MB per iteration "
        f"(paper: 6848 MB)"
    )
    return result
