"""Fig. 14 / Table VI: ShmCaffe-H comp/comm per iteration over Table III.

Hybrid grouping divides the SMB traffic by the group size: the paper's
flagship observation is Inception-ResNet-v2 at 16 GPUs dropping from a
65% communication ratio under ShmCaffe-A to 30.7% under ShmCaffe-H
(S4 x A4), because the volume falls to a quarter.
"""

from __future__ import annotations

from typing import Sequence

from ..perfmodel.iteration import shmcaffe_h
from ..perfmodel.models import PAPER_MODELS
from .report import ExperimentResult
from .table03_configs import TABLE3_CONFIGS, HybridConfig

#: Paper: Inception-ResNet-v2@16 comm ratio falls 65% -> 30.7% under H.
PAPER_INCRESV2_16_H_PCT = 30.7


def run(
    configs: Sequence[HybridConfig] = TABLE3_CONFIGS,
    update_interval: int = 1,
) -> ExperimentResult:
    """Regenerate Table VI (the Fig. 14 series)."""
    result = ExperimentResult(
        experiment="fig14/table6",
        title="ShmCaffe-H computation and communication per iteration",
    )
    for name, profile in PAPER_MODELS.items():
        for config in configs:
            breakdown = shmcaffe_h(
                profile,
                config.workers,
                config.group_size,
                update_interval=update_interval,
            )
            result.rows.append(
                {
                    "model": name,
                    "config": config.label,
                    "comp_ms": round(breakdown.compute_ms, 1),
                    "comm_ms": round(breakdown.comm_ms, 1),
                    "comm_pct": round(breakdown.comm_ratio * 100, 1),
                }
            )
    hybrid = shmcaffe_h(PAPER_MODELS["inception_resnet_v2"], 16, 4)
    result.notes.append(
        f"Inception-ResNet-v2 16 (S4 x A4): comm ratio "
        f"{hybrid.comm_ratio * 100:.1f}% "
        f"(paper: {PAPER_INCRESV2_16_H_PCT}%)"
    )
    return result
