"""Fig. 7: Read/Write bandwidth of one SMB server vs client processes.

Paper protocol: 2..32 processes, each with a 1 GB shared buffer, driving a
50/50 read/write mix; the aggregated bandwidth climbs to 6.7 GB/s — 96 %
of the 7 GB/s FDR HCA.

We report two series: the paper-scale modelled curve (saturating at the
HCA ceiling) and a live measurement against this repository's SMB server
(whose absolute scale is the Python/socket stack, not Infiniband; the
rising-then-flat shape is what reproduces).
"""

from __future__ import annotations

from typing import Sequence

from ..perfmodel.bandwidth import (
    FIG7_PROCESS_COUNTS,
    measure_smb_bandwidth,
    modeled_bandwidth_gbs,
)
from ..perfmodel.hardware import PAPER_HARDWARE
from .report import ExperimentResult

#: Aggregated GB/s the paper reports reaching.
PAPER_PEAK_GBS = 6.7
#: Hardware utilisation the paper claims at the plateau.
PAPER_UTILISATION = 0.96


def run(
    counts: Sequence[int] = FIG7_PROCESS_COUNTS,
    measure: bool = True,
    buffer_mb: float = 2.0,
    operations: int = 10,
) -> ExperimentResult:
    """Reproduce Fig. 7.

    Args:
        counts: Client process counts to sweep.
        measure: Also run the live socket/in-proc measurement.
        buffer_mb: Per-client buffer for the live run (paper: 1000 MB).
        operations: Read+write ops per client in the live run.
    """
    result = ExperimentResult(
        experiment="fig7",
        title="SMB server aggregated R/W bandwidth vs processes",
    )
    for n in counts:
        row: dict = {
            "processes": n,
            "modeled_gbs": modeled_bandwidth_gbs(n),
        }
        if measure:
            sample = measure_smb_bandwidth(
                n, buffer_mb=buffer_mb, operations=operations
            )
            row["measured_gbs"] = sample.gbs
        result.rows.append(row)

    plateau = modeled_bandwidth_gbs(max(counts))
    result.notes.append(
        f"modeled plateau {plateau:.2f} GB/s = "
        f"{plateau / PAPER_HARDWARE.ib_bandwidth_gbs * 100:.0f}% of the "
        f"7 GB/s HCA (paper: {PAPER_PEAK_GBS} GB/s, "
        f"{PAPER_UTILISATION * 100:.0f}%)"
    )
    if measure:
        result.notes.append(
            "measured column is this host's Python stack, not Infiniband; "
            "only the saturation shape is comparable"
        )
    return result
