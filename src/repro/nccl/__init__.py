"""NCCL-like intra-node collectives over shared memory.

Used by the Hybrid SGD path (synchronous aggregation inside a worker group)
and by the multi-GPU BVLC Caffe baseline.
"""

from .ring import NcclError, RingGroup

__all__ = ["NcclError", "RingGroup"]
