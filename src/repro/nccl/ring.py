"""Ring collectives for intra-node worker groups (NCCL stand-in).

ShmCaffe-H aggregates gradients inside a node with ``ncclAllReduce`` and
lets only the group root talk to the SMB server (paper Sec. III-D).  This
module provides the same collective semantics for thread-workers sharing an
address space:

* :class:`RingGroup` — a fixed clique of ``size`` members.  Members call the
  collective methods with their in-group rank; calls block until the whole
  group participates, exactly like NCCL kernels on a stream.

The reduction is *chunked* the way a ring allreduce is: member ``r`` owns
chunk ``r`` and reduces it, then every member gathers all chunks.  That
keeps the arithmetic parallel across members and makes the communication
volume of a real ring — ``2 (n-1)/n`` times the payload per member — the
natural accounting, which :attr:`RingGroup.bytes_per_member` reports for the
performance model.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np


class NcclError(Exception):
    """A collective failed (mismatched shapes, broken group, bad rank)."""


class RingGroup:
    """A clique of ``size`` thread-workers doing synchronous collectives.

    One instance is shared by every member of the group; per-call state is
    kept in slots indexed by in-group rank and fenced with a reusable
    barrier.  Any member raising inside a collective breaks the barrier so
    the rest fail fast instead of deadlocking.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"group size must be positive, got {size}")
        self.size = size
        self._barrier = threading.Barrier(size)
        self._slots: List[Optional[np.ndarray]] = [None] * size
        self._result: Optional[np.ndarray] = None
        self._stats_lock = threading.Lock()
        self.collective_count = 0
        self.bytes_moved = 0

    # -- helpers -----------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise NcclError(f"rank {rank} out of range for group of {self.size}")

    def _wait(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise NcclError("collective aborted: a group member failed") from exc

    def abort(self) -> None:
        """Break any in-flight collective (member crashed)."""
        self._barrier.abort()

    def bytes_per_member(self, payload_nbytes: int) -> int:
        """Ring-allreduce traffic per member for a payload of given size."""
        if self.size == 1:
            return 0
        return int(2 * (self.size - 1) / self.size * payload_nbytes)

    def _account(self, payload_nbytes: int) -> None:
        with self._stats_lock:
            self.collective_count += 1
            self.bytes_moved += self.bytes_per_member(payload_nbytes) * self.size

    # -- collectives --------------------------------------------------------

    def allreduce(
        self, rank: int, values: np.ndarray, average: bool = False
    ) -> np.ndarray:
        """Sum (or average) ``values`` across the group; all members get it.

        Args:
            rank: Caller's in-group rank.
            values: 1-D float array; every member must pass the same length.
            average: Divide the sum by the group size (SSGD gradient mean).

        Returns:
            A fresh array owned by the caller.
        """
        self._check_rank(rank)
        flat = np.ascontiguousarray(values, dtype=np.float32).ravel()
        if self.size == 1:
            return flat.copy().reshape(values.shape)

        self._slots[rank] = flat
        self._wait()

        length = self._slots[0].size  # type: ignore[union-attr]
        for member in range(self.size):
            if self._slots[member].size != length:  # type: ignore[union-attr]
                self.abort()
                raise NcclError("allreduce length mismatch across group")
        if rank == 0:
            self._result = np.empty(length, dtype=np.float32)
        self._wait()

        # Reduce-scatter phase: member r reduces its owned chunk.
        bounds = np.linspace(0, length, self.size + 1, dtype=np.int64)
        lo, hi = int(bounds[rank]), int(bounds[rank + 1])
        chunk = self._slots[0][lo:hi].copy()  # type: ignore[index]
        for member in range(1, self.size):
            chunk += self._slots[member][lo:hi]  # type: ignore[index]
        if average:
            chunk /= self.size
        self._result[lo:hi] = chunk  # type: ignore[index]
        self._wait()

        # Allgather phase: everyone copies the assembled result out.
        out = self._result.copy()  # type: ignore[union-attr]
        self._wait()
        if rank == 0:
            self._slots = [None] * self.size
            self._result = None
            self._account(flat.nbytes)
        self._wait()
        return out.reshape(values.shape)

    def broadcast(self, rank: int, values: Optional[np.ndarray], root: int = 0) -> np.ndarray:
        """Copy ``values`` from ``root`` to every member (ncclBroadcast)."""
        self._check_rank(rank)
        self._check_rank(root)
        if rank == root:
            if values is None:
                self.abort()
                raise NcclError("root must supply values to broadcast")
            self._result = np.ascontiguousarray(values, dtype=np.float32)
        self._wait()
        out = self._result.copy()  # type: ignore[union-attr]
        self._wait()
        if rank == root:
            self._account(out.nbytes)
            self._result = None
        self._wait()
        return out

    def reduce(
        self, rank: int, values: np.ndarray, root: int = 0, average: bool = False
    ) -> Optional[np.ndarray]:
        """Sum arrays onto ``root``; other members return ``None``."""
        summed = self.allreduce(rank, values, average=average)
        return summed if rank == root else None

    def barrier(self, rank: int) -> None:
        """Synchronise the group without moving data."""
        self._check_rank(rank)
        self._wait()
