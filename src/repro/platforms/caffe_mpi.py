"""Caffe-MPI baseline: star-topology synchronous SGD over MPI send/recv.

Inspur's Caffe-MPI (v1.0) "implements SSGD using MPI Send/MPI Recv ...
master worker gathers the computed gradients by slave workers, takes the
average of them, updates master weights, and finally distributes the
updated master weights to slave workers" (paper Sec. IV-C).  The star
geometry — every slave talks only to the master — is what makes its
communication cost grow linearly in the worker count, the effect Fig. 10
shows.
"""

from __future__ import annotations

from typing import Optional

from .. import mpi
from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver, SolverConfig
from .base import EvalRecord, PlatformResult, SpecFactory, evaluate_net

#: Point-to-point tags of the star protocol.
TAG_GRADIENT = 100
TAG_WEIGHTS = 101


def train(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    num_workers: int,
    eval_every: Optional[int] = None,
    seed: int = 0,
) -> PlatformResult:
    """Run Caffe-MPI-style SSGD; returns the master's history."""
    if num_workers < 2:
        raise ValueError("Caffe-MPI needs a master and at least one slave")
    result = PlatformResult(platform="caffe_mpi", num_workers=num_workers)

    def rank_main(comm: mpi.Communicator) -> None:
        rank = comm.rank
        net = Net(spec_factory(), seed=seed)
        solver = SGDSolver(net, solver_config)
        flat = FlatParams(net)
        batches = dataset.minibatches(
            batch_size, seed=seed + 1 + rank, rank=rank,
            num_shards=num_workers,
        )
        for iteration in range(1, iterations + 1):
            stats = solver.compute_gradients(next(batches).as_inputs())
            if comm.is_master:
                # Gather slave gradients one by one (star fan-in), average
                # into the master's diffs, update master weights.
                total = flat.get_grad_vector()
                for _ in range(num_workers - 1):
                    total += comm.recv(source=mpi.ANY_SOURCE,
                                       tag=TAG_GRADIENT)
                flat.set_grad_vector(total / num_workers)
                solver.apply_update()
                solver.advance_iteration()
                weights = flat.get_vector()
                for dest in range(1, num_workers):
                    comm.send(weights, dest, tag=TAG_WEIGHTS)
                result.losses.append(stats["loss"])
                if eval_every and iteration % eval_every == 0:
                    result.evals.append(
                        EvalRecord(iteration, evaluate_net(net, dataset))
                    )
            else:
                comm.send(flat.get_grad_vector(), 0, tag=TAG_GRADIENT)
                weights = comm.recv(source=0, tag=TAG_WEIGHTS)
                flat.set_vector(weights)
                solver.advance_iteration()
        if comm.is_master:
            result.final_weights = flat.get_vector()

    mpi.run_spmd(num_workers, rank_main)
    return result
