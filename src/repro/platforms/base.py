"""Shared scaffolding for the four training platforms of Sec. IV-C.

Every platform driver returns a :class:`PlatformResult` with the same
shape, so the Fig. 8 / Fig. 11 convergence experiments can overlay
platforms directly: train-loss per iteration, periodic test metrics, and
the final weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.netspec import NetSpec
from ..caffe.params import FlatParams

SpecFactory = Callable[[], NetSpec]


def _accuracy_of(metrics: Dict[str, float]) -> float:
    """Pull the top-1 accuracy metric regardless of the blob's exact name."""
    for key in ("accuracy_top1", "accuracy", "acc"):
        if key in metrics:
            return metrics[key]
    for key, value in sorted(metrics.items()):
        if key.startswith("acc"):
            return value
    return float("nan")


@dataclass
class EvalRecord:
    """Test-split metrics snapped at a training iteration."""

    iteration: int
    metrics: Dict[str, float]


@dataclass
class PlatformResult:
    """Outcome of one platform training run."""

    platform: str
    num_workers: int
    losses: List[float] = field(default_factory=list)
    evals: List[EvalRecord] = field(default_factory=list)
    final_weights: Optional[np.ndarray] = None

    @property
    def final_accuracy(self) -> float:
        """Top-1 accuracy of the last evaluation (NaN if none taken)."""
        if not self.evals:
            return float("nan")
        return _accuracy_of(self.evals[-1].metrics)

    @property
    def final_loss(self) -> float:
        """Test loss of the last evaluation (NaN if none taken)."""
        if not self.evals:
            return float("nan")
        return self.evals[-1].metrics.get("loss", float("nan"))

    def accuracy_curve(self) -> List[Tuple[int, float]]:
        """(iteration, top-1 accuracy) series for plotting."""
        return [
            (record.iteration, _accuracy_of(record.metrics))
            for record in self.evals
        ]


def evaluate_weights(
    spec_factory: SpecFactory,
    weights: np.ndarray,
    dataset: SyntheticImageDataset,
    batch_size: int = 50,
    seed: int = 0,
) -> Dict[str, float]:
    """Test-split metrics of a flat weight vector under a fresh net."""
    net = Net(spec_factory(), seed=seed)
    FlatParams(net).set_vector(weights)
    return evaluate_net(net, dataset, batch_size)


def evaluate_net(
    net: Net, dataset: SyntheticImageDataset, batch_size: int = 50
) -> Dict[str, float]:
    """Average loss and metrics of a net over the whole test split."""
    totals: Dict[str, float] = {}
    batches = dataset.test_batches(batch_size)
    for batch in batches:
        outputs = net.forward(batch.as_inputs(), train=False)
        totals["loss"] = totals.get("loss", 0.0) + net.total_loss(outputs)
        for name in net.metric_names:
            totals[name] = totals.get(name, 0.0) + float(
                outputs[name].ravel()[0]
            )
    return {key: value / len(batches) for key, value in totals.items()}


def iterations_per_epoch(
    dataset: SyntheticImageDataset, batch_size: int, num_workers: int
) -> int:
    """Data-parallel iterations that consume one pass over the train set."""
    return max(1, dataset.train_size // (batch_size * num_workers))
