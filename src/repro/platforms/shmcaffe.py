"""ShmCaffe platform drivers: ShmCaffe-A (async) and ShmCaffe-H (hybrid).

Thin adapters over :class:`repro.core.trainer.DistributedTrainingManager`
producing the same :class:`~repro.platforms.base.PlatformResult` shape as
the baselines, so convergence experiments can overlay all four platforms.

For ShmCaffe the *model under evaluation* is the global weight buffer on
the SMB server (the elastic centre), matching how the paper reports
ShmCaffe accuracy.
"""

from __future__ import annotations

from typing import Optional

from ..caffe.data import SyntheticImageDataset
from ..caffe.solver import SolverConfig
from ..core.autoscale import (
    AutoscaleController,
    AutoscalePolicy,
    AutoscaleSupervisor,
)
from ..core.config import ShmCaffeConfig, TerminationCriterion
from ..core.trainer import DistributedTrainingManager
from .base import EvalRecord, PlatformResult, SpecFactory, evaluate_weights


def train(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    num_workers: int,
    group_size: int = 1,
    moving_rate: float = 0.2,
    update_interval: int = 1,
    eval_every: Optional[int] = None,
    seed: int = 0,
    stale_global_read: bool = False,
    overlap_updates: bool = True,
    termination: TerminationCriterion = TerminationCriterion.MASTER_STOP,
    timeout: Optional[float] = None,
    algorithm: str = "seasgd",
    elastic: bool = False,
    max_workers: Optional[int] = None,
    registry_dir: Optional[str] = None,
    autoscale: bool = False,
) -> PlatformResult:
    """Run ShmCaffe; ``group_size=1`` is variant A, ``>1`` is variant H.

    Args:
        iterations: Per-worker iteration budget (before alignment).
        group_size: Intra-node synchronous group width (paper's S#).
        moving_rate: SEASGD alpha (paper uses 0.2).
        update_interval: Iterations between SMB exchanges (paper uses 1).
        stale_global_read: Ablation — hide the global-weight read behind
            computation, accepting delayed parameters.
        overlap_updates: Run the Fig. 6 update thread (default, faithful).
        termination: Sec. III-E alignment criterion.  Elastic runs force
            ``AVERAGE_ITERATIONS`` (the criterion defined under churn).
        algorithm: Named exchange strategy (``"seasgd"`` or any name in
            :data:`repro.core.exchange.EXCHANGES`, e.g. ``"smb_asgd"``
            for Downpour over SMB; ``update_interval`` then acts as the
            fetch interval).
        elastic: Let the fleet change size mid-run (requires variant A);
            a membership registry is kept in ``registry_dir``.
        max_workers: Slot ceiling for an elastic run (defaults to
            ``num_workers``).
        registry_dir: Membership registry directory; required when
            ``elastic`` (a temp directory is a fine choice for local
            runs).
        autoscale: Drive :meth:`spawn_worker`/:meth:`retire_worker` from
            an :class:`~repro.core.autoscale.AutoscaleController` polling
            the run's phase telemetry (needs an enabled telemetry
            session to see any signal).
    """
    if elastic:
        termination = TerminationCriterion.AVERAGE_ITERATIONS
    config = ShmCaffeConfig(
        solver=solver_config,
        moving_rate=moving_rate,
        update_interval=update_interval,
        max_iterations=iterations,
        termination=termination,
        overlap_updates=overlap_updates,
        stale_global_read=stale_global_read,
        algorithm=algorithm,
    )
    manager = DistributedTrainingManager(
        spec_factory=spec_factory,
        config=config,
        dataset=dataset,
        batch_size=batch_size,
        num_workers=num_workers,
        group_size=group_size,
        seed=seed,
        eval_every=eval_every,
        registry_dir=registry_dir,
        elastic=elastic,
        max_workers=max_workers,
    )
    supervisor = None
    if autoscale:
        if not elastic or manager.registry is None:
            raise ValueError("autoscale requires an elastic run")
        controller = AutoscaleController(
            AutoscalePolicy(
                min_workers=num_workers,
                max_workers=manager.max_workers,
            ),
            telemetry=manager.telemetry,
            live_source=manager.registry.live_count,
        )
        supervisor = AutoscaleSupervisor(manager, controller).start()
    try:
        outcome = manager.run(timeout=timeout)
    finally:
        if supervisor is not None:
            supervisor.stop()

    if algorithm != "seasgd":
        name = algorithm
    elif group_size == 1:
        name = "shmcaffe_a"
    else:
        name = "shmcaffe_h"
    result = PlatformResult(platform=name, num_workers=num_workers)
    master = outcome.histories[0]
    result.losses = list(master.losses)
    result.evals = [
        EvalRecord(iteration, metrics)
        for iteration, metrics in outcome.eval_records
    ]
    result.final_weights = outcome.final_global_weights
    # Always finish with an evaluation of the global weights so
    # final_accuracy is defined even when eval_every was off.
    final_metrics = evaluate_weights(
        spec_factory, outcome.final_global_weights, dataset, seed=seed
    )
    result.evals.append(
        EvalRecord(master.completed_iterations, final_metrics)
    )
    return result


def train_async(*args, **kwargs) -> PlatformResult:
    """ShmCaffe-A: every worker is its own SEASGD participant."""
    kwargs["group_size"] = 1
    return train(*args, **kwargs)


def train_hybrid(*args, group_size: int = 4, **kwargs) -> PlatformResult:
    """ShmCaffe-H: SSGD inside groups of ``group_size``, SEASGD between."""
    if group_size < 2:
        raise ValueError("hybrid mode needs group_size >= 2")
    kwargs["group_size"] = group_size
    return train(*args, **kwargs)
