"""MPICaffe baseline: synchronous SGD over MPI_Allreduce.

The authors' own comparison platform (paper Sec. IV-C): BVLC Caffe plus
MPI, with gradient aggregation done by ``MPI_Allreduce`` instead of NCCL or
a parameter server.  Every worker receives the averaged gradient and
applies an identical update, so replicas stay bit-equal without any weight
redistribution step.
"""

from __future__ import annotations

from typing import Optional

from .. import mpi
from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver, SolverConfig
from .base import EvalRecord, PlatformResult, SpecFactory, evaluate_net


def train(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    num_workers: int,
    eval_every: Optional[int] = None,
    seed: int = 0,
) -> PlatformResult:
    """Run MPICaffe-style allreduce SSGD; returns rank 0's history."""
    if num_workers < 2:
        raise ValueError("MPICaffe needs at least two workers")
    result = PlatformResult(platform="mpi_caffe", num_workers=num_workers)

    def rank_main(comm: mpi.Communicator) -> None:
        rank = comm.rank
        net = Net(spec_factory(), seed=seed)
        solver = SGDSolver(net, solver_config)
        flat = FlatParams(net)
        batches = dataset.minibatches(
            batch_size, seed=seed + 1 + rank, rank=rank,
            num_shards=num_workers,
        )
        for iteration in range(1, iterations + 1):
            stats = solver.compute_gradients(next(batches).as_inputs())
            averaged = mpi.allreduce(comm, flat.get_grad_vector()) / (
                num_workers
            )
            flat.set_grad_vector(averaged)
            solver.apply_update()
            solver.advance_iteration()
            if comm.is_master:
                result.losses.append(stats["loss"])
                if eval_every and iteration % eval_every == 0:
                    result.evals.append(
                        EvalRecord(iteration, evaluate_net(net, dataset))
                    )
        if comm.is_master:
            result.final_weights = flat.get_vector()

    mpi.run_spmd(num_workers, rank_main)
    return result
