"""The four deep-learning platforms compared in the paper's Sec. IV.

* :mod:`repro.platforms.bvlc_caffe` — standalone + multi-GPU NCCL SSGD;
* :mod:`repro.platforms.caffe_mpi` — Inspur-style star-topology SSGD;
* :mod:`repro.platforms.mpi_caffe` — MPI_Allreduce SSGD;
* :mod:`repro.platforms.shmcaffe` — ShmCaffe-A and ShmCaffe-H (ours).
"""

from . import asgd, bvlc_caffe, caffe_mpi, mpi_caffe, shmcaffe
from .base import (
    EvalRecord,
    PlatformResult,
    evaluate_net,
    evaluate_weights,
    iterations_per_epoch,
)

__all__ = [
    "EvalRecord",
    "PlatformResult",
    "asgd",
    "bvlc_caffe",
    "caffe_mpi",
    "evaluate_net",
    "evaluate_weights",
    "iterations_per_epoch",
    "mpi_caffe",
    "shmcaffe",
]
