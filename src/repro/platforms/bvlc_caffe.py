"""BVLC Caffe baseline: standalone SGD and single-node multi-GPU SSGD.

The paper's reference platform.  Standalone mode is plain solver stepping
on one worker; multi-GPU mode reproduces Caffe 1.0's NCCL path — every GPU
computes gradients on its shard, gradients are averaged with an allreduce,
and each replica applies the identical update (so replicas never diverge).
"""

from __future__ import annotations

from typing import Optional

from .. import mpi
from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver, SolverConfig
from ..nccl.ring import RingGroup
from .base import PlatformResult, SpecFactory, evaluate_net


def train_standalone(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    eval_every: Optional[int] = None,
    seed: int = 0,
    prefetch: bool = False,
) -> PlatformResult:
    """Single-GPU BVLC Caffe: the 1-GPU column of Table II and Fig. 8.

    ``prefetch=True`` stages minibatches through the 10-deep background
    prefetcher, as ShmCaffe's data layer does; with synthetic in-memory
    data it changes nothing numerically (the batch sequence is identical)
    but exercises the production data path.
    """
    net = Net(spec_factory(), seed=seed)
    solver = SGDSolver(net, solver_config)
    batches = dataset.minibatches(batch_size, seed=seed + 1)
    result = PlatformResult(platform="caffe", num_workers=1)

    from ..caffe.data import Prefetcher
    from .base import EvalRecord

    prefetcher = Prefetcher(batches) if prefetch else None
    try:
        for iteration in range(1, iterations + 1):
            batch = (
                prefetcher.next_batch() if prefetcher else next(batches)
            )
            stats = solver.step(batch.as_inputs())
            result.losses.append(stats["loss"])
            if eval_every and iteration % eval_every == 0:
                result.evals.append(
                    EvalRecord(iteration, evaluate_net(net, dataset))
                )
    finally:
        if prefetcher is not None:
            prefetcher.stop()
    result.final_weights = FlatParams(net).get_vector()
    return result


def train_multi_gpu(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    num_workers: int,
    eval_every: Optional[int] = None,
    seed: int = 0,
) -> PlatformResult:
    """Multi-GPU BVLC Caffe: SSGD over an NCCL-style ring allreduce.

    Every worker is a thread-GPU; the effective minibatch is
    ``batch_size * num_workers`` per global iteration, as in Caffe.
    """
    if num_workers < 2:
        raise ValueError("use train_standalone for a single worker")
    ring = RingGroup(num_workers)
    result = PlatformResult(platform="caffe", num_workers=num_workers)

    from .base import EvalRecord

    def rank_main(comm: mpi.Communicator) -> PlatformResult:
        rank = comm.rank
        net = Net(spec_factory(), seed=seed)  # identical replicas
        solver = SGDSolver(net, solver_config)
        flat = FlatParams(net)
        batches = dataset.minibatches(
            batch_size, seed=seed + 1 + rank, rank=rank,
            num_shards=num_workers,
        )
        for iteration in range(1, iterations + 1):
            stats = solver.compute_gradients(next(batches).as_inputs())
            averaged = ring.allreduce(
                rank, flat.get_grad_vector(), average=True
            )
            flat.set_grad_vector(averaged)
            solver.apply_update()
            solver.advance_iteration()
            if rank == 0:
                result.losses.append(stats["loss"])
                if eval_every and iteration % eval_every == 0:
                    result.evals.append(
                        EvalRecord(iteration, evaluate_net(net, dataset))
                    )
        if rank == 0:
            result.final_weights = flat.get_vector()
        return result

    mpi.run_spmd(num_workers, rank_main)
    return result
