"""Classic parameter-server ASGD (Downpour-style), for comparison.

The paper's related work contrasts SEASGD with the plain asynchronous SGD
family: "the parameter server updates the global weight whenever gradient
arrives from a worker", with the delayed-gradient problem that entails.
This module implements that baseline so the repository can demonstrate
*why* ShmCaffe adopts elastic averaging instead:

* :class:`ParameterServer` — global weights behind a lock; ``push``
  applies a worker's gradient with the server-side learning rate the
  moment it arrives, ``pull`` returns the current weights.
* :func:`train` — Downpour loop per worker: pull, compute a gradient on
  the local replica, push.  With ``fetch_interval > 1`` workers keep
  training on stale weights between pulls, amplifying the delayed-
  gradient effect.

Note the architectural difference from ShmCaffe: this server runs *update
logic* (it is a parameter server); the SMB server only stores bytes and
accumulates vectors.  The same Downpour rule also runs *on* the SMB
substrate as :class:`repro.core.exchange.SMBAsgdExchange` (platform name
``smb_asgd``), where the push is expressed as a ``-lr * gradient`` write
plus the server-side accumulate — a demonstration of the pluggable
exchange-strategy seam.

A real limitation this baseline faithfully inherits: gradient-push servers
never learn batch-norm *running statistics* (their "gradient" is zero), so
the server-side model of a BN network evaluates with initialisation-time
statistics.  SEASGD does not have this problem — it exchanges *weights*
(elastic increments), statistics included.  Use BN-free models with this
platform, or evaluate a worker replica instead of the server.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from .. import mpi
from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver, SolverConfig
from .base import EvalRecord, PlatformResult, SpecFactory, evaluate_weights


class ParameterServer:
    """Lock-protected global weights with apply-on-arrival updates."""

    def __init__(self, initial_weights: np.ndarray) -> None:
        self._weights = np.array(initial_weights, dtype=np.float32)
        self._lock = threading.Lock()
        self.updates_applied = 0

    def pull(self) -> np.ndarray:
        """Current global weights (a copy)."""
        with self._lock:
            return self._weights.copy()

    def push(self, gradient: np.ndarray, lr: float) -> None:
        """Apply ``W -= lr * g`` immediately (no aggregation, no waiting)."""
        gradient = np.asarray(gradient, dtype=np.float32)
        if gradient.size != self._weights.size:
            raise ValueError(
                f"gradient size {gradient.size} != weights "
                f"{self._weights.size}"
            )
        with self._lock:
            self._weights -= lr * gradient
            self.updates_applied += 1


def train(
    spec_factory: SpecFactory,
    dataset: SyntheticImageDataset,
    solver_config: SolverConfig,
    batch_size: int,
    iterations: int,
    num_workers: int,
    fetch_interval: int = 1,
    eval_every: Optional[int] = None,
    seed: int = 0,
) -> PlatformResult:
    """Downpour-style ASGD; evaluation is of the server's weights.

    Args:
        fetch_interval: Pull fresh weights every this many iterations
            (Downpour's ``n_fetch``); larger values train on staler
            replicas.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if fetch_interval < 1:
        raise ValueError(
            f"fetch_interval must be >= 1, got {fetch_interval}"
        )
    bootstrap = Net(spec_factory(), seed=seed)
    server = ParameterServer(FlatParams(bootstrap).get_vector())
    result = PlatformResult(platform="asgd", num_workers=num_workers)

    def rank_main(comm: mpi.Communicator) -> None:
        rank = comm.rank
        net = Net(spec_factory(), seed=seed)
        solver = SGDSolver(net, solver_config)
        flat = FlatParams(net)
        batches = dataset.minibatches(
            batch_size, seed=seed + 1 + rank, rank=rank,
            num_shards=num_workers,
        )
        for iteration in range(1, iterations + 1):
            if (iteration - 1) % fetch_interval == 0:
                flat.set_vector(server.pull())
            batch = next(batches)
            stats = solver.compute_gradients(batch.as_inputs())
            server.push(
                flat.get_grad_vector(),
                solver_config.learning_rate(iteration - 1),
            )
            # The local replica also steps so inter-fetch iterations make
            # progress (Downpour keeps training between fetches).
            solver.apply_update()
            solver.advance_iteration()
            if comm.is_master:
                result.losses.append(stats["loss"])
                if eval_every and iteration % eval_every == 0:
                    result.evals.append(
                        EvalRecord(
                            iteration,
                            evaluate_weights(
                                spec_factory, server.pull(), dataset,
                                seed=seed,
                            ),
                        )
                    )

    mpi.run_spmd(num_workers, rank_main)
    result.final_weights = server.pull()
    result.evals.append(
        EvalRecord(
            iterations,
            evaluate_weights(spec_factory, result.final_weights, dataset,
                             seed=seed),
        )
    )
    return result
