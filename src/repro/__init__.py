"""repro: a Python reproduction of ShmCaffe (ICDCS 2018).

ShmCaffe is a distributed deep-learning platform that shares training
parameters through a remote shared-memory server (the Soft Memory Box)
instead of a parameter server, using the SEASGD elastic-averaging update
and a hybrid intra-node-synchronous / inter-node-asynchronous mode.

Package map:

* :mod:`repro.core` -- SEASGD, the overlap worker, hybrid SGD, trainer;
* :mod:`repro.smb` -- the Soft Memory Box server and client library;
* :mod:`repro.mpi` -- mini-MPI SPMD substrate (bring-up + baselines);
* :mod:`repro.nccl` -- ring collectives for intra-node groups;
* :mod:`repro.caffe` -- NumPy Caffe: layers, nets, solver, models, data;
* :mod:`repro.platforms` -- BVLC Caffe / Caffe-MPI / MPICaffe / ShmCaffe;
* :mod:`repro.perfmodel` -- the calibrated testbed performance model;
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    from repro.caffe import SyntheticImageDataset, SolverConfig, models
    from repro.platforms import shmcaffe

    dataset = SyntheticImageDataset()
    result = shmcaffe.train_async(
        lambda: models.scaled_spec("inception_v1", batch_size=16),
        dataset,
        SolverConfig(base_lr=0.05, momentum=0.9),
        batch_size=16,
        iterations=100,
        num_workers=4,
    )
    print(result.final_accuracy)
"""

__version__ = "1.0.0"

__all__ = [
    "caffe",
    "core",
    "experiments",
    "mpi",
    "nccl",
    "perfmodel",
    "platforms",
    "smb",
]
