"""The Fig.-6 overlap driver: one reusable update thread per worker.

The paper's worker protocol (Fig. 6) pairs the main training thread with
an **update_thread** whose job is to hide the *write* side of a parameter
exchange behind computation.  The two sides ping-pong on a pair of
events, giving exactly the paper's mutual exclusion: the main thread
blocks before the next exchange (the eq.-(8) ``block`` stall, step T.A5)
until the update thread has finished flushing the previous one.

This used to be welded into ``ShmCaffeWorker``; extracting it means *any*
:class:`~repro.core.exchange.ExchangeStrategy` can hide its write side —
SEASGD workers, HSGD group roots, the stale-read ablation (which hides
the read too), and the SMB-ASGD gradient push all reuse the same driver.

Spans executed on the driver run against the worker's ``update``
telemetry track (trace tid 1), so ``wwi``/``ugw`` flushes are visibly
overlapped with ``comp`` in the Chrome trace regardless of which strategy
submitted them.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from ..telemetry.phases import NullPhaseTimer, PhaseTimer
from .engine import FlushTimeoutError, WorkerError


class OverlapDriver:
    """One worker's Fig.-6 update thread, driving deferred flush work.

    The protocol is strict ping-pong: :meth:`submit` hands exactly one
    thunk to the update thread and marks the driver in-flight;
    :meth:`wait_for_flush` blocks (bounded) until that thunk finished,
    re-raising its failure on the caller.  Submitting while a previous
    flush is still in flight is a protocol violation — strategies must
    always wait first, which is precisely the paper's mutual exclusion.

    Args:
        rank: Worker rank (labels the telemetry track).
        telemetry: Session receiving the update-thread phase spans;
            defaults to the process-wide session.
        thread_label: Telemetry lane name (``update`` = trace tid 1).
    """

    #: Longest a caller will wait for the update thread to flush before
    #: declaring the eq.-(8) mutual exclusion broken.
    FLUSH_TIMEOUT = 60.0

    def __init__(
        self,
        rank: int,
        telemetry: Optional[TelemetrySession] = None,
        thread_label: str = "update",
    ) -> None:
        tel = telemetry if telemetry is not None else _telemetry_current()
        self.rank = rank
        #: Phase timer for spans running on the update thread; strategies
        #: use it so their deferred ``wwi``/``ugw`` land on the right track.
        self.phases: "PhaseTimer | NullPhaseTimer" = tel.phase_timer(
            rank, thread_label
        )
        self._pending: Optional[Callable[[], None]] = None
        self._wake = threading.Event()
        self._flushed = threading.Event()
        self._flushed.set()  # nothing in flight initially
        self._shutdown = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    # -- update thread (T.A1-T.A4) ----------------------------------------

    def _loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._shutdown.is_set():
                return
            try:
                thunk = self._pending
                if thunk is None:
                    raise WorkerError("update thread woken with no work")
                self._pending = None
                thunk()                                            # T.A1-A3
            except BaseException as exc:  # noqa: BLE001 - report to main
                self._error = exc
                self._flushed.set()
                return
            self._flushed.set()                                    # T.A4


    def _ensure_thread(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop,
                name=f"shmcaffe-update-{self.rank}",
                daemon=True,
            )
            self._thread.start()

    # -- main-thread API ----------------------------------------------------

    @property
    def in_flight(self) -> bool:
        """True while a submitted flush has not yet completed."""
        return not self._flushed.is_set()

    def submit(self, thunk: Callable[[], None]) -> None:
        """Hand one flush thunk to the update thread (Fig. 6, T3).

        The caller must have observed the previous flush via
        :meth:`wait_for_flush` first; the engine's exchange sequencing
        guarantees that.
        """
        self._ensure_thread()
        self._pending = thunk
        self._flushed.clear()
        self._wake.set()

    def wait_for_flush(
        self, block_phases: "PhaseTimer | NullPhaseTimer | None" = None
    ) -> None:
        """T.A5: block until the previous flush reached the server.

        A flush that never lands (update thread wedged on a dead SMB
        path) must not let the main thread proceed — that would race the
        flush and break the mutual exclusion — so the bounded wait's
        result is checked and a timeout is an error.

        Args:
            block_phases: Main-thread phase timer; when given, the stall
                is recorded as the eq.-(8) ``block`` phase.

        Raises:
            WorkerError: The update thread died executing the flush (the
                original failure is chained as ``__cause__``).
            FlushTimeoutError: The flush missed :attr:`FLUSH_TIMEOUT`.
        """
        if block_phases is not None:
            with block_phases.phase("block"):
                flushed = self._flushed.wait(timeout=self.FLUSH_TIMEOUT)
        else:
            flushed = self._flushed.wait(timeout=self.FLUSH_TIMEOUT)
        if self._error is not None:
            raise WorkerError(
                f"update thread failed: {self._error}"
            ) from self._error
        if not flushed:
            raise FlushTimeoutError(
                f"update thread did not flush within "
                f"{self.FLUSH_TIMEOUT:.0f}s"
            )

    def stop(self) -> None:
        """Drain the update thread; never hang shutdown on a dead flush.

        The bounded waits mean a wedged flush (e.g. SMB path gone) leaves
        at worst one daemon thread behind instead of blocking the main
        thread forever; its eventual error is already captured in the
        driver's error slot / the engine's degradation path.
        """
        self._flushed.wait(timeout=30.0)
        self._shutdown.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
