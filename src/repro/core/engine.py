"""The unified training engine: one iteration loop for every platform.

Historically ``ShmCaffeWorker`` and ``HybridWorker`` each carried their own
copy of the iteration loop, history recording, termination publishing and
SMB-loss degradation.  :class:`TrainingEngine` is the single owner of that
machinery; everything algorithm-specific — *how* parameters are exchanged
and *how* a training step runs — lives behind the
:class:`~repro.core.exchange.ExchangeStrategy` seam.

The engine's loop is the paper's worker skeleton:

1. on exchange iterations (every ``update_interval``), delegate to
   ``strategy.exchange`` (T1-T3 of Fig. 6 for SEASGD; allreduce+broadcast
   for HSGD; pull for SMB-ASGD);
2. run ``strategy.train_step`` (T4-T5) and record an
   :class:`IterationRecord` — the learning rate recorded is always the
   ``stats["lr"]`` the strategy reports, i.e. the lr actually applied this
   step (the pre-refactor ``HybridWorker`` derived it separately, which
   this unifies);
3. publish progress and check the Sec. III-E stop criterion via
   ``strategy.should_stop``.

A worker whose SMB path dies for good degrades gracefully: with a
termination coordinator present it marks itself dead in the control block
(survivors rescale their stop criteria) and returns a partial history with
:attr:`WorkerHistory.failed` set; without one the error propagates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from ..caffe.data import Minibatch
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver
from ..smb import errors as smb_errors
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .config import ShmCaffeConfig
from .termination import TerminationCoordinator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .checkpoint import CheckpointCoordinator
    from .exchange import ExchangeStrategy


class WorkerError(Exception):
    """The worker's protocol was violated or its update thread died."""


class FlushTimeoutError(WorkerError):
    """The update thread failed to flush within the deadline.

    Proceeding would break the eq.-(8) mutual exclusion (the main thread
    would race a still-running flush), so the worker either fails or —
    when it has a termination coordinator — marks itself dead and leaves
    the job to the survivors.
    """


def smb_path_lost(exc: BaseException) -> bool:
    """Is ``exc`` a terminal loss of the worker's SMB path?

    True for direct SMB errors, for errors *caused* by an SMB error (the
    overlap driver wraps flush failures in :class:`WorkerError` with the
    original chained as ``__cause__``), and for a wedged flush
    (:class:`FlushTimeoutError`).  Strategies and the engine share this
    predicate so every layer classifies failures identically.
    """
    return (
        isinstance(exc, smb_errors.SMBError)
        or isinstance(exc.__cause__, smb_errors.SMBError)
        or isinstance(exc, FlushTimeoutError)
    )


@dataclass
class IterationRecord:
    """Per-iteration training telemetry."""

    iteration: int
    loss: float
    learning_rate: float
    exchanged: bool


@dataclass
class WorkerHistory:
    """Everything a worker reports back after a run."""

    rank: int
    records: List[IterationRecord] = field(default_factory=list)
    completed_iterations: int = 0
    #: True when the worker lost its SMB path and degraded out of the job
    #: instead of finishing; ``failure`` carries the terminal error text.
    failed: bool = False
    failure: str = ""
    #: True when the worker left the run because a retire was requested
    #: (elastic membership) rather than because the criterion fired.
    retired: bool = False

    @property
    def losses(self) -> List[float]:
        return [record.loss for record in self.records]


class TrainingEngine:
    """One worker's training loop, parameterized by an exchange strategy.

    The engine owns the model-side state every platform shares — the flat
    parameter view, the SGD solver, the history, the termination hookup —
    and drives the strategy through the loop.  The strategy is bound at
    construction time (``strategy.bind(self)``), which is also where
    strategies perform their buffer-shape validation, so a misconfigured
    worker fails at build time, not mid-run.

    Args:
        rank: Worker rank (rank 0 is the master worker).
        net: The local model replica.
        config: ShmCaffe hyper-parameters.
        batches: Endless minibatch iterator over this worker's data shard.
        strategy: The exchange strategy implementing the platform's
            parameter-sharing rule.
        termination: Shared-progress stop coordinator (optional; when
            absent the engine just runs ``config.max_iterations``).
        on_iteration: Optional callback ``(rank, iteration, stats)`` for
            live monitoring (the convergence experiments use it to
            snapshot accuracy against wall-clock).
        telemetry: Session receiving the eq.-(8) phase timings; defaults
            to the process-wide :func:`repro.telemetry.current` session.
        solver: Pre-built solver to reuse (one is created from
            ``config.solver`` when omitted).
        checkpoint: Optional
            :class:`~repro.core.checkpoint.CheckpointCoordinator`; its
            hook runs after each iteration is recorded and *before*
            progress is published, so a rank's published progress always
            implies its checkpoint state for that boundary is durable.
        start_iteration: Resume point — the loop continues from here
            (the solver, RNG and dataset cursor must have been restored
            to match by the caller).
        retire_signal: Optional zero-argument predicate checked once per
            iteration (after the stop criterion); when it returns True
            the worker drains out of the loop with
            :attr:`WorkerHistory.retired` set — the elastic-membership
            retire path, distinct from both completion and failure.  The
            caller (the trainer's elastic runner) releases the worker's
            control-block slot and registry record afterwards.
    """

    def __init__(
        self,
        rank: int,
        net: Net,
        config: ShmCaffeConfig,
        batches: Iterator[Minibatch],
        strategy: "ExchangeStrategy",
        termination: Optional[TerminationCoordinator] = None,
        on_iteration: Optional[
            Callable[[int, int, Dict[str, float]], None]
        ] = None,
        telemetry: Optional[TelemetrySession] = None,
        solver: Optional[SGDSolver] = None,
        checkpoint: Optional["CheckpointCoordinator"] = None,
        start_iteration: int = 0,
        retire_signal: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.rank = rank
        self.net = net
        self.config = config
        self.flat = FlatParams(net)
        self.solver = solver if solver is not None else SGDSolver(
            net, config.solver
        )
        self.batches = batches
        self.termination = termination
        self.on_iteration = on_iteration
        self.checkpoint = checkpoint
        self.start_iteration = start_iteration
        self.retire_signal = retire_signal
        self.history = WorkerHistory(rank=rank)

        tel = telemetry if telemetry is not None else _telemetry_current()
        self.telemetry = tel
        #: Main-thread phase timer (Fig.-6 trace tid 0); strategies that
        #: overlap their write side get a second timer from their
        #: :class:`~repro.core.overlap.OverlapDriver`.
        self.phases = tel.phase_timer(rank, "main")

        self.strategy = strategy
        strategy.bind(self)

    # -- main loop ------------------------------------------------------------

    def run(self) -> WorkerHistory:
        """Train until the termination criterion fires; returns history.

        A worker whose SMB path dies for good (retries exhausted, closed
        transport, wedged flush) does not crash the job: when a
        termination coordinator is present it marks itself dead in the
        control block — survivors rescale their stop criteria and keep
        training — and returns its partial history with
        :attr:`WorkerHistory.failed` set.  Without a coordinator there is
        nobody to degrade for, so the error propagates.
        """
        strategy = self.strategy
        iteration = self.start_iteration
        try:
            while True:
                exchanged = iteration % self.config.update_interval == 0
                if exchanged:
                    strategy.exchange(iteration)

                stats = strategy.train_step()
                iteration += 1

                self.history.records.append(
                    IterationRecord(
                        iteration=iteration,
                        loss=stats["loss"],
                        learning_rate=stats["lr"],
                        exchanged=exchanged,
                    )
                )
                if self.on_iteration is not None:
                    self.on_iteration(self.rank, iteration, stats)

                if self.checkpoint is not None:
                    # Before should_stop (which publishes progress): a
                    # published boundary must imply a durable state file.
                    self.checkpoint.maybe_checkpoint(iteration, self)

                if strategy.should_stop(iteration):
                    break
                if (
                    self.retire_signal is not None
                    and self.retire_signal()
                ):
                    # Elastic retire: drain out after a full iteration
                    # (progress already published by should_stop), leaving
                    # the criterion decision to the remaining fleet.
                    self.history.retired = True
                    break
        except (smb_errors.SMBError, WorkerError) as exc:
            if not self._degrade(exc, iteration):
                raise
        finally:
            strategy.close()
        self.history.completed_iterations = iteration
        return self.history

    def default_should_stop(self, iteration: int) -> bool:
        """The shared stop rule: publish progress, apply Sec. III-E.

        Strategies without a collective stop decision (everything except
        HSGD's lockstep flag broadcast) delegate here.
        """
        if self.termination is not None:
            self.termination.publish(iteration)
            return self.termination.should_stop(iteration)
        return iteration >= self.config.max_iterations

    # -- degradation -----------------------------------------------------------

    def record_smb_failure(self, exc: BaseException, iteration: int) -> None:
        """Mark this worker dead after a terminal SMB-path loss.

        Sets the history's failure flags, bumps the fault counter, and
        best-effort marks the control-block slot dead so survivors
        rescale; when the control block is unreachable too, survivors
        fall back on the 2x-target backstop.
        """
        self.history.failed = True
        self.history.failure = f"{type(exc).__name__}: {exc}"
        if self.telemetry.enabled:
            self.telemetry.registry.inc(f"worker{self.rank}/faults/fatal")
        if self.termination is not None:
            try:
                self.termination.mark_failed(iteration)
            except smb_errors.SMBError:
                pass

    def _degrade(self, exc: BaseException, iteration: int) -> bool:
        """Try to absorb a terminal SMB failure as graceful worker loss.

        Returns True when the worker marked itself dead (the caller then
        returns the partial history); False when the failure is not an
        SMB-path loss or there is no coordinator to inform.
        """
        if self.termination is None:
            return False
        if self.history.failed:
            # The strategy already recorded the failure (HSGD roots do,
            # to keep group lockstep) and the loop still died; nothing
            # more to record.
            return True
        if not smb_path_lost(exc):
            return False
        self.record_smb_failure(exc, iteration)
        return True
