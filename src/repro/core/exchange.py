"""Pluggable parameter-exchange strategies for the training engine.

Each platform's parameter-sharing rule is one :class:`ExchangeStrategy`
implementation driven by the shared
:class:`~repro.core.engine.TrainingEngine` loop:

* :class:`SEASGDExchange` — the paper's SEASGD (eqs. (5)-(7)), with the
  Fig.-6 write-side overlap when ``config.overlap_updates`` is on;
* :class:`StaleReadExchange` — the ablation that hides the *read* side
  too (the delayed-parameter behaviour the paper refuses);
* :class:`HybridExchange` — HSGD: intra-group ring allreduce, root-only
  SEASGD against the SMB server, weight broadcast back to the group.
  Roots now honor ``overlap_updates`` (the pre-refactor ``HybridWorker``
  forced the exchange synchronous);
* :class:`SMBAsgdExchange` — the :mod:`repro.platforms.asgd` Downpour
  rule ported onto the SMB accumulate primitive, proving the seam admits
  new update rules without a new worker class.

:func:`elastic_increment` is the **only** training-stack call site of the
eqs. (5)-(6) math; every strategy that exchanges elastically goes through
it.  Strategies are typed against
:class:`~repro.smb.buffer.ParameterBuffer`, so they run unchanged on a
single :class:`~repro.smb.client.RemoteArray` or a multi-server
:class:`~repro.smb.sharding.ShardedArray`.

New strategies register under a name with :func:`register_exchange`;
``ShmCaffeConfig.algorithm`` selects one by name through
:func:`make_exchange`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from ..nccl.ring import RingGroup
from ..smb import errors as smb_errors
from ..smb.buffer import ParameterBuffer
from ..telemetry.phases import NullPhaseTimer, PhaseTimer
from .config import ShmCaffeConfig
from .engine import WorkerError, smb_path_lost
from .overlap import OverlapDriver
from .seasgd import apply_increment_local, weight_increment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import TrainingEngine

#: Live-fleet size source for elastic runs, e.g.
#: :meth:`~repro.smb.client.ControlBlock.live_count`.
FleetSource = Callable[[], int]


def elastic_increment(
    local_now: np.ndarray, global_now: np.ndarray, moving_rate: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Eqs. (5)-(6): the increment and the elastically pulled replica.

    This is the single place the training stack computes the SEASGD
    exchange math; strategies differ only in *when* and *where* the
    pieces are applied.  Returns ``(increment, updated_local)`` where
    ``increment = alpha * (W'_x - W_g)`` and
    ``updated_local = W'_x - increment``.
    """
    increment = weight_increment(local_now, global_now, moving_rate)
    return increment, apply_increment_local(local_now, increment)


@runtime_checkable
class ExchangeStrategy(Protocol):
    """What the training engine needs from a parameter-sharing rule."""

    def bind(self, engine: "TrainingEngine") -> None:
        """Attach to the engine; validate buffers against the model."""
        ...

    def exchange(self, iteration: int) -> None:
        """Run one parameter exchange (called every ``update_interval``)."""
        ...

    def train_step(self) -> Dict[str, float]:
        """Run one training iteration; must return ``loss`` and ``lr``."""
        ...

    def should_stop(self, iteration: int) -> bool:
        """Decide (possibly collectively) whether training ends now."""
        ...

    def close(self) -> None:
        """Release strategy resources (e.g. the overlap driver)."""
        ...


class BaseExchange:
    """Shared plumbing: engine binding, default step and stop rules."""

    engine: "TrainingEngine"

    def bind(self, engine: "TrainingEngine") -> None:
        self.engine = engine

    def exchange(self, iteration: int) -> None:
        raise NotImplementedError

    def train_step(self) -> Dict[str, float]:
        """T4-T5: train one minibatch with the local solver."""
        engine = self.engine
        with engine.phases.phase("comp"):
            batch = next(engine.batches)
            return engine.solver.step(batch.as_inputs())

    def should_stop(self, iteration: int) -> bool:
        return self.engine.default_should_stop(iteration)

    def close(self) -> None:
        pass

    # -- shared buffer helpers --------------------------------------------

    @staticmethod
    def check_buffer(buffer: ParameterBuffer, count: int, label: str) -> None:
        """Ctor-time shape validation with the historical error text."""
        if buffer.count != count:
            raise WorkerError(
                f"{label} buffer holds {buffer.count} weights, "
                f"model has {count}"
            )


class SEASGDExchange(BaseExchange):
    """The paper's SEASGD exchange (eqs. (5)-(7)) with Fig.-6 overlap.

    Per exchange: wait for the previous flush (T.A5, the eq.-(8)
    ``block``), read ``W_g`` (T1, ``rgw``), compute the elastic increment
    and pull the replica (T2, ``ulw``), then hand the write side — the
    ``wwi`` segment write and the ``ugw`` server accumulate of eq. (7) —
    to the :class:`~repro.core.overlap.OverlapDriver` (T3) so it hides
    behind the next minibatch.  With ``overlap_updates=False`` the write
    side runs inline on the main thread, giving the deterministic
    single-threaded exchange the correctness tests rely on.

    **Elastic rescaling** (membership-aware fleets): with a ``fleet``
    source the exchange reads the *current* live worker count ``p`` every
    time and applies ``alpha = config.moving_rate / p`` — the EASGD
    stability rule ``alpha = beta / p`` (Zhang et al.) with ``p`` no
    longer a launch-time constant, so eqs. (5)-(7) stay stable while
    workers join and retire mid-run.  Without a ``fleet`` source,
    ``config.moving_rate`` is ``alpha`` directly, bit-exact with the
    historical fixed-fleet behaviour.
    """

    def __init__(
        self,
        global_weights: ParameterBuffer,
        increment_buffer: ParameterBuffer,
        fleet: Optional[FleetSource] = None,
    ) -> None:
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.fleet = fleet
        self.driver: Optional[OverlapDriver] = None
        self._global_scratch: Optional[np.ndarray] = None

    def moving_rate(self) -> float:
        """The alpha applied this exchange (live ``beta / p`` if elastic)."""
        rate = self.engine.config.moving_rate
        if self.fleet is None:
            return rate
        return rate / max(int(self.fleet()), 1)

    def bind(self, engine: "TrainingEngine") -> None:
        super().bind(engine)
        self.check_buffer(self.global_weights, engine.flat.count, "global")
        self.check_buffer(
            self.increment_buffer, engine.flat.count, "increment"
        )
        # One model-sized destination for every W_g read; with the
        # zero-copy SMB path this makes the steady-state exchange
        # allocation-free on the read side.
        self._global_scratch = np.empty(
            self.global_weights.count, dtype=self.global_weights.dtype
        )
        if engine.config.overlap_updates:
            self.driver = OverlapDriver(engine.rank, engine.telemetry)

    def _flush(
        self, increment: np.ndarray, phases: "PhaseTimer | NullPhaseTimer"
    ) -> None:
        """T.A1-T.A3: write dW_x and accumulate it into W_g (eq. (7))."""
        with phases.phase("wwi"):
            self.increment_buffer.write(increment)
        with phases.phase("ugw"):
            self.increment_buffer.accumulate_into(self.global_weights)

    def exchange(self, iteration: int) -> None:
        engine = self.engine
        driver = self.driver
        if driver is not None:
            driver.wait_for_flush(engine.phases)                       # T.A5
        with engine.phases.phase("rgw"):
            global_now = self.global_weights.read(                     # T1
                out=self._global_scratch
            )
        with engine.phases.phase("ulw"):
            local_now = engine.flat.get_vector()
            increment, updated = elastic_increment(                    # T2
                local_now, global_now, self.moving_rate()
            )
            engine.flat.set_vector(updated)
        if driver is not None:
            driver.submit(lambda: self._flush(increment, driver.phases))
        else:
            self._flush(increment, engine.phases)

    def close(self) -> None:
        if self.driver is not None:
            self.driver.stop()


class StaleReadExchange(SEASGDExchange):
    """Ablation: the whole exchange (read included) runs on the driver.

    The replica keeps training on weights that have not yet absorbed the
    global pull — the delayed-parameter behaviour the paper avoids ("the
    learning performance deteriorates due to the delayed parameter
    problem").  Always driven by an :class:`OverlapDriver` regardless of
    ``overlap_updates``: a synchronous stale read would not be stale.
    """

    def bind(self, engine: "TrainingEngine") -> None:
        super().bind(engine)
        if self.driver is None:
            self.driver = OverlapDriver(engine.rank, engine.telemetry)

    def exchange(self, iteration: int) -> None:
        engine = self.engine
        driver = self.driver
        assert driver is not None  # bind() guarantees it
        driver.wait_for_flush(engine.phases)
        local_snapshot = engine.flat.get_vector()

        def deferred() -> None:
            phases = driver.phases
            # The scratch is safe to reuse here: wait_for_flush above
            # guarantees at most one deferred exchange is in flight.
            with phases.phase("rgw"):
                global_now = self.global_weights.read(
                    out=self._global_scratch
                )
            increment, _ = elastic_increment(
                local_snapshot, global_now, self.moving_rate()
            )
            self._flush(increment, phases)
            # Apply to the live replica *late*, racing with training.
            with phases.phase("ulw"):
                engine.flat.add_to_params(increment, scale=-1.0)

        driver.submit(deferred)


class HybridExchange(BaseExchange):
    """HSGD: intra-group SSGD + root-only SEASGD (paper Sec. III-D).

    Group members contribute gradients to the ring allreduce and receive
    the root's post-exchange weights by broadcast; only the root talks to
    the SMB server, through an inner :class:`SEASGDExchange` — which
    means roots inherit the Fig.-6 overlap when ``overlap_updates`` is on
    (the pre-refactor ``HybridWorker`` always exchanged synchronously).

    The root decides termination for the whole group and shares the
    decision through a one-element broadcast so members stop in lockstep;
    on a terminal SMB-path loss the root keeps the lockstep broadcasts
    alive, marks the group dead for the survivors, and winds down.
    """

    def __init__(
        self,
        group: RingGroup,
        group_rank: int,
        global_weights: Optional[ParameterBuffer] = None,
        increment_buffer: Optional[ParameterBuffer] = None,
    ) -> None:
        self.group = group
        self.group_rank = group_rank
        self.is_root = group_rank == 0
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self._inner: Optional[SEASGDExchange] = None
        if self.is_root:
            if global_weights is None or increment_buffer is None:
                raise WorkerError("group root needs SMB buffers")
            self._inner = SEASGDExchange(global_weights, increment_buffer)
        self._smb_failed = False

    @property
    def smb_failed(self) -> bool:
        """True once the root lost its SMB path and the group is winding
        down."""
        return self._smb_failed

    def bind(self, engine: "TrainingEngine") -> None:
        super().bind(engine)
        if self._inner is not None:
            self._inner.bind(engine)

    def _record_smb_failure(self, exc: BaseException, iteration: int) -> None:
        """Root-only: the group's SMB path died; degrade, don't crash.

        The group keeps its intra-node SSGD lockstep (the broadcasts the
        members are blocked on still happen) but stops exchanging with
        the global weights and winds down at the next stop broadcast,
        marked dead in the control block so other groups rescale.
        """
        self._smb_failed = True
        self.engine.record_smb_failure(exc, iteration)

    def exchange(self, iteration: int) -> None:
        """Inter-node SEASGD (root) + intra-group weight broadcast."""
        engine = self.engine
        if self.is_root:
            assert self._inner is not None  # ctor guarantees it for roots
            if not self._smb_failed:
                try:
                    self._inner.exchange(iteration)
                except (smb_errors.SMBError, WorkerError) as exc:
                    # With overlap on, a flush failure surfaces wrapped
                    # in WorkerError at the next wait; classify with the
                    # shared predicate so non-SMB bugs still propagate.
                    if not smb_path_lost(exc):
                        raise
                    self._record_smb_failure(exc, iteration)
            with engine.phases.phase("nccl"):
                synced = self.group.broadcast(
                    self.group_rank, engine.flat.get_vector(), root=0
                )
        else:
            with engine.phases.phase("nccl"):
                synced = self.group.broadcast(self.group_rank, None, root=0)
        engine.flat.set_vector(synced)

    def train_step(self) -> Dict[str, float]:
        """Intra-group synchronous SGD: average gradients, same update."""
        engine = self.engine
        with engine.phases.phase("comp"):
            batch = next(engine.batches)
            stats = engine.solver.compute_gradients(batch.as_inputs())
            gradients = engine.flat.get_grad_vector()
        # The NCCL phase: the intra-group ring allreduce (the part of an
        # HSGD iteration SEASGD never pays).
        with engine.phases.phase("nccl"):
            averaged = self.group.allreduce(
                self.group_rank, gradients, average=True
            )
        with engine.phases.phase("comp"):
            engine.flat.set_grad_vector(averaged)
            lr = engine.solver.learning_rate
            engine.solver.apply_update(lr)
            engine.solver.advance_iteration()
        stats["lr"] = lr
        return stats

    def should_stop(self, iteration: int) -> bool:
        """The root decides for the whole group; members follow the flag."""
        engine = self.engine
        if self.is_root:
            stop = 0.0
            if self._smb_failed:
                # The group cannot exchange with W_g any more; wind down
                # in lockstep (mark_failed already ran).
                stop = 1.0
            elif engine.termination is not None:
                try:
                    engine.termination.publish(iteration)
                    if engine.termination.should_stop(iteration):
                        stop = 1.0
                except smb_errors.SMBError as exc:
                    self._record_smb_failure(exc, iteration)
                    stop = 1.0
            elif iteration >= engine.config.max_iterations:
                stop = 1.0
            flag = self.group.broadcast(
                self.group_rank, np.asarray([stop]), root=0
            )
        else:
            flag = self.group.broadcast(self.group_rank, None, root=0)
        return float(flag[0]) != 0.0

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()


class SMBAsgdExchange(BaseExchange):
    """Downpour ASGD (see :mod:`repro.platforms.asgd`) on SMB primitives.

    The demonstration that the strategy seam admits a genuinely different
    update rule: ``exchange`` *replaces* the replica with ``W_g`` (the
    Downpour fetch; ``update_interval`` plays ``fetch_interval``), and
    every step pushes ``-lr * gradient`` through the worker's private
    segment into the server-side accumulate — apply-on-arrival, no
    elastic averaging.  The write side rides the same
    :class:`OverlapDriver` as SEASGD when ``overlap_updates`` is on.

    Downpour has no per-worker averaging coefficient to rescale, so the
    ``fleet`` source is accepted (elastic runs build every strategy the
    same way) but unused: the update rule is natively elastic.
    """

    def __init__(
        self,
        global_weights: ParameterBuffer,
        increment_buffer: ParameterBuffer,
        fleet: Optional[FleetSource] = None,
    ) -> None:
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.fleet = fleet
        self.driver: Optional[OverlapDriver] = None
        self._global_scratch: Optional[np.ndarray] = None

    def bind(self, engine: "TrainingEngine") -> None:
        super().bind(engine)
        self.check_buffer(self.global_weights, engine.flat.count, "global")
        self.check_buffer(
            self.increment_buffer, engine.flat.count, "increment"
        )
        self._global_scratch = np.empty(
            self.global_weights.count, dtype=self.global_weights.dtype
        )
        if engine.config.overlap_updates:
            self.driver = OverlapDriver(engine.rank, engine.telemetry)

    def _push(
        self, delta: np.ndarray, phases: "PhaseTimer | NullPhaseTimer"
    ) -> None:
        with phases.phase("wwi"):
            self.increment_buffer.write(delta)
        with phases.phase("ugw"):
            self.increment_buffer.accumulate_into(self.global_weights)

    def exchange(self, iteration: int) -> None:
        """The Downpour fetch: replace the replica with the server state."""
        engine = self.engine
        if self.driver is not None:
            self.driver.wait_for_flush(engine.phases)
        with engine.phases.phase("rgw"):
            global_now = self.global_weights.read(out=self._global_scratch)
        with engine.phases.phase("ulw"):
            engine.flat.set_vector(global_now)

    def train_step(self) -> Dict[str, float]:
        """Compute a gradient, push ``-lr * g``, step the local replica."""
        engine = self.engine
        with engine.phases.phase("comp"):
            batch = next(engine.batches)
            stats = engine.solver.compute_gradients(batch.as_inputs())
            lr = engine.solver.learning_rate
            delta = (-lr * engine.flat.get_grad_vector()).astype(np.float32)
        driver = self.driver
        if driver is not None:
            driver.wait_for_flush(engine.phases)
            driver.submit(lambda: self._push(delta, driver.phases))
        else:
            self._push(delta, engine.phases)
        # The local replica also steps so inter-fetch iterations make
        # progress (Downpour keeps training between fetches).
        with engine.phases.phase("comp"):
            engine.solver.apply_update(lr)
            engine.solver.advance_iteration()
        stats["lr"] = lr
        return stats

    def close(self) -> None:
        if self.driver is not None:
            self.driver.stop()


#: Registry of named exchange strategies for SEASGD-style participants
#: (one worker, two SMB buffers, optionally a live-fleet source for
#: elastic runs).  ``ShmCaffeConfig.algorithm`` selects by name; third
#: parties extend it with :func:`register_exchange`.
EXCHANGES: Dict[str, Callable[..., BaseExchange]] = {}


def register_exchange(
    name: str,
    factory: Callable[..., BaseExchange],
) -> None:
    """Register a strategy factory under ``config.algorithm`` name."""
    EXCHANGES[name] = factory


register_exchange("seasgd", SEASGDExchange)
register_exchange("smb_asgd", SMBAsgdExchange)


def make_exchange(
    config: ShmCaffeConfig,
    global_weights: ParameterBuffer,
    increment_buffer: ParameterBuffer,
    fleet: Optional[FleetSource] = None,
) -> BaseExchange:
    """Build the configured strategy for a direct SMB participant.

    ``fleet`` (elastic runs) is forwarded to the factory; a registered
    strategy that cannot take one rejects elastic membership loudly.
    """
    if config.stale_global_read:
        if config.algorithm != "seasgd":
            raise ValueError(
                "stale_global_read is a SEASGD ablation; it cannot be "
                f"combined with algorithm={config.algorithm!r}"
            )
        return StaleReadExchange(global_weights, increment_buffer, fleet)
    try:
        factory = EXCHANGES[config.algorithm]
    except KeyError:
        raise ValueError(
            f"unknown exchange algorithm {config.algorithm!r}; "
            f"registered: {sorted(EXCHANGES)}"
        ) from None
    if fleet is None:
        return factory(global_weights, increment_buffer)
    try:
        return factory(global_weights, increment_buffer, fleet=fleet)
    except TypeError:
        raise ValueError(
            f"algorithm {config.algorithm!r} does not support elastic "
            "membership (its factory takes no fleet source)"
        ) from None
