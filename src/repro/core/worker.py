"""The ShmCaffe worker: SEASGD training with the Fig. 6 overlap protocol.

Each worker runs two threads:

* **main_thread** — per iteration: read the global weights from SMB (T1),
  compute the weight increment and pull the local replica toward the
  global weights (T2, eqs. (5)-(6)), wake the update_thread (T3), train a
  minibatch (T4) and apply the local SGD update (T5).
* **update_thread** — on wake: write the increment to this worker's
  private SMB segment (T.A1) and request the server-side accumulate into
  the global weights (T.A2-T.A4, eq. (7)).

The two sides ping-pong on a pair of events, giving exactly the paper's
mutual exclusion: the main thread blocks before the next T1/T2 until the
update thread has finished flushing (T.A5), so the *write* side hides
behind computation while the *read* side is deliberately synchronous (the
paper refuses to hide it to avoid stale parameters).  Setting
``overlap_updates=False`` degenerates to a single-threaded, deterministic
exchange used by correctness tests; ``stale_global_read=True`` is the
ablation that hides the read too and demonstrably hurts accuracy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from ..caffe.data import Minibatch
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver
from ..smb import errors as smb_errors
from ..smb.client import RemoteArray
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .config import ShmCaffeConfig
from .seasgd import apply_increment_local, weight_increment
from .termination import TerminationCoordinator


class WorkerError(Exception):
    """The worker's protocol was violated or its update thread died."""


class FlushTimeoutError(WorkerError):
    """The update thread failed to flush within the deadline.

    Proceeding would break the eq.-(8) mutual exclusion (the main thread
    would race a still-running flush), so the worker either fails or —
    when it has a termination coordinator — marks itself dead and leaves
    the job to the survivors.
    """


@dataclass
class IterationRecord:
    """Per-iteration training telemetry."""

    iteration: int
    loss: float
    learning_rate: float
    exchanged: bool


@dataclass
class WorkerHistory:
    """Everything a worker reports back after a run."""

    rank: int
    records: List[IterationRecord] = field(default_factory=list)
    completed_iterations: int = 0
    #: True when the worker lost its SMB path and degraded out of the job
    #: instead of finishing; ``failure`` carries the terminal error text.
    failed: bool = False
    failure: str = ""

    @property
    def losses(self) -> List[float]:
        return [record.loss for record in self.records]


class ShmCaffeWorker:
    """One SEASGD worker (an MPI process in the paper; a thread here).

    Args:
        rank: Worker rank (rank 0 is the master worker).
        net: The local model replica.
        config: ShmCaffe hyper-parameters.
        global_weights: Attached SMB view of the shared ``W_g`` segment.
        increment_buffer: This worker's private ``dW_x`` SMB segment.
        batches: Endless minibatch iterator over this worker's data shard.
        termination: Shared-progress stop coordinator (optional; when
            absent the worker just runs ``config.max_iterations``).
        on_iteration: Optional callback ``(rank, iteration, stats)`` for
            live monitoring (the convergence experiments use it to snapshot
            accuracy against wall-clock).
        telemetry: Session receiving the eq.-(8) phase timings (``comp``,
            ``wwi``, ``ugw``, ``rgw``, ``ulw``, ``block``); defaults to
            the process-wide :func:`repro.telemetry.current` session.
    """

    def __init__(
        self,
        rank: int,
        net: Net,
        config: ShmCaffeConfig,
        global_weights: RemoteArray,
        increment_buffer: RemoteArray,
        batches: Iterator[Minibatch],
        termination: Optional[TerminationCoordinator] = None,
        on_iteration: Optional[Callable[[int, int, Dict[str, float]], None]] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.rank = rank
        self.net = net
        self.config = config
        self.flat = FlatParams(net)
        if global_weights.count != self.flat.count:
            raise WorkerError(
                f"global buffer holds {global_weights.count} weights, "
                f"model has {self.flat.count}"
            )
        if increment_buffer.count != self.flat.count:
            raise WorkerError(
                f"increment buffer holds {increment_buffer.count} weights, "
                f"model has {self.flat.count}"
            )
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.solver = SGDSolver(net, config.solver)
        self.batches = batches
        self.termination = termination
        self.on_iteration = on_iteration
        self.history = WorkerHistory(rank=rank)

        tel = telemetry if telemetry is not None else _telemetry_current()
        self._telemetry = tel
        # Two timers, one per Fig.-6 thread: phase histograms are shared
        # per worker, trace spans land on separate main/update tracks.
        self._phases = tel.phase_timer(rank, "main")
        self._flush_phases = tel.phase_timer(rank, "update")

        self._pending_increment: Optional[np.ndarray] = None
        self._wake = threading.Event()
        self._flushed = threading.Event()
        self._flushed.set()  # nothing in flight initially
        self._shutdown = threading.Event()
        self._update_error: Optional[BaseException] = None
        self._update_thread: Optional[threading.Thread] = None

    # -- update thread (T.A1-T.A4) ----------------------------------------

    def _update_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._shutdown.is_set():
                return
            try:
                increment = self._pending_increment
                if increment is None:
                    raise WorkerError("update thread woken with no increment")
                self._pending_increment = None
                with self._flush_phases.phase("wwi"):                  # T.A1
                    self.increment_buffer.write(increment)
                with self._flush_phases.phase("ugw"):                  # T.A2-3
                    self.increment_buffer.accumulate_into(
                        self.global_weights
                    )
            except BaseException as exc:  # noqa: BLE001 - report to main
                self._update_error = exc
                self._flushed.set()
                return
            self._flushed.set()                                        # T.A4

    def _ensure_update_thread(self) -> None:
        if self._update_thread is None:
            self._update_thread = threading.Thread(
                target=self._update_loop,
                name=f"shmcaffe-update-{self.rank}",
                daemon=True,
            )
            self._update_thread.start()

    #: Longest the main thread will wait for the update thread to flush
    #: before declaring the eq.-(8) mutual exclusion broken.
    FLUSH_TIMEOUT = 60.0

    def _wait_for_flush(self) -> None:
        """T.A5: block until the previous exchange reached the server.

        A flush that never lands (update thread wedged on a dead SMB
        path) must not let the main thread proceed — that would race the
        flush and break the mutual exclusion — so the bounded wait's
        result is checked and a timeout is an error.
        """
        with self._phases.phase("block"):
            flushed = self._flushed.wait(timeout=self.FLUSH_TIMEOUT)
        if self._update_error is not None:
            raise WorkerError(
                f"update thread failed: {self._update_error}"
            ) from self._update_error
        if not flushed:
            raise FlushTimeoutError(
                f"update thread did not flush within "
                f"{self.FLUSH_TIMEOUT:.0f}s"
            )

    # -- exchange (T1-T3) ---------------------------------------------------

    def _exchange(self) -> None:
        """Read W_g, elastic-update the replica, hand dW_x to the flusher."""
        self._wait_for_flush()
        with self._phases.phase("rgw"):
            global_now = self.global_weights.read()                    # T1
        with self._phases.phase("ulw"):
            local_now = self.flat.get_vector()
            increment = weight_increment(                              # T2
                local_now, global_now, self.config.moving_rate
            )
            self.flat.set_vector(
                apply_increment_local(local_now, increment)
            )

        if self.config.overlap_updates:
            self._ensure_update_thread()
            self._pending_increment = increment
            self._flushed.clear()
            self._wake.set()                                           # T3
        else:
            with self._phases.phase("wwi"):
                self.increment_buffer.write(increment)
            with self._phases.phase("ugw"):
                self.increment_buffer.accumulate_into(self.global_weights)

    def _exchange_stale(self) -> None:
        """Ablation: whole exchange (read included) runs on the flusher.

        The replica keeps training on weights that have not yet absorbed
        the global pull — the delayed-parameter behaviour the paper avoids.
        """
        self._wait_for_flush()
        local_snapshot = self.flat.get_vector()

        def deferred() -> None:
            with self._flush_phases.phase("rgw"):
                global_now = self.global_weights.read()
            increment = weight_increment(
                local_snapshot, global_now, self.config.moving_rate
            )
            with self._flush_phases.phase("wwi"):
                self.increment_buffer.write(increment)
            with self._flush_phases.phase("ugw"):
                self.increment_buffer.accumulate_into(self.global_weights)
            # Apply to the live replica *late*, racing with training.
            with self._flush_phases.phase("ulw"):
                self.flat.add_to_params(increment, scale=-1.0)

        self._flushed.clear()
        self._run_stale_async(deferred)

    def _run_stale_async(self, deferred) -> None:
        def runner() -> None:
            try:
                deferred()
            except BaseException as exc:  # noqa: BLE001
                self._update_error = exc
            finally:
                self._flushed.set()

        threading.Thread(
            target=runner, name=f"shmcaffe-stale-{self.rank}", daemon=True
        ).start()

    # -- main loop ------------------------------------------------------------

    def run(self) -> WorkerHistory:
        """Train until the termination criterion fires; returns history.

        A worker whose SMB path dies for good (retries exhausted, closed
        transport, wedged flush) does not crash the job: when a
        termination coordinator is present it marks itself dead in the
        control block — survivors rescale their stop criteria and keep
        training — and returns its partial history with
        :attr:`WorkerHistory.failed` set.  Without a coordinator there is
        nobody to degrade for, so the error propagates.
        """
        iteration = 0
        try:
            while True:
                exchanged = iteration % self.config.update_interval == 0
                if exchanged:
                    if self.config.stale_global_read:
                        self._exchange_stale()
                    else:
                        self._exchange()

                with self._phases.phase("comp"):
                    batch = next(self.batches)                         # T4
                    stats = self.solver.step(batch.as_inputs())        # T5
                iteration += 1

                self.history.records.append(
                    IterationRecord(
                        iteration=iteration,
                        loss=stats["loss"],
                        learning_rate=stats["lr"],
                        exchanged=exchanged,
                    )
                )
                if self.on_iteration is not None:
                    self.on_iteration(self.rank, iteration, stats)

                if self.termination is not None:
                    self.termination.publish(iteration)
                    if self.termination.should_stop(iteration):
                        break
                elif iteration >= self.config.max_iterations:
                    break
        except (smb_errors.SMBError, WorkerError) as exc:
            if not self._degrade(exc, iteration):
                raise
        finally:
            self._stop_update_thread()
        self.history.completed_iterations = iteration
        return self.history

    def _degrade(self, exc: BaseException, iteration: int) -> bool:
        """Try to absorb a terminal SMB failure as graceful worker loss.

        Returns True when the worker marked itself dead (the caller then
        returns the partial history); False when the failure is not an
        SMB-path loss or there is no coordinator to inform.
        """
        if self.termination is None:
            return False
        smb_dead = isinstance(exc, smb_errors.SMBError) or isinstance(
            exc.__cause__, smb_errors.SMBError
        ) or isinstance(exc, FlushTimeoutError)
        if not smb_dead:
            return False
        self.history.failed = True
        self.history.failure = f"{type(exc).__name__}: {exc}"
        tel = self._telemetry
        if tel.enabled:
            tel.registry.inc(f"worker{self.rank}/faults/fatal")
        try:
            self.termination.mark_failed(iteration)
        except smb_errors.SMBError:
            # The control block is unreachable too; survivors will rely
            # on the 2x-target backstop instead of an explicit marker.
            pass
        return True

    def _stop_update_thread(self) -> None:
        """Drain the update thread; never hang shutdown on a dead flush.

        The bounded waits mean a wedged flush (e.g. SMB path gone) leaves
        at worst one daemon thread behind instead of blocking the main
        thread forever; its eventual error is already captured in
        ``_update_error`` / the degradation path.
        """
        self._flushed.wait(timeout=30.0)
        self._shutdown.set()
        self._wake.set()
        if self._update_thread is not None:
            self._update_thread.join(timeout=5.0)
