"""Back-compat facade: ``ShmCaffeWorker`` on top of the unified engine.

The SEASGD worker of paper Fig. 6 is now the composition of three layers:
the :class:`~repro.core.engine.TrainingEngine` iteration loop, a
:class:`~repro.core.exchange.SEASGDExchange` (or the
:class:`~repro.core.exchange.StaleReadExchange` ablation, or any strategy
selected by ``config.algorithm``), and — when ``overlap_updates`` is on —
the :class:`~repro.core.overlap.OverlapDriver` update thread.  This module
keeps the historical one-class construction surface: build a
``ShmCaffeWorker`` from buffers and a batch stream, call :meth:`run`.

``IterationRecord``/``WorkerHistory``/``WorkerError``/``FlushTimeoutError``
live in :mod:`repro.core.engine` now and are re-exported here unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from ..caffe.data import Minibatch
from ..caffe.net import Net
from ..smb.buffer import ParameterBuffer
from ..telemetry import TelemetrySession
from .config import ShmCaffeConfig
from .engine import (
    FlushTimeoutError,
    IterationRecord,
    TrainingEngine,
    WorkerError,
    WorkerHistory,
)
from .exchange import make_exchange
from .overlap import OverlapDriver
from .termination import TerminationCoordinator

__all__ = [
    "FlushTimeoutError",
    "IterationRecord",
    "ShmCaffeWorker",
    "WorkerError",
    "WorkerHistory",
]


class ShmCaffeWorker:
    """One SEASGD worker (an MPI process in the paper; a thread here).

    Thin facade over :class:`~repro.core.engine.TrainingEngine` with the
    strategy chosen by ``config`` (``algorithm`` / ``stale_global_read``).
    Buffer-shape validation still happens at construction time.

    Args:
        rank: Worker rank (rank 0 is the master worker).
        net: The local model replica.
        config: ShmCaffe hyper-parameters.
        global_weights: Attached SMB view of the shared ``W_g`` segment.
        increment_buffer: This worker's private ``dW_x`` SMB segment.
        batches: Endless minibatch iterator over this worker's data shard.
        termination: Shared-progress stop coordinator (optional; when
            absent the worker just runs ``config.max_iterations``).
        on_iteration: Optional callback ``(rank, iteration, stats)`` for
            live monitoring (the convergence experiments use it to snapshot
            accuracy against wall-clock).
        telemetry: Session receiving the eq.-(8) phase timings (``comp``,
            ``wwi``, ``ugw``, ``rgw``, ``ulw``, ``block``); defaults to
            the process-wide :func:`repro.telemetry.current` session.
    """

    #: Longest the main thread will wait for the update thread to flush
    #: before declaring the eq.-(8) mutual exclusion broken.
    FLUSH_TIMEOUT = OverlapDriver.FLUSH_TIMEOUT

    def __init__(
        self,
        rank: int,
        net: Net,
        config: ShmCaffeConfig,
        global_weights: ParameterBuffer,
        increment_buffer: ParameterBuffer,
        batches: Iterator[Minibatch],
        termination: Optional[TerminationCoordinator] = None,
        on_iteration: Optional[
            Callable[[int, int, Dict[str, float]], None]
        ] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.strategy = make_exchange(
            config,
            global_weights=global_weights,
            increment_buffer=increment_buffer,
        )
        self.on_iteration = on_iteration
        self._engine = TrainingEngine(
            rank=rank,
            net=net,
            config=config,
            batches=batches,
            strategy=self.strategy,
            termination=termination,
            on_iteration=on_iteration,
            telemetry=telemetry,
        )

    # -- engine state, exposed under the historical names -------------------

    @property
    def rank(self) -> int:
        return self._engine.rank

    @property
    def net(self) -> Net:
        return self._engine.net

    @property
    def config(self) -> ShmCaffeConfig:
        return self._engine.config

    @property
    def flat(self):
        return self._engine.flat

    @property
    def solver(self):
        return self._engine.solver

    @property
    def batches(self) -> Iterator[Minibatch]:
        return self._engine.batches

    @property
    def termination(self) -> Optional[TerminationCoordinator]:
        return self._engine.termination

    @property
    def history(self) -> WorkerHistory:
        return self._engine.history

    def run(self) -> WorkerHistory:
        """Train until the termination criterion fires; returns history."""
        # ``on_iteration`` is historically assignable after construction.
        self._engine.on_iteration = self.on_iteration
        return self._engine.run()
