"""ShmCaffe core: SEASGD, the Fig. 6 worker protocol, Hybrid SGD, and the
distributed training manager.

This package is the paper's primary contribution.  The substrates it rides
on live in :mod:`repro.smb` (remote shared memory), :mod:`repro.mpi`
(bring-up and baselines), :mod:`repro.nccl` (intra-group collectives) and
:mod:`repro.caffe` (the deep-learning engine).
"""

from .config import ShmCaffeConfig, TerminationCriterion
from .hybrid import HybridWorker
from .seasgd import (
    apply_increment_global,
    apply_increment_local,
    easgd_server_update,
    easgd_worker_update,
    seasgd_exchange,
    weight_increment,
)
from .termination import (
    STOP_FIRST_FINISHER,
    STOP_MASTER_DONE,
    TerminationCoordinator,
)
from .trainer import DistributedTrainingManager, TrainingResult
from .worker import (
    FlushTimeoutError,
    IterationRecord,
    ShmCaffeWorker,
    WorkerError,
    WorkerHistory,
)

__all__ = [
    "DistributedTrainingManager",
    "FlushTimeoutError",
    "HybridWorker",
    "IterationRecord",
    "STOP_FIRST_FINISHER",
    "STOP_MASTER_DONE",
    "ShmCaffeConfig",
    "ShmCaffeWorker",
    "TerminationCoordinator",
    "TerminationCriterion",
    "TrainingResult",
    "WorkerError",
    "WorkerHistory",
    "apply_increment_global",
    "apply_increment_local",
    "easgd_server_update",
    "easgd_worker_update",
    "seasgd_exchange",
    "weight_increment",
]
