"""ShmCaffe core: SEASGD, the Fig. 6 worker protocol, Hybrid SGD, and the
distributed training manager.

This package is the paper's primary contribution.  The substrates it rides
on live in :mod:`repro.smb` (remote shared memory), :mod:`repro.mpi`
(bring-up and baselines), :mod:`repro.nccl` (intra-group collectives) and
:mod:`repro.caffe` (the deep-learning engine).

The training core is layered (see ``docs/architecture.md``):
:class:`TrainingEngine` owns the iteration loop, an
:class:`ExchangeStrategy` owns the parameter-sharing rule, and the
:class:`OverlapDriver` owns the Fig.-6 update thread.  ``ShmCaffeWorker``
and ``HybridWorker`` remain as thin construction facades.
"""

from .autoscale import (
    AutoscaleController,
    AutoscalePolicy,
    AutoscaleSupervisor,
    FleetSignals,
    ScaleDecision,
)
from .checkpoint import (
    CheckpointCoordinator,
    CheckpointError,
    CheckpointInfo,
    inspect_checkpoint,
    latest_checkpoint,
)
from .config import ShmCaffeConfig, TerminationCriterion
from .engine import (
    FlushTimeoutError,
    IterationRecord,
    TrainingEngine,
    WorkerError,
    WorkerHistory,
    smb_path_lost,
)
from .exchange import (
    EXCHANGES,
    BaseExchange,
    ExchangeStrategy,
    HybridExchange,
    SEASGDExchange,
    SMBAsgdExchange,
    StaleReadExchange,
    elastic_increment,
    make_exchange,
    register_exchange,
)
from .hybrid import HybridWorker
from .overlap import OverlapDriver
from .seasgd import (
    apply_increment_global,
    apply_increment_local,
    easgd_server_update,
    easgd_worker_update,
    seasgd_exchange,
    weight_increment,
)
from .termination import (
    STOP_FIRST_FINISHER,
    STOP_MASTER_DONE,
    TerminationCoordinator,
)
from .trainer import (
    DistributedTrainingManager,
    ElasticWorkerHandle,
    TrainingResult,
)
from .worker import ShmCaffeWorker

__all__ = [
    "AutoscaleController",
    "AutoscalePolicy",
    "AutoscaleSupervisor",
    "BaseExchange",
    "CheckpointCoordinator",
    "CheckpointError",
    "CheckpointInfo",
    "DistributedTrainingManager",
    "EXCHANGES",
    "ElasticWorkerHandle",
    "ExchangeStrategy",
    "FleetSignals",
    "FlushTimeoutError",
    "HybridExchange",
    "HybridWorker",
    "IterationRecord",
    "OverlapDriver",
    "STOP_FIRST_FINISHER",
    "STOP_MASTER_DONE",
    "ScaleDecision",
    "SEASGDExchange",
    "SMBAsgdExchange",
    "ShmCaffeConfig",
    "ShmCaffeWorker",
    "StaleReadExchange",
    "TerminationCoordinator",
    "TerminationCriterion",
    "TrainingEngine",
    "TrainingResult",
    "WorkerError",
    "WorkerHistory",
    "apply_increment_global",
    "apply_increment_local",
    "easgd_server_update",
    "easgd_worker_update",
    "elastic_increment",
    "inspect_checkpoint",
    "latest_checkpoint",
    "make_exchange",
    "register_exchange",
    "seasgd_exchange",
    "smb_path_lost",
    "weight_increment",
]
