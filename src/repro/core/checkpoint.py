"""Coordinated distributed checkpoints for a ShmCaffe job.

The SMB journal (:mod:`repro.smb.journal`) makes the *parameter box*
durable; this module makes the *job* durable.  A checkpoint of a
distributed run is three things captured together at an iteration
boundary:

* the global weights ``W_g`` (the EASGD elastic centre),
* every rank's solver state — local weights, momentum history,
  iteration counter, RNG state, dataset cursor (see
  :mod:`repro.caffe.snapshot`),
* the fleet's ``Iter_x`` progress counters.

Consistency comes from the existing SMB control segment, used as the
checkpoint barrier: each rank writes its own state file *before*
publishing progress for the boundary iteration, and the master waits
(:meth:`~repro.core.termination.TerminationCoordinator.wait_for_fleet`)
until every live rank has published at least the boundary before it
reads ``W_g`` and seals the checkpoint with its manifest.  The manifest
is written last and atomically, so its presence marks a complete,
loadable checkpoint — a crash mid-checkpoint leaves the previous
generation intact.

Layout of a checkpoint directory::

    <dir>/seq-00000003/rank0000.state.npz
    <dir>/seq-00000003/rank0001.state.npz
    <dir>/seq-00000003/global.npz
    <dir>/seq-00000003/manifest.json     <- written last; completeness marker

Asynchronous workers drift, so a checkpoint is *boundary-consistent*,
not a strict cut: ``W_g`` is read after every live rank passed the
boundary and may contain a few extra accumulates from fast ranks.
EASGD's bounded-perturbation tolerance makes that algorithmically sound
(the same argument that justifies the SMB journal's lost-delta bound).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from ..caffe.snapshot import save_solver_state
from ..smb.client import RemoteArray
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .termination import TerminationCoordinator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import TrainingEngine

logger = logging.getLogger(__name__)

PathLike = Union[str, os.PathLike]

CHECKPOINT_FORMAT = 1
SEQ_PATTERN = "seq-{seq:08d}"
RANK_STATE_PATTERN = "rank{rank:04d}.state.npz"
GLOBAL_NAME = "global.npz"
MANIFEST_NAME = "manifest.json"


class CheckpointError(Exception):
    """A checkpoint directory was missing, incomplete, or mismatched."""


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CheckpointInfo:
    """One complete checkpoint generation, as found on disk."""

    directory: Path
    seq: int
    iteration: int
    num_workers: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    barrier_ok: bool = True

    @property
    def global_path(self) -> Path:
        return self.directory / GLOBAL_NAME

    def rank_state_path(self, rank: int) -> Path:
        return self.directory / RANK_STATE_PATTERN.format(rank=rank)

    def load_global_weights(self) -> np.ndarray:
        """The checkpointed ``W_g`` as a flat float32 vector."""
        with np.load(self.global_path) as archive:
            return archive["W_g"].astype(np.float32, copy=True)


def latest_checkpoint(directory: PathLike) -> Optional[CheckpointInfo]:
    """Newest *complete* checkpoint under ``directory``, or ``None``.

    Only generations whose manifest exists and parses are candidates —
    an interrupted checkpoint (no manifest yet) is invisible, which is
    exactly the crash-safety contract.
    """
    root = Path(directory)
    if not root.is_dir():
        return None
    best: Optional[CheckpointInfo] = None
    for seq_dir in sorted(root.glob("seq-*")):
        manifest = seq_dir / MANIFEST_NAME
        try:
            body = json.loads(manifest.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if body.get("format") != CHECKPOINT_FORMAT:
            continue
        info = CheckpointInfo(
            directory=seq_dir,
            seq=int(body["seq"]),
            iteration=int(body["iteration"]),
            num_workers=int(body["num_workers"]),
            metadata=dict(body.get("metadata", {})),
            barrier_ok=bool(body.get("barrier_ok", True)),
        )
        if best is None or info.seq > best.seq:
            best = info
    return best


def inspect_checkpoint(directory: PathLike) -> Dict[str, Any]:
    """Human-oriented summary of a checkpoint directory (CLI helper)."""
    root = Path(directory)
    generations: List[Dict[str, Any]] = []
    for seq_dir in sorted(root.glob("seq-*")):
        manifest = seq_dir / MANIFEST_NAME
        entry: Dict[str, Any] = {"path": str(seq_dir)}
        try:
            body = json.loads(manifest.read_text())
            entry.update(
                seq=body.get("seq"),
                iteration=body.get("iteration"),
                num_workers=body.get("num_workers"),
                barrier_ok=body.get("barrier_ok", True),
                complete=True,
            )
        except (OSError, json.JSONDecodeError):
            entry["complete"] = False
        entry["rank_states"] = sorted(
            p.name for p in seq_dir.glob("rank*.state.npz")
        )
        entry["has_global"] = (seq_dir / GLOBAL_NAME).exists()
        generations.append(entry)
    latest = latest_checkpoint(root)
    return {
        "directory": str(root),
        "generations": generations,
        "latest": None if latest is None else {
            "seq": latest.seq,
            "iteration": latest.iteration,
            "num_workers": latest.num_workers,
            "metadata": latest.metadata,
        },
    }


class CheckpointCoordinator:
    """One rank's participation in coordinated checkpointing.

    Every rank holds its own coordinator over a shared directory.  At
    each boundary (``iteration % every == 0``) the rank saves its solver
    state; the master additionally waits for the fleet barrier, reads
    ``W_g`` and seals the generation with the manifest.

    Args:
        directory: Shared checkpoint root (created if missing).
        every: Boundary interval in iterations; ``<= 0`` disables.
        rank: This worker's rank (rank 0 seals generations).
        num_workers: Fleet size recorded in (and checked against)
            manifests.
        global_weights: The master's ``W_g`` view; required on rank 0.
        termination: The rank's stop coordinator, reused as the barrier
            (master only needs it, but passing it everywhere is fine).
        metadata: Arbitrary JSON-serialisable job description stored in
            each manifest so ``repro checkpoint resume`` can rebuild the
            run without the original command line.
        barrier_timeout: Upper bound on the master's fleet wait; on
            timeout a best-effort checkpoint is still written and marked
            ``barrier_ok: false``.
    """

    def __init__(
        self,
        directory: PathLike,
        every: int,
        rank: int,
        num_workers: int,
        global_weights: Optional[RemoteArray] = None,
        termination: Optional[TerminationCoordinator] = None,
        metadata: Optional[Dict[str, Any]] = None,
        barrier_timeout: float = 120.0,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        if rank == 0 and every > 0 and global_weights is None:
            raise ValueError(
                "rank 0 needs the W_g RemoteArray to seal checkpoints"
            )
        self.directory = Path(directory)
        self.every = every
        self.rank = rank
        self.num_workers = num_workers
        self.global_weights = global_weights
        self.termination = termination
        self.metadata = dict(metadata or {})
        self.barrier_timeout = barrier_timeout
        self._telemetry = telemetry
        self.saved: List[int] = []

    # -- engine hook -------------------------------------------------------

    def maybe_checkpoint(
        self, iteration: int, engine: "TrainingEngine"
    ) -> bool:
        """Called by the engine after each iteration, *before* progress is
        published — the ordering that makes the control-segment barrier a
        durability barrier.  Returns True when a boundary was saved."""
        if self.every <= 0 or iteration % self.every != 0:
            return False
        self.save_rank_state(iteration, engine)
        if self.rank == 0:
            # The master publishes its boundary progress eagerly (its
            # state file is already durable), then waits for the rest of
            # the live fleet before sealing.
            if self.termination is not None:
                self.termination.publish(iteration)
            self.seal(iteration)
        return True

    # -- pieces ------------------------------------------------------------

    def save_rank_state(
        self, iteration: int, engine: "TrainingEngine"
    ) -> Path:
        """Atomically write this rank's solver state for a boundary."""
        seq_dir = self.directory / SEQ_PATTERN.format(seq=self._seq(iteration))
        seq_dir.mkdir(parents=True, exist_ok=True)
        path = seq_dir / RANK_STATE_PATTERN.format(rank=self.rank)
        fd, tmp = tempfile.mkstemp(
            dir=str(seq_dir), prefix=path.name, suffix=".tmp"
        )
        try:
            # Write through the open handle (np.savez would append .npz
            # to a bare path and sidestep the atomic-rename dance).  The
            # dataset cursor equals completed iterations: the engine
            # consumes exactly one minibatch per train_step.
            with os.fdopen(fd, "wb") as handle:
                save_solver_state(engine.solver, handle, cursor=iteration)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.saved.append(iteration)
        tel = self._tel()
        if tel.enabled:
            tel.registry.inc(f"worker{self.rank}/checkpoints")
        return path

    def seal(self, iteration: int) -> Path:
        """Master-side: barrier, read ``W_g``, write global + manifest."""
        assert self.global_weights is not None
        barrier_ok = True
        if self.termination is not None and self.num_workers > 1:
            barrier_ok = self.termination.wait_for_fleet(
                iteration, timeout=self.barrier_timeout
            )
            if not barrier_ok:
                logger.warning(
                    "checkpoint barrier at iteration %d did not converge "
                    "within %.1fs; sealing best-effort",
                    iteration, self.barrier_timeout,
                )
        seq = self._seq(iteration)
        seq_dir = self.directory / SEQ_PATTERN.format(seq=seq)
        seq_dir.mkdir(parents=True, exist_ok=True)
        global_path = seq_dir / GLOBAL_NAME
        fd, tmp = tempfile.mkstemp(
            dir=str(seq_dir), prefix=GLOBAL_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, W_g=self.global_weights.read())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, global_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "seq": seq,
            "iteration": iteration,
            "every": self.every,
            "num_workers": self.num_workers,
            "barrier_ok": barrier_ok,
            "rank_states": sorted(
                p.name for p in seq_dir.glob("rank*.state.npz")
            ),
            "metadata": self.metadata,
        }
        _atomic_write_bytes(
            seq_dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2).encode(),
        )
        tel = self._tel()
        if tel.enabled:
            tel.registry.inc("run/checkpoints")
            tel.registry.set("run/checkpoints/last_iteration", iteration)
        logger.info("sealed checkpoint seq %d at iteration %d", seq, iteration)
        return seq_dir

    def _seq(self, iteration: int) -> int:
        return iteration // self.every if self.every > 0 else 0

    def _tel(self) -> TelemetrySession:
        if self._telemetry is not None:
            return self._telemetry
        return _telemetry_current()
