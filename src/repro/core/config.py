"""Hyper-parameters of ShmCaffe training.

ShmCaffe "supports all hyper-parameters supported by Caffe and additionally
supports two hyper-parameters: update_interval and moving_rate" (paper
Sec. III-A).  :class:`ShmCaffeConfig` bundles those two with the wrapped
Caffe solver configuration and the distributed-run knobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..caffe.solver import SolverConfig


class TerminationCriterion(enum.Enum):
    """The three end-of-training alignment rules of paper Sec. III-E."""

    #: 1) all workers finish when the master worker terminates.
    MASTER_STOP = "master_stop"
    #: 2) all workers finish according to the first worker to finish.
    FIRST_FINISHER = "first_finisher"
    #: 3) all workers finish when the *average* iteration count of all
    #: workers reaches the specified number of iterations.
    AVERAGE_ITERATIONS = "average_iterations"


@dataclass
class ShmCaffeConfig:
    """Everything a ShmCaffe worker needs beyond the net spec and data.

    Attributes:
        solver: The wrapped Caffe solver hyper-parameters.
        moving_rate: The elastic moving-average rate alpha of eqs. (5)-(7).
            The paper's experiments use 0.2.
        update_interval: Exchange with the SMB global weights every this
            many local iterations.  The paper's experiments use 1.
        max_iterations: Per-worker training iterations (before alignment).
        termination: Which Sec. III-E alignment rule ends the run.
        overlap_updates: Run the Fig. 6 update_thread so the write side of
            the exchange hides behind computation.  Disable for bit-exact
            deterministic tests.
        stale_global_read: Ablation switch — hide the *read* side too, by
            reading the global weights concurrently with computation.  The
            paper deliberately refuses this ("the learning performance
            deteriorates due to the delayed parameter problem"); enabling
            it reproduces that deterioration.
        algorithm: Named exchange strategy for SMB participants (see
            :data:`repro.core.exchange.EXCHANGES`).  ``"seasgd"`` is the
            paper's rule; ``"smb_asgd"`` runs the Downpour baseline over
            the SMB accumulate primitive.
    """

    solver: SolverConfig = field(default_factory=SolverConfig)
    moving_rate: float = 0.2
    update_interval: int = 1
    max_iterations: int = 100
    termination: TerminationCriterion = TerminationCriterion.MASTER_STOP
    overlap_updates: bool = True
    stale_global_read: bool = False
    algorithm: str = "seasgd"

    def __post_init__(self) -> None:
        if not 0.0 < self.moving_rate <= 1.0:
            raise ValueError(
                f"moving_rate must be in (0, 1], got {self.moving_rate}"
            )
        if self.stale_global_read and self.algorithm != "seasgd":
            raise ValueError(
                "stale_global_read is a SEASGD ablation; it cannot be "
                f"combined with algorithm={self.algorithm!r}"
            )
        if self.update_interval < 1:
            raise ValueError(
                f"update_interval must be >= 1, got {self.update_interval}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
