"""Back-compat facade: ``HybridWorker`` on top of the unified engine.

Hybrid SGD (paper Sec. III-D) is now the
:class:`~repro.core.exchange.HybridExchange` strategy driven by the shared
:class:`~repro.core.engine.TrainingEngine`: intra-group ring allreduce,
root-only SEASGD against the SMB server, weight broadcast back to the
group, lockstep stop flag.  One consequence of the refactor: group roots
honor ``config.overlap_updates`` and hide the ``wwi``/``ugw`` write side
on the Fig.-6 update thread, which the pre-refactor class could not do.

The master-worker role of the whole job is played by the root of group 0
(paper: "the role of the master worker is performed by the root worker of
Master Worker Group1").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from ..caffe.data import Minibatch
from ..caffe.net import Net
from ..nccl.ring import RingGroup
from ..smb.buffer import ParameterBuffer
from ..telemetry import TelemetrySession
from .config import ShmCaffeConfig
from .engine import TrainingEngine, WorkerHistory
from .exchange import HybridExchange
from .termination import TerminationCoordinator

__all__ = ["HybridWorker"]


class HybridWorker:
    """One member of an HSGD worker group.

    Non-root members never touch the SMB server: they contribute gradients
    to the group allreduce and receive the root's post-exchange weights by
    broadcast.  The root additionally runs the SEASGD exchange (overlapped
    when ``config.overlap_updates`` is on).

    Args:
        rank: Global worker rank (for reporting).
        group_rank: Rank inside the group; 0 is the group root.
        group: The shared :class:`RingGroup` clique.
        net: Local replica (all group members start identical).
        config: ShmCaffe hyper-parameters.
        batches: This worker's data shard.
        global_weights: Attached ``W_g`` view — **root only**, else None.
        increment_buffer: Private ``dW_grp`` segment — root only.
        termination: Stop coordinator (root only; members follow the group).
        on_iteration: Optional live-monitoring callback.
        telemetry: Session receiving phase timings (paper terms plus the
            ``nccl`` intra-group collective phase); defaults to the
            process-wide :func:`repro.telemetry.current` session.
    """

    def __init__(
        self,
        rank: int,
        group_rank: int,
        group: RingGroup,
        net: Net,
        config: ShmCaffeConfig,
        batches: Iterator[Minibatch],
        global_weights: Optional[ParameterBuffer] = None,
        increment_buffer: Optional[ParameterBuffer] = None,
        termination: Optional[TerminationCoordinator] = None,
        on_iteration: Optional[
            Callable[[int, int, Dict[str, float]], None]
        ] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.group_rank = group_rank
        self.group = group
        self.is_root = group_rank == 0
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.strategy = HybridExchange(
            group=group,
            group_rank=group_rank,
            global_weights=global_weights,
            increment_buffer=increment_buffer,
        )
        self.on_iteration = on_iteration
        self._engine = TrainingEngine(
            rank=rank,
            net=net,
            config=config,
            batches=batches,
            strategy=self.strategy,
            termination=termination,
            on_iteration=on_iteration,
            telemetry=telemetry,
        )

    # -- engine state, exposed under the historical names -------------------

    @property
    def rank(self) -> int:
        return self._engine.rank

    @property
    def net(self) -> Net:
        return self._engine.net

    @property
    def config(self) -> ShmCaffeConfig:
        return self._engine.config

    @property
    def flat(self):
        return self._engine.flat

    @property
    def solver(self):
        return self._engine.solver

    @property
    def batches(self) -> Iterator[Minibatch]:
        return self._engine.batches

    @property
    def termination(self) -> Optional[TerminationCoordinator]:
        return self._engine.termination

    @property
    def history(self) -> WorkerHistory:
        return self._engine.history

    def run(self) -> WorkerHistory:
        """Train until the group agrees to stop; returns history."""
        self._engine.on_iteration = self.on_iteration
        return self._engine.run()
