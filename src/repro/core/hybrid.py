"""Hybrid SGD (HSGD): intra-node SSGD + inter-node SEASGD (paper Sec. III-D).

Workers on the same node form a *worker group*.  Within a group every
iteration is synchronous: gradients are averaged with an
NCCL-style ring allreduce, so all members hold identical replicas.  Only
the group's **root** exchanges with the SMB server via SEASGD and then
broadcasts the elastically adjusted weights back to the group — cutting
SMB traffic by the group size, which is exactly the Fig. 14/15 effect.

The master-worker role of the whole job is played by the root of group 0
(paper: "the role of the master worker is performed by the root worker of
Master Worker Group1").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

import numpy as np

from ..caffe.data import Minibatch
from ..caffe.net import Net
from ..caffe.params import FlatParams
from ..caffe.solver import SGDSolver
from ..nccl.ring import RingGroup
from ..smb import errors as smb_errors
from ..smb.client import RemoteArray
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .config import ShmCaffeConfig
from .seasgd import apply_increment_local, weight_increment
from .termination import TerminationCoordinator
from .worker import IterationRecord, WorkerError, WorkerHistory


class HybridWorker:
    """One member of an HSGD worker group.

    Non-root members never touch the SMB server: they contribute gradients
    to the group allreduce and receive the root's post-exchange weights by
    broadcast.  The root additionally runs the SEASGD exchange.

    Args:
        rank: Global worker rank (for reporting).
        group_rank: Rank inside the group; 0 is the group root.
        group: The shared :class:`RingGroup` clique.
        net: Local replica (all group members start identical).
        config: ShmCaffe hyper-parameters.
        global_weights: Attached ``W_g`` view — **root only**, else None.
        increment_buffer: Private ``dW_grp`` segment — root only.
        batches: This worker's data shard.
        termination: Stop coordinator (root only; members follow the group).
        on_iteration: Optional live-monitoring callback.
        telemetry: Session receiving phase timings (paper terms plus the
            ``nccl`` intra-group collective phase); defaults to the
            process-wide :func:`repro.telemetry.current` session.
    """

    def __init__(
        self,
        rank: int,
        group_rank: int,
        group: RingGroup,
        net: Net,
        config: ShmCaffeConfig,
        batches: Iterator[Minibatch],
        global_weights: Optional[RemoteArray] = None,
        increment_buffer: Optional[RemoteArray] = None,
        termination: Optional[TerminationCoordinator] = None,
        on_iteration: Optional[Callable[[int, int, Dict[str, float]], None]] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.rank = rank
        self.group_rank = group_rank
        self.group = group
        self.net = net
        self.config = config
        self.flat = FlatParams(net)
        self.solver = SGDSolver(net, config.solver)
        self.batches = batches
        self.is_root = group_rank == 0
        if self.is_root:
            if global_weights is None or increment_buffer is None:
                raise WorkerError("group root needs SMB buffers")
            if global_weights.count != self.flat.count:
                raise WorkerError(
                    f"global buffer holds {global_weights.count} weights, "
                    f"model has {self.flat.count}"
                )
        self.global_weights = global_weights
        self.increment_buffer = increment_buffer
        self.termination = termination
        self.on_iteration = on_iteration
        self.history = WorkerHistory(rank=rank)
        tel = telemetry if telemetry is not None else _telemetry_current()
        self._telemetry = tel
        self._phases = tel.phase_timer(rank, "main")
        self._smb_failed = False

    def _record_smb_failure(
        self, exc: smb_errors.SMBError, iteration: int
    ) -> None:
        """Root-only: the group's SMB path died; degrade, don't crash.

        The group keeps its intra-node SSGD lockstep (the broadcasts the
        members are blocked on still happen) but stops exchanging with the
        global weights and winds down at the next stop broadcast, marked
        dead in the control block so other groups rescale.
        """
        self._smb_failed = True
        self.history.failed = True
        self.history.failure = f"{type(exc).__name__}: {exc}"
        if self._telemetry.enabled:
            self._telemetry.registry.inc(f"worker{self.rank}/faults/fatal")
        if self.termination is not None:
            try:
                self.termination.mark_failed(iteration)
            except smb_errors.SMBError:
                pass  # control block unreachable too; backstop applies

    def _seasgd_exchange(self) -> None:
        """Root-only inter-node elastic exchange (eqs. (5)-(7)).

        HSGD roots run the exchange synchronously (no update thread),
        so all four eq.-(8) terms land on the main-thread track.
        """
        with self._phases.phase("rgw"):
            global_now = self.global_weights.read()
        with self._phases.phase("ulw"):
            local_now = self.flat.get_vector()
            increment = weight_increment(
                local_now, global_now, self.config.moving_rate
            )
            self.flat.set_vector(
                apply_increment_local(local_now, increment)
            )
        with self._phases.phase("wwi"):
            self.increment_buffer.write(increment)
        with self._phases.phase("ugw"):
            self.increment_buffer.accumulate_into(self.global_weights)

    def run(self) -> WorkerHistory:
        """Train until the group agrees to stop; returns history."""
        iteration = 0
        while True:
            # Inter-node SEASGD (root) + intra-group weight broadcast.
            exchanged = iteration % self.config.update_interval == 0
            if exchanged:
                if self.is_root:
                    if not self._smb_failed:
                        try:
                            self._seasgd_exchange()
                        except smb_errors.SMBError as exc:
                            self._record_smb_failure(exc, iteration)
                    with self._phases.phase("nccl"):
                        synced = self.group.broadcast(
                            self.group_rank, self.flat.get_vector(), root=0
                        )
                else:
                    with self._phases.phase("nccl"):
                        synced = self.group.broadcast(
                            self.group_rank, None, root=0
                        )
                self.flat.set_vector(synced)

            # Intra-group synchronous SGD: average gradients, same update.
            with self._phases.phase("comp"):
                batch = next(self.batches)
                stats = self.solver.compute_gradients(batch.as_inputs())
                gradients = self.flat.get_grad_vector()
            # The NCCL phase: the intra-group ring allreduce (the part
            # of an HSGD iteration SEASGD never pays).
            with self._phases.phase("nccl"):
                averaged = self.group.allreduce(
                    self.group_rank, gradients, average=True
                )
            with self._phases.phase("comp"):
                self.flat.set_grad_vector(averaged)
                self.solver.apply_update()
                self.solver.advance_iteration()
            iteration += 1

            self.history.records.append(
                IterationRecord(
                    iteration=iteration,
                    loss=stats["loss"],
                    learning_rate=self.solver.config.learning_rate(
                        iteration - 1
                    ),
                    exchanged=exchanged,
                )
            )
            if self.on_iteration is not None:
                self.on_iteration(self.rank, iteration, stats)

            # The root decides for the whole group; the decision is shared
            # through a one-element broadcast so members stop in lockstep.
            if self.is_root:
                stop = 0.0
                if self._smb_failed:
                    # The group cannot exchange with W_g any more; wind
                    # down in lockstep (mark_failed already ran).
                    stop = 1.0
                elif self.termination is not None:
                    try:
                        self.termination.publish(iteration)
                        if self.termination.should_stop(iteration):
                            stop = 1.0
                    except smb_errors.SMBError as exc:
                        self._record_smb_failure(exc, iteration)
                        stop = 1.0
                elif iteration >= self.config.max_iterations:
                    stop = 1.0
                flag = self.group.broadcast(
                    self.group_rank, np.asarray([stop]), root=0
                )
            else:
                flag = self.group.broadcast(self.group_rank, None, root=0)
            if float(flag[0]) != 0.0:
                break

        self.history.completed_iterations = iteration
        return self.history
