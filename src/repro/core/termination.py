"""Termination alignment across asynchronous workers (paper Sec. III-E).

Asynchronous workers drift apart in wall-clock progress; without
coordination the fast ones idle on their GPUs waiting for the stragglers.
ShmCaffe avoids a master-side coordinator thread by sharing per-worker
progress counters through an SMB control segment and letting every worker
apply one of three predefined stop criteria locally.

Fault tolerance: a worker whose SMB path dies for good calls
:meth:`TerminationCoordinator.mark_failed`, which flips its control-block
slot to the dead encoding (see
:class:`~repro.smb.client.ControlBlock`).  Survivors *rescale* their
criteria over the live fleet — ``AVERAGE_ITERATIONS`` averages only live
counters, and under ``MASTER_STOP`` a dead master is replaced by
first-finisher semantics — so worker loss degrades the job rather than
hanging or aborting it.
"""

from __future__ import annotations

from time import monotonic, sleep

from ..smb.client import ControlBlock
from .config import TerminationCriterion

#: Stop-flag codes written into the control block.
STOP_MASTER_DONE = 1
STOP_FIRST_FINISHER = 2


class TerminationCoordinator:
    """One worker's view of the shared stop protocol.

    Args:
        control: The shared SMB control block.
        rank: This worker's control-block slot (the launch path assigns
            slot == rank; elastic joiners use whatever slot they claimed).
        criterion: Which Sec. III-E rule is active.
        target_iterations: The per-worker iteration budget; under
            ``AVERAGE_ITERATIONS`` it is the target for the *mean* progress
            of all workers instead.
        generation: This worker's slot generation from its
            :meth:`~repro.smb.client.ControlBlock.claim`.  When set, every
            publish is generation-checked, so a worker whose slot was
            reclaimed (elastic churn) fails loudly instead of corrupting
            its successor's counter.  ``None`` keeps the unstamped
            fixed-fleet behaviour.
    """

    def __init__(
        self,
        control: ControlBlock,
        rank: int,
        criterion: TerminationCriterion,
        target_iterations: int,
        generation: "int | None" = None,
    ) -> None:
        if target_iterations < 1:
            raise ValueError(
                f"target_iterations must be >= 1, got {target_iterations}"
            )
        self.control = control
        self.rank = rank
        self.criterion = criterion
        self.target_iterations = target_iterations
        self.generation = generation
        self._is_master = rank == 0

    def publish(self, completed_iterations: int) -> None:
        """Report this worker's completed iteration count to everyone."""
        self.control.publish_progress(
            self.rank, completed_iterations, generation=self.generation
        )

    def mark_failed(self, completed_iterations: int) -> None:
        """Declare this worker dead after ``completed_iterations``.

        Survivors observe the dead slot and rescale; this worker must not
        publish again afterwards.
        """
        self.control.mark_dead(
            self.rank, completed_iterations, generation=self.generation
        )

    def wait_for_fleet(
        self,
        minimum: int,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> bool:
        """Block until every *live* worker's progress reaches ``minimum``.

        The coordinated-checkpoint barrier: the master waits here before
        reading ``W_g`` so every surviving rank has durably saved its own
        state for the boundary first.  Dead workers are excluded; a
        raised stop flag or an empty live fleet ends the wait early.

        Returns True when the fleet reached ``minimum``; False on
        timeout/stop (callers decide whether a best-effort checkpoint is
        still worth writing).
        """
        deadline = monotonic() + timeout
        while True:
            progress, alive = self.control.live_progress()
            if not alive.any():
                return False
            if int(progress[alive].min()) >= minimum:
                return True
            if self.control.stop_code() != ControlBlock.STOP_CLEAR:
                return False
            if monotonic() >= deadline:
                return False
            sleep(poll)

    def should_stop(self, completed_iterations: int) -> bool:
        """Evaluate the active criterion after an iteration.

        Every worker is also bounded by ``2 * target_iterations`` as a
        safety backstop so a lost stop flag cannot spin a worker forever.
        """
        if completed_iterations >= 2 * self.target_iterations:
            return True

        if self.criterion is TerminationCriterion.MASTER_STOP:
            if self._is_master:
                if completed_iterations >= self.target_iterations:
                    self.control.signal_stop(STOP_MASTER_DONE)
                    return True
                return False
            if self.control.stop_code() != ControlBlock.STOP_CLEAR:
                return True
            # Degraded mode: if the master died its stop flag will never
            # come, so survivors fall back to first-finisher semantics.
            _, alive = self.control.live_progress()
            if not bool(alive[0]):
                if completed_iterations >= self.target_iterations:
                    self.control.signal_stop(STOP_FIRST_FINISHER)
                    return True
            return False

        if self.criterion is TerminationCriterion.FIRST_FINISHER:
            if completed_iterations >= self.target_iterations:
                self.control.signal_stop(STOP_FIRST_FINISHER)
                return True
            return self.control.stop_code() != ControlBlock.STOP_CLEAR

        # AVERAGE_ITERATIONS: stop once the fleet's mean progress reaches
        # the target; each worker evaluates this locally from the shared
        # counters, so they all stop within one iteration of each other.
        # Dead workers are excluded from the mean — the surviving fleet's
        # average is what must reach the target (degraded-mode rescale).
        progress, alive = self.control.live_progress()
        if not alive.any():
            return completed_iterations >= self.target_iterations
        return float(progress[alive].mean()) >= self.target_iterations
