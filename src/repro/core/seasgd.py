"""SEASGD update rules: the arithmetic heart of ShmCaffe.

Pure functions implementing eqs. (2)-(7) of the paper, factored out of the
worker so they can be tested and reasoned about in isolation.

EASGD background (eqs. (2)-(4)): after a local SGD step
``W'_x = W_x - eta * G_x``, the classic elastic-averaging exchange is

    W''_x = W'_x - alpha * (W'_x - W_g)        (worker side)
    W'_g  = W_g  + alpha * (W'_x - W_g)        (parameter-server side)

ShmCaffe recasts this for a server that can only *accumulate* (eqs.
(5)-(7)): the worker computes the increment ``dW_x = alpha * (W'_x - W_g)``
once, applies ``W''_x = W'_x - dW_x`` locally, writes ``dW_x`` to its
private SMB segment, and asks the server for ``W_g += dW_x``.  The elastic
symmetry of EASGD is preserved exactly, with zero server-side logic beyond
vector addition.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def weight_increment(
    local_weights: np.ndarray,
    global_weights: np.ndarray,
    moving_rate: float,
) -> np.ndarray:
    """Eq. (5): ``dW_x = alpha * (W'_x - W_g)``."""
    if local_weights.shape != global_weights.shape:
        raise ValueError(
            f"weight shape mismatch: {local_weights.shape} vs "
            f"{global_weights.shape}"
        )
    return (moving_rate * (local_weights - global_weights)).astype(np.float32)


def apply_increment_local(
    local_weights: np.ndarray, increment: np.ndarray
) -> np.ndarray:
    """Eq. (6): ``W''_x = W'_x - dW_x`` (pulls the replica toward W_g)."""
    return (local_weights - increment).astype(np.float32)


def apply_increment_global(
    global_weights: np.ndarray, increment: np.ndarray
) -> np.ndarray:
    """Eq. (7): ``W'_g = W_g + dW_x`` — what the SMB server's accumulate
    performs remotely; provided here for tests and reference."""
    return (global_weights + increment).astype(np.float32)


def seasgd_exchange(
    local_weights: np.ndarray,
    global_weights: np.ndarray,
    moving_rate: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One full elastic exchange, all in local arithmetic.

    Returns ``(new_local, new_global, increment)``.  The distributed code
    path splits this across worker and SMB server; tests assert both paths
    agree bit-for-bit.
    """
    increment = weight_increment(local_weights, global_weights, moving_rate)
    return (
        apply_increment_local(local_weights, increment),
        apply_increment_global(global_weights, increment),
        increment,
    )


def easgd_worker_update(
    local_weights: np.ndarray,
    global_weights: np.ndarray,
    moving_rate: float,
) -> np.ndarray:
    """Eq. (3): the classic EASGD worker update ``W'' = W' - a(W' - W_g)``."""
    return (
        local_weights - moving_rate * (local_weights - global_weights)
    ).astype(np.float32)


def easgd_server_update(
    local_weights: np.ndarray,
    global_weights: np.ndarray,
    moving_rate: float,
) -> np.ndarray:
    """Eq. (4): the classic EASGD server update ``W_g + a(W' - W_g)``."""
    return (
        global_weights + moving_rate * (local_weights - global_weights)
    ).astype(np.float32)
