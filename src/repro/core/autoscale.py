"""Autoscaling for elastic fleets, driven by the eq.-(8) phase timers.

The paper's cost model (eq. (8)) splits an iteration into computation
(``comp``) and the SMB exchange terms (``wwi``, ``ugw``, ``rgw`` plus the
``block`` stall).  Those same phase histograms, already collected per
worker by :mod:`repro.telemetry`, double as an autoscaling signal:

* a **low** communication share means the SMB server has headroom — more
  workers would raise aggregate throughput, so the controller *grows* the
  fleet (up to ``max_workers``);
* a **high** communication share — or a deep server-side accumulate
  queue (the ``smb/server/queue/accumulate`` gauge, the paper's
  serialised T.A3 bottleneck) — means workers already spend their time
  contending for the exchange path, so the controller *retires* one.

Decisions are made over the **delta** of the phase sums since the last
controller step (a rolling window, not the run-to-date average), with a
warm-up guard and a cooldown between actions so one noisy window cannot
flap the fleet.

:class:`AutoscaleController` is pure decision logic (easy to unit-test);
:class:`AutoscaleSupervisor` is the thin polling thread that applies
decisions through the
:class:`~repro.core.trainer.DistributedTrainingManager`'s
``spawn_worker`` / ``retire_worker`` hooks.
"""

from __future__ import annotations

import logging
import re
import threading
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from ..telemetry import TelemetrySession
from ..telemetry.registry import Gauge, Histogram

logger = logging.getLogger(__name__)

#: Phases charged to communication in the comm/comp ratio: the SMB
#: exchange terms of eq. (8) plus the overlap stall.  ``ulw`` is the
#: local elastic update — replica-side compute, not server pressure.
COMM_PHASES = ("wwi", "ugw", "rgw", "block")

_PHASE_RE = re.compile(r"^worker\d+/phase/([a-z_]+)$")

GROW = "grow"
SHRINK = "shrink"
HOLD = "hold"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and bounds for one controller.

    Args:
        min_workers: Never retire below this live count.
        max_workers: Never grow above this live count (also the control
            block's slot capacity in elastic runs).
        low_comm_ratio: Grow while the fleet's comm share of an iteration
            stays under this.
        high_comm_ratio: Shrink once the comm share exceeds this.
        max_queue_depth: Shrink once the server's accumulate queue gauge
            exceeds this many pending requests.
        cooldown_steps: Controller steps to hold after any grow/shrink
            before acting again (lets the new fleet's telemetry settle).
    """

    min_workers: int = 1
    max_workers: int = 4
    low_comm_ratio: float = 0.25
    high_comm_ratio: float = 0.65
    max_queue_depth: float = 4.0
    cooldown_steps: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers {self.max_workers} < min_workers "
                f"{self.min_workers}"
            )
        if not 0.0 <= self.low_comm_ratio < self.high_comm_ratio <= 1.0:
            raise ValueError(
                "need 0 <= low_comm_ratio < high_comm_ratio <= 1, got "
                f"{self.low_comm_ratio} / {self.high_comm_ratio}"
            )


@dataclass(frozen=True)
class FleetSignals:
    """One controller step's view of the live telemetry."""

    #: Comm share of (comm + comp) time over the window; ``None`` while
    #: the window holds no new phase samples (warm-up or idle fleet).
    comm_ratio: Optional[float]
    #: Instantaneous server-side accumulate queue depth.
    queue_depth: float
    #: Live worker count (control-block slots held by live workers).
    live: int


@dataclass(frozen=True)
class ScaleDecision:
    """What one controller step decided, and why."""

    action: str  # GROW | SHRINK | HOLD
    reason: str
    signals: FleetSignals


class AutoscaleController:
    """Pure decision logic: telemetry deltas in, one decision out.

    Args:
        policy: Bounds and thresholds.
        telemetry: Session whose registry holds the phase histograms and
            the server queue gauge (the run's shared session).
        live_source: Zero-argument live-worker count, e.g.
            :meth:`~repro.smb.client.ControlBlock.live_count`.
    """

    def __init__(
        self,
        policy: AutoscalePolicy,
        telemetry: TelemetrySession,
        live_source: Callable[[], int],
    ) -> None:
        self.policy = policy
        self.telemetry = telemetry
        self.live_source = live_source
        self._last_comm = 0.0
        self._last_comp = 0.0
        self._cooldown = 0

    # -- signal extraction -------------------------------------------------

    def _phase_sums(self) -> "tuple[float, float]":
        """Current run-to-date (comm, comp) second totals, all workers."""
        comm = comp = 0.0
        registry = self.telemetry.registry
        for name in registry.names():
            match = _PHASE_RE.match(name)
            if not match:
                continue
            metric = registry.get(name)
            if not isinstance(metric, Histogram):
                continue
            phase = match.group(1)
            if phase == "comp":
                comp += metric.sum
            elif phase in COMM_PHASES:
                comm += metric.sum
        return comm, comp

    def signals(self) -> FleetSignals:
        """Read the window's signals and advance the window."""
        comm, comp = self._phase_sums()
        delta_comm = max(comm - self._last_comm, 0.0)
        delta_comp = max(comp - self._last_comp, 0.0)
        self._last_comm, self._last_comp = comm, comp
        total = delta_comm + delta_comp
        ratio = delta_comm / total if total > 0.0 else None
        queue = self.telemetry.registry.get("smb/server/queue/accumulate")
        depth = queue.value if isinstance(queue, Gauge) else 0.0
        return FleetSignals(
            comm_ratio=ratio,
            queue_depth=float(depth),
            live=int(self.live_source()),
        )

    # -- decision ----------------------------------------------------------

    def step(self) -> ScaleDecision:
        """Evaluate one control step; counts it in telemetry."""
        signals = self.signals()
        decision = self._decide(signals)
        if decision.action != HOLD:
            self._cooldown = self.policy.cooldown_steps
        if self.telemetry.enabled:
            self.telemetry.registry.inc(
                f"autoscale/decisions/{decision.action}"
            )
        return decision

    def _decide(self, signals: FleetSignals) -> ScaleDecision:
        policy = self.policy
        if self._cooldown > 0:
            self._cooldown -= 1
            return ScaleDecision(
                HOLD, f"cooling down ({self._cooldown} step(s) left)",
                signals,
            )
        if signals.comm_ratio is None:
            return ScaleDecision(
                HOLD, "no new phase samples in the window", signals
            )
        if signals.live > policy.min_workers and (
            signals.queue_depth > policy.max_queue_depth
        ):
            return ScaleDecision(
                SHRINK,
                f"accumulate queue depth {signals.queue_depth:.0f} > "
                f"{policy.max_queue_depth:.0f}",
                signals,
            )
        if signals.live > policy.min_workers and (
            signals.comm_ratio > policy.high_comm_ratio
        ):
            return ScaleDecision(
                SHRINK,
                f"comm ratio {signals.comm_ratio:.2f} > "
                f"{policy.high_comm_ratio:.2f}",
                signals,
            )
        if signals.live < policy.max_workers and (
            signals.comm_ratio < policy.low_comm_ratio
        ):
            return ScaleDecision(
                GROW,
                f"comm ratio {signals.comm_ratio:.2f} < "
                f"{policy.low_comm_ratio:.2f}",
                signals,
            )
        return ScaleDecision(
            HOLD,
            f"comm ratio {signals.comm_ratio:.2f} within band",
            signals,
        )


class ElasticManager(Protocol):
    """The spawn/retire surface the supervisor drives."""

    def spawn_worker(self) -> object: ...

    def retire_worker(self, member_id: Optional[str] = None) -> bool: ...


class AutoscaleSupervisor:
    """Polling thread applying controller decisions to a live run.

    Grow spawns one elastic worker through the manager; shrink retires
    one (the manager picks its youngest elastic member).  Spawn failures
    at capacity are expected races and only logged.
    """

    def __init__(
        self,
        manager: ElasticManager,
        controller: AutoscaleController,
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.manager = manager
        self.controller = controller
        self.interval = interval
        self.decisions: "list[ScaleDecision]" = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "AutoscaleSupervisor":
        self._thread = threading.Thread(
            target=self._loop, name="autoscale", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            decision = self.controller.step()
            self.decisions.append(decision)
            try:
                if decision.action == GROW:
                    self.manager.spawn_worker()
                elif decision.action == SHRINK:
                    self.manager.retire_worker()
            except Exception:  # noqa: BLE001 - supervisor must not die
                logger.exception(
                    "autoscale %s failed; holding", decision.action
                )
