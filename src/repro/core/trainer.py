"""The distributed training manager (paper Fig. 1, right-hand column).

This is the component that "performs initialization of the distributed
processing using the MPI programming model and performs parameter exchange
handling using the remote shared memory library provided by the SMB
library".  Concretely:

1. every rank builds an identical model replica;
2. the master (rank 0) creates the ``W_g`` segment on the SMB server,
   seeds it with the initial weights, creates the shared control block,
   and **broadcasts the SHM keys over MPI** (paper Fig. 2);
3. every SEASGD participant attaches ``W_g``, allocates its private
   ``dW_x`` segment, and runs its worker loop;
4. histories are gathered back to the caller.

``group_size == 1`` yields ShmCaffe-A (pure SEASGD); ``group_size > 1``
yields ShmCaffe-H with one SEASGD participant (the group root) per group.
"""

from __future__ import annotations

import itertools
import logging
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import mpi
from ..caffe.data import SyntheticImageDataset
from ..caffe.net import Net
from ..caffe.netspec import NetSpec
from ..caffe.params import FlatParams
from ..caffe.snapshot import load_solver_state
from ..caffe.solver import SGDSolver
from ..nccl.ring import RingGroup
from ..smb import errors as smb_errors
from ..smb.client import ControlBlock, RemoteArray, SlotClaim, SMBClient
from ..smb.faults import FaultInjectingTransport, FaultPlan
from ..smb.membership import MembershipRegistry
from ..smb.retry import RetryPolicy
from ..smb.server import SMBServer
from ..smb.transport import InProcTransport, TcpTransport
from ..telemetry import TelemetrySession
from ..telemetry import current as _telemetry_current
from .checkpoint import (
    CheckpointCoordinator,
    CheckpointError,
    CheckpointInfo,
    latest_checkpoint,
)
from .config import ShmCaffeConfig, TerminationCriterion
from .engine import TrainingEngine, WorkerHistory
from .exchange import HybridExchange, make_exchange
from .termination import TerminationCoordinator


@dataclass
class TrainingResult:
    """What a distributed ShmCaffe run returns."""

    histories: List[WorkerHistory]
    final_global_weights: np.ndarray
    eval_records: List[Tuple[int, Dict[str, float]]] = field(
        default_factory=list
    )

    @property
    def total_iterations(self) -> int:
        """Sum of iterations completed across all workers."""
        return sum(h.completed_iterations for h in self.histories)

    @property
    def failed_ranks(self) -> List[int]:
        """Ranks that lost their SMB path and degraded out of the run."""
        return [h.rank for h in self.histories if h.failed]

    @property
    def surviving_ranks(self) -> List[int]:
        """Ranks that completed the run normally."""
        return [h.rank for h in self.histories if not h.failed]

    @property
    def retired_ranks(self) -> List[int]:
        """Ranks that were retired out of the run (elastic membership)."""
        return [h.rank for h in self.histories if h.retired]


@dataclass
class ElasticWorkerHandle:
    """One elastically spawned worker, as seen by the spawning side.

    ``slot``/``generation`` are filled in once the worker's claim lands;
    ``history`` once its engine returns; ``error`` if the member died
    before (or outside) its training loop.
    """

    member_id: str
    seq: int
    slot: Optional[int] = None
    generation: Optional[int] = None
    history: Optional[WorkerHistory] = None
    error: Optional[str] = None
    thread: Optional[threading.Thread] = None

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the worker thread; True when it has finished."""
        if self.thread is None:
            return True
        self.thread.join(timeout)
        return not self.thread.is_alive()


class DistributedTrainingManager:
    """Bring-up and execution of one ShmCaffe job.

    Args:
        spec_factory: Zero-argument callable building the (identical) net
            spec for each replica.
        config: ShmCaffe hyper-parameters.
        dataset: Training data, sharded across workers without duplication.
        batch_size: Per-worker minibatch size (the paper uses 60).
        num_workers: Total workers (one per emulated GPU).
        group_size: Workers per HSGD group; 1 means pure ShmCaffe-A.
        server: SMB server core to use; a fresh one is created if omitted.
        server_address: Connect to a remote :class:`TcpSMBServer` at this
            ``(host, port)`` instead of using an in-process core — the
            true multi-process emulation mode.  Overrides ``server``.
        namespace: Prefix for every segment name this run creates, so
            several jobs can share one long-lived SMB server.
        seed: Base seed; replica init is identical across workers, data
            order differs per rank.
        initial_weights: Flat vector to seed every replica (and W_g)
            from, e.g. a :func:`repro.caffe.snapshot.save_net` checkpoint.
        prefetch: Stage each worker's minibatches through the 10-deep
            background prefetcher, as ShmCaffe's data layer does.
        eval_every: If set, rank 0 evaluates the *global* weights on the
            test split every this many of its own iterations.
        eval_batch_size: Batch size for those evaluations.
        telemetry: Session propagated to the SMB server, every client,
            and every worker, so one run's metrics and trace land in one
            place; defaults to :func:`repro.telemetry.current`.
        retry_policy: Transient-fault policy installed in every worker's
            SMB client (see :class:`~repro.smb.retry.RetryPolicy`);
            ``None`` keeps the fail-fast default.
        fault_plan: Chaos-testing plan: each worker's transport is
            wrapped in a seeded
            :class:`~repro.smb.faults.FaultInjectingTransport` derived
            per rank, so fault sequences are reproducible.  ``None``
            (the default) injects nothing.
        rendezvous: Path of a journaled server's ``endpoint.json``; TCP
            clients re-resolve the server address through it on every
            reconnect, so a server restarted on a new port is found
            without reconfiguration.
        server_down_grace: Seconds each TCP (re)connect keeps retrying a
            dead endpoint before failing — the bounded outage window a
            server restart must fit into.
        checkpoint_dir: Enable coordinated checkpoints into this
            directory (requires ``group_size == 1``).
        checkpoint_every: Boundary interval in iterations (default 0 =
            only meaningful with ``checkpoint_dir``).
        checkpoint_metadata: JSON-serialisable job description stored in
            each checkpoint manifest (``repro checkpoint resume`` uses
            it to rebuild the run).
        resume: Directory previously used as ``checkpoint_dir``; the run
            restarts from its latest complete checkpoint — ``W_g``, each
            rank's solver/momentum/RNG state and dataset cursor, and the
            iteration counters all continue where they stopped.
        registry_dir: Directory for the elastic-membership registry
            (:class:`~repro.smb.membership.MembershipRegistry`).  The
            master publishes the job document (endpoint, SHM keys, spec)
            there and every SEASGD participant holds a leased member
            record, so ``repro smb members`` can inspect the fleet even
            for a fixed-size run.  Required when ``elastic`` is on.
        elastic: Allow the fleet to change size mid-run: the control
            block is sized to ``max_workers`` slots, workers claim slots
            dynamically (generation-stamped), the exchange rescales
            eqs. (5)-(7) over the *live* worker count, and
            :meth:`spawn_worker`/:meth:`retire_worker` add and drain
            members against the registry.  Requires ``group_size == 1``
            and ``AVERAGE_ITERATIONS`` termination (the one Sec. III-E
            criterion whose rescale is well-defined under churn).
        max_workers: Slot capacity of an elastic run (>= ``num_workers``);
            defaults to ``num_workers`` (an elastic run that cannot grow,
            only churn).
        registry_lease: Seconds a member record survives without a
            heartbeat before being presumed dead and evicted.
    """

    def __init__(
        self,
        spec_factory: Callable[[], NetSpec],
        config: ShmCaffeConfig,
        dataset: SyntheticImageDataset,
        batch_size: int,
        num_workers: int,
        group_size: int = 1,
        server: Optional[SMBServer] = None,
        server_address: Optional[Tuple[str, int]] = None,
        namespace: str = "",
        seed: int = 0,
        initial_weights: Optional[np.ndarray] = None,
        prefetch: bool = False,
        eval_every: Optional[int] = None,
        eval_batch_size: int = 50,
        telemetry: Optional[TelemetrySession] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        rendezvous: Optional[str] = None,
        server_down_grace: float = 0.0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        checkpoint_metadata: Optional[Dict] = None,
        resume: Optional[str] = None,
        registry_dir: Optional[str] = None,
        elastic: bool = False,
        max_workers: Optional[int] = None,
        registry_lease: float = 30.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if elastic:
            if registry_dir is None:
                raise ValueError(
                    "elastic membership requires registry_dir: late "
                    "joiners discover the job through the registry"
                )
            if group_size != 1:
                raise ValueError(
                    "elastic membership requires group_size == 1: HSGD "
                    "groups are launch-time structures and cannot churn"
                )
            if config.termination is not TerminationCriterion.AVERAGE_ITERATIONS:
                raise ValueError(
                    "elastic membership requires AVERAGE_ITERATIONS "
                    "termination: the mean over the live fleet is the one "
                    "Sec. III-E criterion well-defined under join/leave "
                    "churn"
                )
        if max_workers is not None and max_workers < num_workers:
            raise ValueError(
                f"max_workers {max_workers} < num_workers {num_workers}"
            )
        if max_workers is not None and not elastic:
            raise ValueError("max_workers only applies to elastic runs")
        if group_size < 1 or num_workers % group_size != 0:
            raise ValueError(
                f"group_size {group_size} must divide num_workers "
                f"{num_workers}"
            )
        if group_size > 1 and config.stale_global_read:
            # HybridWorker used to drop this ablation on the floor; fail
            # loudly instead of silently training something else.
            raise ValueError(
                "stale_global_read is not supported with group_size > 1: "
                "the stale-read ablation is defined for direct SEASGD "
                "participants, not HSGD group roots"
            )
        if group_size > 1 and config.algorithm != "seasgd":
            raise ValueError(
                f"algorithm={config.algorithm!r} is not supported with "
                "group_size > 1: HSGD group roots always exchange via "
                "SEASGD"
            )
        self.spec_factory = spec_factory
        self.config = config
        self.dataset = dataset
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.group_size = group_size
        self.num_groups = num_workers // group_size
        self.telemetry = (
            telemetry if telemetry is not None else _telemetry_current()
        )
        self.server_address = server_address
        if server_address is not None:
            self.server = None
        else:
            self.server = server if server is not None else SMBServer(
                capacity=1 << 30, telemetry=self.telemetry
            )
        self.namespace = namespace
        self.seed = seed
        self.initial_weights = (
            np.asarray(initial_weights, dtype=np.float32)
            if initial_weights is not None else None
        )
        self.prefetch = prefetch
        self.eval_every = eval_every
        self.eval_batch_size = eval_batch_size
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.rendezvous = rendezvous
        self.server_down_grace = server_down_grace
        if (checkpoint_dir or resume) and group_size > 1:
            raise ValueError(
                "checkpoint/resume requires group_size == 1: only direct "
                "SEASGD participants carry per-rank solver state through "
                "the coordinated checkpoint protocol"
            )
        if checkpoint_dir is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 with checkpoint_dir, "
                f"got {checkpoint_every}"
            )
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_metadata = checkpoint_metadata
        self._resume_info: Optional[CheckpointInfo] = None
        if resume is not None:
            info = latest_checkpoint(resume)
            if info is None:
                raise CheckpointError(
                    f"no complete checkpoint found under {resume}"
                )
            if info.num_workers != num_workers:
                raise CheckpointError(
                    f"checkpoint was taken with {info.num_workers} "
                    f"worker(s), cannot resume with {num_workers}"
                )
            self._resume_info = info
        self._eval_records: List[Tuple[int, Dict[str, float]]] = []
        # Ring groups are shared objects; one per HSGD group.
        self._rings = [RingGroup(group_size) for _ in range(self.num_groups)]

        # -- elastic membership --------------------------------------------
        self.elastic = elastic
        self.max_workers = (
            max_workers if max_workers is not None else num_workers
        )
        #: Control-block slot capacity: the elastic ceiling, or exactly
        #: one slot per SEASGD participant for a fixed fleet.
        self.control_capacity = self.max_workers if elastic else self.num_groups
        self.registry: Optional[MembershipRegistry] = (
            MembershipRegistry(
                registry_dir, lease=registry_lease, telemetry=self.telemetry
            ) if registry_dir is not None else None
        )
        self._job_ready = threading.Event()
        self._spawn_counter = itertools.count()
        self._elastic_lock = threading.Lock()
        self._elastic_handles: List[ElasticWorkerHandle] = []
        self._retire_events: Dict[str, threading.Event] = {}

    def _make_client(self, rank: Optional[int] = None) -> SMBClient:
        """A fresh SMB client on the configured transport.

        ``rank`` identifies a worker client: it gets the manager's retry
        policy and, when a fault plan is active, a per-rank seeded fault
        injector.  Infrastructure clients (monitor, final-weights reader)
        pass ``None`` and stay clean so chaos targets only the workers.
        """
        if self.server_address is not None:
            policy = self.retry_policy
            transport = TcpTransport(
                self.server_address,
                timeout=policy.connect_timeout if policy else 10.0,
                request_timeout=(
                    policy.request_timeout if policy else 30.0
                ),
                rendezvous=self.rendezvous,
                server_down_grace=self.server_down_grace,
            )
        else:
            transport = InProcTransport(self.server)
        if rank is not None and self.fault_plan is not None:
            transport = FaultInjectingTransport(
                transport, self.fault_plan.for_rank(rank)
            )
        return SMBClient(
            transport, self.telemetry,
            retry_policy=self.retry_policy if rank is not None else None,
        )

    def _reclaim_array(
        self, client: SMBClient, name: str, count: int,
        dtype: str = "float32",
    ) -> RemoteArray:
        """Attach to a segment that survived a server recovery.

        Resuming a job against a journal-recovered server finds its old
        segments still allocated (SHM keys are stable across restarts);
        instead of failing the CREATE, the run adopts them — after
        checking the size still matches the model being resumed.
        """
        shm_key, nbytes = client.lookup(name)
        expected = count * np.dtype(dtype).itemsize
        if nbytes != expected:
            raise CheckpointError(
                f"segment {name!r} on the recovered server holds {nbytes} "
                f"bytes but the resumed job needs {expected}"
            )
        return client.attach_array(name, shm_key, count, dtype)

    def _create_array(
        self, client: SMBClient, name: str, count: int,
        dtype: str = "float32",
    ) -> RemoteArray:
        """CREATE a segment; on resume, reclaim one a recovery left behind."""
        try:
            return client.create_array(name, count, dtype)
        except smb_errors.SegmentExistsError:
            if self._resume_info is None:
                raise
            return self._reclaim_array(client, name, count, dtype)

    # -- per-rank entry point ----------------------------------------------

    def _rank_main(self, comm: mpi.Communicator) -> WorkerHistory:
        rank = comm.rank
        net = Net(self.spec_factory(), seed=self.seed)
        flat = FlatParams(net)
        if self.initial_weights is not None:
            flat.set_vector(self.initial_weights)  # warm start
        solver = SGDSolver(net, self.config.solver)
        start_iteration = 0
        cursor = 0
        resume = self._resume_info
        if resume is not None:
            state_path = resume.rank_state_path(rank)
            if state_path.exists():
                # Local weights, momentum, iteration counter, RNG state
                # — and the dataset cursor to fast-forward the batch
                # stream — all continue from the saved boundary.
                saved_cursor = load_solver_state(solver, state_path)
                start_iteration = solver.iteration
                cursor = (
                    saved_cursor if saved_cursor is not None
                    else start_iteration
                )
            else:
                # This rank had died (or never saved) before the
                # checkpoint was sealed: restart it fresh from the saved
                # global weights, like a late joiner.
                flat.set_vector(resume.load_global_weights())
        client = self._make_client(rank=rank)

        ns = self.namespace
        capacity = self.control_capacity
        # Elastic fleets start with every slot FREE and claim explicitly;
        # fixed fleets pre-claim all slots (the historical layout).
        preclaimed = 0 if self.elastic else None
        if comm.is_master:
            global_array = self._create_array(client, f"{ns}W_g", flat.count)
            if resume is not None:
                # W_g continues from the checkpointed elastic centre,
                # NOT from the master's replica — they differ under
                # EASGD and conflating them would perturb every worker.
                global_array.write(resume.load_global_weights())
            else:
                global_array.write(flat.get_vector())
            try:
                control = ControlBlock.create(
                    client, f"{ns}control", capacity, preclaimed
                )
            except smb_errors.SegmentExistsError:
                if resume is None:
                    raise
                # Adopt the recovered control segment, but wipe it: the
                # previous run's Iter_x counters and stop flag must not
                # leak into the resumed fleet's termination decisions.
                array = self._reclaim_array(
                    client, f"{ns}control", 2 * capacity + 1, "int64"
                )
                control = ControlBlock(array, capacity)
                control.reset(preclaimed)
            if self.registry is not None:
                self._publish_job(global_array, control, flat.count)
            keys = {
                "W_g": global_array.shm_key,
                "control": control.shm_key,
            }
            mpi.bcast(comm, keys)
        else:
            keys = mpi.bcast(comm, None)
            global_array = None
            control = None

        group_id = rank // self.group_size
        group_rank = rank % self.group_size
        is_seasgd_participant = group_rank == 0

        member_id = f"rank{rank}"
        claim: Optional[SlotClaim] = None
        if is_seasgd_participant:
            if global_array is None:
                global_array = client.attach_array(
                    f"{ns}W_g", keys["W_g"], flat.count
                )
            if control is None:
                control = ControlBlock.attach(
                    client, f"{ns}control", keys["control"], capacity
                )
            if self.registry is not None:
                # Launch workers take their deterministic slot (== group
                # id); the registry serialises the record, the claim
                # stamps the slot's generation.
                if self.elastic:
                    claim = control.claim(slot=group_id)
                self.registry.join(
                    member_id, slot=group_id,
                    generation=claim.generation if claim else 1,
                )
            increment = self._create_array(
                client, f"{ns}dW_{rank}", flat.count
            )
            termination = TerminationCoordinator(
                control,
                rank=group_id,
                criterion=self.config.termination,
                target_iterations=self.config.max_iterations,
                generation=claim.generation if claim else None,
            )
        else:
            increment = None
            termination = None

        batches = self.dataset.minibatches(
            self.batch_size,
            seed=self.seed + 1000 + rank,
            rank=rank,
            num_shards=self.num_workers,
            skip=cursor,
        )
        prefetcher = None
        if self.prefetch:
            # ShmCaffe "prefetches 10 sets of minibatch training data";
            # wrap the shard stream in the background prefetcher.
            from ..caffe.data import Prefetcher

            prefetcher = Prefetcher(batches)
            batches = iter(prefetcher.next_batch, None)
        on_iteration = self._make_monitor(net) if (
            comm.is_master and self.eval_every
        ) else None
        retire_event: Optional[threading.Event] = None
        if self.registry is not None and is_seasgd_participant:
            retire_event = threading.Event()
            with self._elastic_lock:
                self._retire_events[member_id] = retire_event
            on_iteration = self._membership_monitor(
                member_id, retire_event, on_iteration
            )

        if self.group_size == 1:
            strategy = make_exchange(
                self.config,
                global_weights=global_array,
                increment_buffer=increment,
                fleet=control.live_count if self.elastic else None,
            )
        else:
            strategy = HybridExchange(
                group=self._rings[group_id],
                group_rank=group_rank,
                global_weights=global_array,
                increment_buffer=increment,
            )
        coordinator = None
        if self.checkpoint_dir is not None:
            coordinator = CheckpointCoordinator(
                directory=self.checkpoint_dir,
                every=self.checkpoint_every,
                rank=rank,
                num_workers=self.num_workers,
                global_weights=global_array if rank == 0 else None,
                termination=termination,
                metadata=self.checkpoint_metadata,
                telemetry=self.telemetry,
            )
        engine = TrainingEngine(
            rank=rank,
            net=net,
            config=self.config,
            batches=batches,
            strategy=strategy,
            termination=termination,
            on_iteration=on_iteration,
            telemetry=self.telemetry,
            solver=solver,
            checkpoint=coordinator,
            start_iteration=start_iteration,
            retire_signal=(
                retire_event.is_set if (
                    self.elastic and retire_event is not None
                ) else None
            ),
        )
        # Everyone is attached before anyone starts mutating W_g.
        mpi.barrier(comm)
        if comm.is_master and self.registry is not None:
            # Only now are the launch fleet's slots all claimed and
            # registered — opening the gate earlier would let a spawned
            # joiner race a launch worker for its deterministic slot.
            self._job_ready.set()
        try:
            history = engine.run()
        finally:
            if prefetcher is not None:
                prefetcher.stop()
        if is_seasgd_participant and control is not None:
            self._depart(control, member_id, claim, history)
        return history

    def _make_monitor(self, net: Net):
        """Rank-0 callback snapshotting global-weight test metrics."""
        eval_net = Net(self.spec_factory(), seed=self.seed)
        eval_flat = FlatParams(eval_net)
        client = self._make_client()
        test_batches = [
            b.as_inputs()
            for b in self.dataset.test_batches(self.eval_batch_size)
        ]
        manager = self

        def monitor(rank: int, iteration: int, stats: Dict[str, float]) -> None:
            if iteration % manager.eval_every != 0:
                return
            shm_key, _ = client.lookup(f"{manager.namespace}W_g")
            array = client.attach_array(
                f"{manager.namespace}W_g", shm_key, eval_flat.count
            )
            eval_flat.set_vector(array.read())
            totals: Dict[str, float] = {}
            for batch in test_batches:
                outputs = eval_net.forward(batch, train=False)
                totals["loss"] = totals.get(
                    "loss", 0.0
                ) + eval_net.total_loss(outputs)
                for name in eval_net.metric_names:
                    totals[name] = totals.get(name, 0.0) + float(
                        outputs[name].ravel()[0]
                    )
            metrics = {
                key: value / len(test_batches)
                for key, value in totals.items()
            }
            manager._eval_records.append((iteration, metrics))

        return monitor

    # -- elastic membership ----------------------------------------------------

    def _publish_job(
        self, global_array: RemoteArray, control: ControlBlock, count: int
    ) -> None:
        """Master-side: announce this job in the membership registry."""
        assert self.registry is not None
        if self.server_address is not None:
            server_doc: Dict[str, object] = {
                "mode": "tcp",
                "host": self.server_address[0],
                "port": self.server_address[1],
            }
            if self.rendezvous:
                server_doc["rendezvous"] = self.rendezvous
        else:
            server_doc = {"mode": "inproc"}
        job = {
            "namespace": self.namespace,
            "count": count,
            "w_g_key": global_array.shm_key,
            "control_key": control.shm_key,
            "capacity": self.control_capacity,
            "num_launch_workers": self.num_workers,
            "algorithm": self.config.algorithm,
            "max_iterations": self.config.max_iterations,
            "moving_rate": self.config.moving_rate,
            "update_interval": self.config.update_interval,
            "elastic": self.elastic,
        }
        self.registry.publish_job(server_doc, job, self.control_capacity)

    def _membership_monitor(
        self,
        member_id: str,
        retire_event: threading.Event,
        inner: Optional[Callable[[int, int, Dict[str, float]], None]],
    ) -> Callable[[int, int, Dict[str, float]], None]:
        """Per-iteration lease renewal + registry-driven retire pickup.

        Heartbeats are best-effort: a worker must never die because the
        registry hiccuped — at worst its lease lapses and the fleet
        presumes it dead, which is exactly the failure semantics leases
        exist to provide.
        """
        registry = self.registry
        assert registry is not None

        def monitor(rank: int, iteration: int, stats: Dict[str, float]) -> None:
            if inner is not None:
                inner(rank, iteration, stats)
            try:
                registry.heartbeat(member_id)
                if registry.retiring(member_id):
                    retire_event.set()
            except smb_errors.MembershipError as exc:
                logging.getLogger(__name__).warning(
                    "heartbeat for %s failed: %s", member_id, exc
                )

        return monitor

    def _depart(
        self,
        control: ControlBlock,
        member_id: str,
        claim: Optional[SlotClaim],
        history: WorkerHistory,
    ) -> None:
        """Post-run membership bookkeeping for one participant.

        A *retired* worker releases its slot back to FREE (reclaimable by
        a later joiner, excluded from every criterion).  A worker that
        *completed* keeps its final progress in the slot — the mean the
        fleet terminates on includes it, exactly like the fixed fleet.  A
        *failed* worker's dead encoding likewise stays (survivors rescale
        over it; the slot remains claimable).  In every case the registry
        record goes away.
        """
        if self.registry is None:
            return
        try:
            if history.retired and claim is not None:
                control.release(claim.slot, claim.generation)
        except smb_errors.SMBError as exc:
            logging.getLogger(__name__).warning(
                "slot release for %s failed: %s", member_id, exc
            )
        try:
            self.registry.leave(member_id)
        except smb_errors.MembershipError as exc:
            logging.getLogger(__name__).warning(
                "registry leave for %s failed: %s", member_id, exc
            )
        with self._elastic_lock:
            self._retire_events.pop(member_id, None)

    def spawn_worker(self, timeout: float = 30.0) -> ElasticWorkerHandle:
        """Add one worker to a live elastic run; returns its handle.

        Safe to call from any thread (the autoscale supervisor, a test
        harness, the elastic drill) once the run is underway; blocks up
        to ``timeout`` for the master's job publication.  The worker
        discovers the job **through the registry** — SHM keys, model
        size, namespace — exactly as an out-of-process joiner would.
        """
        if not self.elastic or self.registry is None:
            raise ValueError("spawn_worker requires an elastic run")
        if not self._job_ready.wait(timeout):
            raise smb_errors.MembershipError(
                f"job not published within {timeout:.1f}s; is run() active?"
            )
        seq = next(self._spawn_counter)
        handle = ElasticWorkerHandle(member_id=f"elastic-{seq}", seq=seq)
        retire_event = threading.Event()
        with self._elastic_lock:
            self._retire_events[handle.member_id] = retire_event
            self._elastic_handles.append(handle)
        thread = threading.Thread(
            target=self._elastic_member_main,
            args=(handle, retire_event),
            name=handle.member_id,
            daemon=True,
        )
        handle.thread = thread
        thread.start()
        return handle

    def retire_worker(self, member_id: Optional[str] = None) -> bool:
        """Drain one member out of a live elastic run.

        Without a ``member_id`` the youngest elastic joiner is picked,
        falling back to the highest-slot launch worker except the master
        (slot 0 stays; it owns bring-up and the eval monitor).  The
        member finishes its current iteration, releases its slot, and
        leaves; returns False when there is nobody suitable to retire.
        """
        if self.registry is None:
            raise ValueError("retire_worker requires a membership registry")
        if member_id is None:
            members = [
                m for m in self.registry.read().live_members()
                if m.status == "active" and m.slot != 0
            ]
            if not members:
                return False
            elastic = [
                m for m in members if m.member_id.startswith("elastic-")
            ]
            pool = elastic if elastic else members
            member_id = max(
                pool, key=lambda m: (m.joined_at, m.slot)
            ).member_id
        if not self.registry.request_retire(member_id):
            return False
        with self._elastic_lock:
            event = self._retire_events.get(member_id)
        if event is not None:
            event.set()
        return True

    def _elastic_member_main(
        self, handle: ElasticWorkerHandle, retire_event: threading.Event
    ) -> None:
        """A late joiner's whole life: discover, join, claim, train, leave.

        Mirrors ``_rank_main`` minus MPI: the job document replaces the
        key broadcast, the registry replaces the launch-time rank
        assignment, and ``W_g`` (the current elastic centre) replaces the
        identical-seed replica init — the paper's warm start for a worker
        that missed bring-up.
        """
        registry = self.registry
        assert registry is not None
        member_id = handle.member_id
        joined = False
        client: Optional[SMBClient] = None
        try:
            view = registry.wait_for_job()
            job = view.job
            ns = str(job.get("namespace", ""))
            count = int(job["count"])                # type: ignore[arg-type]
            capacity = int(job["capacity"])          # type: ignore[arg-type]
            launch = int(job.get("num_launch_workers", self.num_workers))  # type: ignore[arg-type]
            # Telemetry/fault identity: continues the rank sequence past
            # the launch fleet so per-worker metrics stay distinct.
            rank_id = launch + handle.seq
            client = self._make_client(rank=rank_id)
            member = registry.join(member_id)
            joined = True
            control = ControlBlock.attach(
                client, f"{ns}control",
                int(job["control_key"]), capacity,    # type: ignore[arg-type]
            )
            claim = control.claim(slot=member.slot)
            registry.update_member(member_id, generation=claim.generation)
            handle.slot, handle.generation = claim.slot, claim.generation

            net = Net(self.spec_factory(), seed=self.seed)
            flat = FlatParams(net)
            global_array = client.attach_array(
                f"{ns}W_g", int(job["w_g_key"]), count,  # type: ignore[arg-type]
            )
            if flat.count != count:
                raise smb_errors.MembershipError(
                    f"job model has {count} weights, local spec builds "
                    f"{flat.count}"
                )
            # Seed the replica from the current elastic centre, not from
            # the launch-time init: the fleet has moved on.
            flat.set_vector(global_array.read())
            increment = client.create_array(
                f"{ns}dW_{member_id}", count
            )
            strategy = make_exchange(
                self.config,
                global_weights=global_array,
                increment_buffer=increment,
                fleet=control.live_count,
            )
            termination = TerminationCoordinator(
                control,
                rank=claim.slot,
                criterion=self.config.termination,
                target_iterations=self.config.max_iterations,
                generation=claim.generation,
            )
            # Late joiners share a launch shard (distinct batch order via
            # the rank-salted seed): the shard layout is fixed at launch.
            batches = self.dataset.minibatches(
                self.batch_size,
                seed=self.seed + 1000 + rank_id,
                rank=rank_id % self.num_workers,
                num_shards=self.num_workers,
            )
            engine = TrainingEngine(
                rank=rank_id,
                net=net,
                config=self.config,
                batches=batches,
                strategy=strategy,
                termination=termination,
                on_iteration=self._membership_monitor(
                    member_id, retire_event, None
                ),
                telemetry=self.telemetry,
                retire_signal=retire_event.is_set,
            )
            if self.telemetry.enabled:
                self.telemetry.registry.inc("smb/membership/spawned")
            history = engine.run()
            handle.history = history
            self._depart(control, member_id, claim, history)
            if history.retired:
                # A retired joiner's private segment is dead weight on
                # the server; completed workers keep theirs (symmetrical
                # with the launch fleet, freed with the server).
                try:
                    increment.free()
                except smb_errors.SMBError:
                    pass
        except Exception as exc:  # noqa: BLE001 - reported via the handle
            handle.error = f"{type(exc).__name__}: {exc}"
            logging.getLogger(__name__).warning(
                "elastic member %s died: %s", member_id, handle.error
            )
            if joined:
                try:
                    registry.leave(member_id)
                except (smb_errors.MembershipError, OSError):
                    pass  # registry dir may already be torn down
            with self._elastic_lock:
                self._retire_events.pop(member_id, None)
        finally:
            if client is not None and self.server_address is not None:
                client.close()

    def drain_elastic(self, timeout: float = 120.0) -> List[WorkerHistory]:
        """Wait for every spawned worker and collect their histories."""
        with self._elastic_lock:
            handles = list(self._elastic_handles)
        histories: List[WorkerHistory] = []
        for handle in handles:
            if not handle.join(timeout):
                handle.error = (
                    handle.error or f"still running after {timeout:.0f}s"
                )
            if handle.history is not None:
                histories.append(handle.history)
        return histories

    # -- public API -----------------------------------------------------------

    def run(self, timeout: Optional[float] = None) -> TrainingResult:
        """Launch all ranks, wait for completion, and collect results.

        For an elastic run the result also folds in every worker spawned
        through :meth:`spawn_worker` while the launch fleet was training
        (their histories ride along after the launch ranks').
        """
        self._eval_records = []
        self._job_ready.clear()
        with self._elastic_lock:
            self._elastic_handles = []
            self._retire_events = {}
        tel = self.telemetry
        if tel.enabled:
            tel.registry.set("run/workers", self.num_workers)
            tel.registry.set("run/group_size", self.group_size)
        with tel.timed("run/time/total", trace_name="training-run"):
            histories = mpi.run_spmd(
                self.num_workers, self._rank_main, timeout=timeout
            )
            histories = list(histories) + self.drain_elastic()
        lost = [h.rank for h in histories if h.failed]
        if tel.enabled:
            tel.registry.set("run/workers_lost", len(lost))
            for h in histories:
                if h.failed:
                    tel.registry.inc(f"worker{h.rank}/faults/lost")
        if lost:
            logging.getLogger(__name__).warning(
                "run degraded: worker(s) %s lost their SMB path; "
                "%d survivor(s) completed training",
                lost, len(histories) - len(lost),
            )
        reader = self._make_client()
        shm_key, nbytes = reader.lookup(f"{self.namespace}W_g")
        final = reader.attach_array(
            f"{self.namespace}W_g", shm_key, nbytes // 4
        ).read()
        return TrainingResult(
            histories=histories,
            final_global_weights=final,
            eval_records=list(self._eval_records),
        )
