"""Thread-safe metric primitives: counters, gauges, streaming histograms.

The registry is the storage layer of the telemetry subsystem.  Every
instrument is addressed by a flat string name (convention:
``component/subject`` with ``workerN/...`` prefixes for per-worker
series) and created on first use, so instrumented code never has to
pre-declare what it measures.

Histograms are *streaming*: observations land in geometrically spaced
buckets (HDR-histogram style), so memory stays bounded no matter how
many samples arrive while p50/p95/p99 remain accurate to the bucket
growth factor (~5 % with the default 1.1).  That matters because the
phase timers observe every training iteration of every worker.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Geometric growth factor between histogram bucket boundaries.
BUCKET_GROWTH = 1.1

#: Smallest distinguishable observation (seconds-scale metrics: 0.1 µs).
BUCKET_FLOOR = 1e-7


class Counter:
    """A monotonically increasing integer (op counts, bytes moved)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        """Serializable state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins float (queue depths, configuration values)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        """Serializable state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming histogram over geometric buckets.

    Bucket ``i`` covers ``(floor * growth**(i-1), floor * growth**i]``;
    index 0 absorbs everything at or below the floor.  Storage is a
    sparse dict of bucket index -> count, so an idle histogram costs a
    few hundred bytes and a busy one is bounded by the dynamic range of
    its observations (10 decades fit in ~250 buckets at growth 1.1).
    """

    def __init__(
        self,
        name: str,
        growth: float = BUCKET_GROWTH,
        floor: float = BUCKET_FLOOR,
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1.0, got {growth}")
        self.name = name
        self._growth = growth
        self._floor = floor
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def _index(self, value: float) -> int:
        if value <= self._floor:
            return 0
        return 1 + int(math.log(value / self._floor) / self._log_growth)

    def _upper_bound(self, index: int) -> float:
        return self._floor * self._growth ** index

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        value = max(0.0, float(value))
        index = self._index(value)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if seen + in_bucket >= target:
                upper = self._upper_bound(index)
                lower = 0.0 if index == 0 else upper / self._growth
                # Linear interpolation inside the winning bucket.
                frac = (target - seen) / in_bucket
                estimate = lower + frac * (upper - lower)
                # Never report outside the observed range.
                return min(max(estimate, self._min), self._max)
            seen += in_bucket
        return self._max

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Several quantiles under one lock acquisition."""
        with self._lock:
            return [self._quantile_locked(q) for q in qs]

    def snapshot(self) -> Dict[str, object]:
        """Serializable summary (count/sum/min/max plus p50/p95/p99)."""
        with self._lock:
            if self._count == 0:
                return {"type": "histogram", "count": 0, "sum": 0.0,
                        "min": 0.0, "max": 0.0, "mean": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            p50, p95, p99 = (
                self._quantile_locked(0.50),
                self._quantile_locked(0.95),
                self._quantile_locked(0.99),
            )
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": p50,
                "p95": p95,
                "p99": p99,
            }


class MetricsRegistry:
    """Get-or-create store of named instruments, safe for many writers.

    The registry lock only guards instrument creation; each instrument
    carries its own lock for the hot recording path.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    # -- hot-path conveniences -------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # -- inspection -------------------------------------------------------

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        """The instrument called ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Serializable state of every instrument (sorted by name)."""
        with self._lock:
            items: Tuple[Tuple[str, object], ...] = tuple(
                sorted(self._metrics.items())
            )
        return {name: metric.snapshot() for name, metric in items}
