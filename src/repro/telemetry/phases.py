"""Phase timers named after the paper's eq.-(8) cost model.

The paper decomposes one SEASGD iteration into

    T_iter = max[T_comp, (T_wwi + T_ugw)] + T_rgw + T_ulw        (8)

so the telemetry subsystem times exactly those terms, plus ``block`` for
the eq.-(8) stall (the main thread waiting on the previous flush, paper
step T.A5):

========  ==============================================================
phase     meaning (paper term)
========  ==============================================================
comp      minibatch fetch + forward/backward/local SGD step (T_comp)
wwi       write the weight increment to the worker's SMB segment (T_wwi)
ugw       server-side accumulate of dW into W_g (T_ugw)
rgw       read the global weights from SMB (T_rgw)
ulw       elastic update of the local replica, eqs. (5)-(6) (T_ulw)
block     main thread stalled on the previous exchange's flush
========  ==============================================================

``PhaseTimer.phase(name)`` returns a context manager; with telemetry
disabled it is a shared no-op singleton, so instrumented loops pay one
attribute lookup and two empty method calls per phase — nothing else.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import MetricsRegistry
    from .trace import TraceRecorder

__all__ = [
    "PAPER_PHASES", "PHASE_BLOCK", "ALL_PHASES",
    "PhaseTimer", "NullPhaseTimer", "NULL_PHASE_TIMER",
]

#: The five eq.-(8) cost-model terms, in paper order.
PAPER_PHASES: Tuple[str, ...] = ("comp", "wwi", "ugw", "rgw", "ulw")

#: The eq.-(8) stall: main thread blocked on the previous flush (T.A5).
PHASE_BLOCK = "block"

#: Every phase the reproduction times (paper terms + the stall).
ALL_PHASES: Tuple[str, ...] = PAPER_PHASES + (PHASE_BLOCK,)


def phase_metric(worker: int, phase: str) -> str:
    """Registry name of one worker's phase histogram (seconds)."""
    return f"worker{worker}/phase/{phase}"


class _NullContext:
    """Reusable do-nothing context manager (telemetry off)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullPhaseTimer:
    """Phase timer used when telemetry is disabled: every span is a no-op."""

    __slots__ = ()

    def phase(self, name: str) -> _NullContext:
        return _NULL_CONTEXT


NULL_PHASE_TIMER = NullPhaseTimer()


class _PhaseSpan:
    """One timed span; records a histogram sample and a trace event."""

    __slots__ = ("_timer", "_name", "_start", "_ts_us")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0
        self._ts_us = 0.0

    def __enter__(self) -> "_PhaseSpan":
        trace = self._timer.trace
        if trace is not None:
            self._ts_us = trace.now_us()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._start
        timer = self._timer
        timer.registry.observe(
            phase_metric(timer.worker, self._name), elapsed
        )
        if timer.trace is not None:
            timer.trace.complete(
                name=self._name,
                pid=timer.worker,
                tid=timer.tid,
                ts_us=self._ts_us,
                dur_us=elapsed * 1e6,
            )
        return False


class PhaseTimer:
    """Times named phases for one (worker, thread) pair.

    Obtain via :meth:`repro.telemetry.TelemetrySession.phase_timer`,
    which also labels the worker's trace lanes.  Spans may nest (e.g. a
    ``comp`` span containing a finer-grained sub-span); nested complete
    events render stacked in the trace viewer and each level records its
    own histogram sample.
    """

    __slots__ = ("registry", "trace", "worker", "thread", "tid")

    def __init__(
        self,
        registry: "MetricsRegistry",
        trace: Optional["TraceRecorder"],
        worker: int,
        thread: str = "main",
        tid: int = 0,
    ) -> None:
        self.registry = registry
        self.trace = trace
        self.worker = worker
        self.thread = thread
        self.tid = tid

    def phase(self, name: str) -> _PhaseSpan:
        """A context manager timing one ``name`` span."""
        return _PhaseSpan(self, name)
