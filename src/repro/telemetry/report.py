"""Reporting layer: summarize a telemetry run, cross-check the perf model.

Two consumers:

* ``python -m repro telemetry report <metrics.json>`` — render the
  per-worker phase histograms, SMB operation timings, and counters that
  a run saved via :meth:`TelemetrySession.save`.
* The perf-model cross-validation — compare the *measured* phase
  decomposition against the analytic eq.-(8) terms from
  :mod:`repro.perfmodel.iteration` (the paper's Fig. 10 comp/comm
  split, now from live data).  Absolute times differ between the
  paper's Infiniband testbed and this host-Python emulation, so the
  comparison is over each phase's *share* of the exchange; the shares
  are what eq. (8) predicts and what the overlap protocol acts on.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .phases import ALL_PHASES, PAPER_PHASES

__all__ = [
    "load",
    "phase_rows",
    "format_report",
    "perfmodel_comparison_rows",
]

_PHASE_RE = re.compile(r"^worker(\d+)/phase/([a-z_]+)$")

MetricSnapshot = Dict[str, Dict[str, object]]


def load(path: str) -> Dict[str, object]:
    """Read a ``metrics.json`` written by :meth:`TelemetrySession.save`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if "metrics" not in payload:
        raise ValueError(f"{path} is not a telemetry metrics dump")
    return payload


def _table(header: Sequence[str], body: List[List[str]]) -> List[str]:
    """Align ``header``/``body`` into fixed-width text columns."""
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * width for width in widths),
    ]
    for row in body:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return lines


def _ms(seconds: object) -> str:
    return f"{float(seconds) * 1e3:.3f}"


def phase_rows(
    metrics: MetricSnapshot,
) -> List[Tuple[int, str, Dict[str, object]]]:
    """Extract ``(worker, phase, histogram)`` rows, paper-phase ordered."""
    order = {name: i for i, name in enumerate(ALL_PHASES)}
    rows: List[Tuple[int, str, Dict[str, object]]] = []
    for name, snap in metrics.items():
        match = _PHASE_RE.match(name)
        if match and snap.get("type") == "histogram":
            rows.append((int(match.group(1)), match.group(2), snap))
    rows.sort(key=lambda row: (row[0], order.get(row[1], 99), row[1]))
    return rows


def _phase_section(metrics: MetricSnapshot) -> List[str]:
    rows = phase_rows(metrics)
    if not rows:
        return ["(no phase timings recorded — was telemetry off?)"]
    body = [
        [
            str(worker), phase, str(snap["count"]),
            _ms(snap["mean"]), _ms(snap["p50"]),
            _ms(snap["p95"]), _ms(snap["p99"]), _ms(snap["sum"]),
        ]
        for worker, phase, snap in rows
    ]
    header = ["worker", "phase", "count", "mean ms", "p50 ms",
              "p95 ms", "p99 ms", "total ms"]
    return _table(header, body)


def _op_section(metrics: MetricSnapshot, prefix: str) -> List[str]:
    body = []
    for name, snap in sorted(metrics.items()):
        if name.startswith(prefix) and snap.get("type") == "histogram":
            body.append([
                name[len(prefix):], str(snap["count"]),
                _ms(snap["mean"]), _ms(snap["p50"]), _ms(snap["p99"]),
            ])
    if not body:
        return []
    return _table(["op", "count", "mean ms", "p50 ms", "p99 ms"], body)


def _counter_section(metrics: MetricSnapshot) -> List[str]:
    body = [
        [name, str(snap["value"])]
        for name, snap in sorted(metrics.items())
        if snap.get("type") == "counter"
    ]
    if not body:
        return []
    return _table(["counter", "value"], body)


def _membership_section(metrics: MetricSnapshot) -> List[str]:
    """Elastic-membership churn: registry events + autoscale decisions.

    Only rendered when the run actually used the membership layer (some
    ``smb/membership/*`` or ``autoscale/decisions/*`` metric exists).
    """
    body = []
    for name, snap in sorted(metrics.items()):
        if not (
            name.startswith("smb/membership/")
            or name.startswith("autoscale/decisions/")
        ):
            continue
        value = snap.get("value")
        if value is None:
            continue
        kind = str(snap.get("type", ""))
        body.append([name, kind, str(int(float(value)))])  # type: ignore[arg-type]
    if not body:
        return []
    return _table(["metric", "type", "value"], body)


def _pooled_phase_means(metrics: MetricSnapshot) -> Dict[str, float]:
    """Per-phase mean seconds pooled across workers (weighted by count)."""
    total: Dict[str, float] = {}
    count: Dict[str, int] = {}
    for _worker, phase, snap in phase_rows(metrics):
        total[phase] = total.get(phase, 0.0) + float(snap["sum"])
        count[phase] = count.get(phase, 0) + int(snap["count"])
    return {
        phase: total[phase] / count[phase]
        for phase in total if count[phase]
    }


def perfmodel_comparison_rows(
    metrics: MetricSnapshot,
    model: str,
    workers: int,
) -> List[Dict[str, object]]:
    """Measured vs analytic eq.-(8) phase decomposition.

    Returns one row per paper phase with the predicted time on the
    paper's hardware, the measured pooled mean, and each side's share of
    its own iteration total — the share columns are directly comparable
    across the hardware gap.
    """
    from ..perfmodel.iteration import seasgd_phase_expectations
    from ..perfmodel.models import model_profile

    predicted = seasgd_phase_expectations(
        model_profile(model), max(workers, 2)
    )
    measured = _pooled_phase_means(metrics)
    pred_total = sum(predicted.values()) or 1.0
    meas_total = sum(
        measured.get(phase, 0.0) for phase in PAPER_PHASES
    ) or 1.0
    rows: List[Dict[str, object]] = []
    for phase in PAPER_PHASES:
        meas = measured.get(phase)
        rows.append({
            "phase": phase,
            "predicted_ms": predicted[phase],
            "predicted_share": predicted[phase] / pred_total,
            "measured_ms": None if meas is None else meas * 1e3,
            "measured_share": (
                None if meas is None else meas / meas_total
            ),
        })
    return rows


def _comparison_section(
    metrics: MetricSnapshot, model: str, workers: int
) -> List[str]:
    rows = perfmodel_comparison_rows(metrics, model, workers)
    if all(row["measured_ms"] is None for row in rows):
        return []
    body = []
    for row in rows:
        measured_ms = row["measured_ms"]
        measured_share = row["measured_share"]
        body.append([
            str(row["phase"]),
            f"{row['predicted_ms']:.2f}",
            f"{row['predicted_share'] * 100:.1f}%",
            "-" if measured_ms is None else f"{measured_ms:.3f}",
            "-" if measured_share is None
            else f"{measured_share * 100:.1f}%",
        ])
    lines = _table(
        ["phase", "model ms", "model share", "measured ms",
         "measured share"],
        body,
    )
    lines.append(
        "note: 'model' columns are the analytic eq.-(8) terms on the "
        "paper's hardware; compare *shares*, not absolute times."
    )
    return lines


def format_report(payload: Dict[str, object]) -> str:
    """Render a saved telemetry payload as a human-readable report."""
    metrics: MetricSnapshot = payload.get("metrics", {})  # type: ignore
    meta: Dict[str, object] = payload.get("meta", {})  # type: ignore
    sections: List[str] = []

    if meta:
        pairs = "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        sections.append(f"== run ==\n{pairs}")

    sections.append(
        "== phase timings (eq. 8) ==\n" + "\n".join(_phase_section(metrics))
    )

    for title, prefix in (
        ("smb server ops", "smb/server/time/"),
        ("smb client ops", "smb/client/time/"),
        ("nccl collectives", "nccl/time/"),
        ("experiments", "experiment/time/"),
    ):
        lines = _op_section(metrics, prefix)
        if lines:
            sections.append(f"== {title} ==\n" + "\n".join(lines))

    counters = _counter_section(metrics)
    if counters:
        sections.append("== counters ==\n" + "\n".join(counters))

    membership = _membership_section(metrics)
    if membership:
        sections.append(
            "== elastic membership ==\n" + "\n".join(membership)
        )

    model = meta.get("model")
    workers = meta.get("workers")
    if isinstance(model, str) and isinstance(workers, int):
        try:
            lines = _comparison_section(metrics, model, workers)
        except ValueError:
            lines = []  # model not in the paper's Table IV
        if lines:
            sections.append(
                "== measured vs perfmodel (Fig. 10 decomposition) ==\n"
                + "\n".join(lines)
            )

    return "\n\n".join(sections)


def report_from_session(
    session: "object", meta: Optional[Dict[str, object]] = None
) -> str:
    """Format a live session without saving it first."""
    return format_report({
        "metrics": session.registry.snapshot(),  # type: ignore[attr-defined]
        "meta": dict(meta or {}),
    })
