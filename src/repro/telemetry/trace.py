"""Structured trace events with Chrome-trace (Perfetto) JSON export.

The recorder collects *complete* events (``"ph": "X"``): one entry per
timed span with a start timestamp and duration, attributed to a
``pid``/``tid`` pair.  We map paper concepts onto the trace model:

* ``pid``  — worker rank (one "process" lane per worker in the viewer);
* ``tid``  — the worker's thread: ``main`` vs ``update`` (Fig. 6), so
  the overlap of computation with the weight-increment flush is visible
  as two stacked tracks per worker.

Export follows the Trace Event Format's JSON-object flavour
(``{"traceEvents": [...]}``) which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  The event buffer is a bounded
deque: a runaway run overwrites its oldest spans instead of eating the
heap.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["TraceRecorder"]

#: Default event-buffer bound (~40 MB of JSON at worst).
DEFAULT_MAX_EVENTS = 200_000


class TraceRecorder:
    """Bounded in-memory recorder of Chrome-trace complete events."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._events: Deque[Dict[str, object]] = collections.deque(
            maxlen=max_events
        )
        self._meta: Dict[Tuple[int, Optional[int]], Dict[str, object]] = {}
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self.dropped = 0

    # -- clock ------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the recorder was created (trace timebase)."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- event emission ---------------------------------------------------

    def complete(
        self,
        name: str,
        pid: int,
        tid: int,
        ts_us: float,
        dur_us: float,
        cat: str = "phase",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one complete ("X") span."""
        event: Dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": round(ts_us, 3),
            "dur": round(dur_us, 3),
        }
        if args:
            event["args"] = args
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)

    def instant(
        self,
        name: str,
        pid: int,
        tid: int,
        cat: str = "mark",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an instant ("i") marker at the current time."""
        event: Dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped marker
            "pid": pid,
            "tid": tid,
            "ts": round(self.now_us(), 3),
        }
        if args:
            event["args"] = args
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)

    # -- process/thread naming -------------------------------------------

    def name_process(self, pid: int, name: str) -> None:
        """Label a pid lane (e.g. ``worker 3``) in the viewer."""
        with self._lock:
            self._meta[(pid, None)] = {
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": name},
            }

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Label a tid track (e.g. ``main`` / ``update``) under a pid."""
        with self._lock:
            self._meta[(pid, tid)] = {
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            }

    # -- export -----------------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        """Metadata plus recorded events, in emission order."""
        with self._lock:
            meta = [dict(event) for _, event in sorted(
                self._meta.items(),
                key=lambda item: (item[0][0], -1 if item[0][1] is None
                                  else item[0][1]),
            )]
            return meta + [dict(event) for event in self._events]

    def to_dict(self) -> Dict[str, object]:
        """The Trace Event Format JSON-object envelope."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def export(self, path: str) -> None:
        """Write the trace to ``path`` as Chrome-trace JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
