"""Telemetry sessions and the process-wide current session.

A :class:`TelemetrySession` bundles a metrics registry with an optional
trace recorder under one of three modes:

* ``off``     — every instrument call is a no-op (the default; the
  instrumented hot paths cost two empty method calls per span);
* ``metrics`` — counters/gauges/histograms record, no trace events;
* ``trace``   — metrics *plus* Chrome-trace events for every span.

Instrumented components (SMB server/client, workers, the training
manager) accept an explicit session and fall back to the process-wide
:func:`current` one, so ``python -m repro --telemetry trace train ...``
lights everything up without threading a session through every
constructor.  Tests use the :func:`session` context manager to install
an isolated session and restore the previous one on exit.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Dict, Iterator, Optional, Tuple

from .phases import NULL_PHASE_TIMER, NullPhaseTimer, PhaseTimer
from .registry import MetricsRegistry
from .trace import DEFAULT_MAX_EVENTS, TraceRecorder

__all__ = [
    "MODES", "TelemetrySession", "current", "configure", "session",
]

#: Valid telemetry modes, least to most detailed.
MODES: Tuple[str, ...] = ("off", "metrics", "trace")

#: Stable trace tids for the Fig.-6 worker threads.
_THREAD_TIDS = {"main": 0, "update": 1}


class TelemetrySession:
    """One run's worth of metrics and (optionally) trace events."""

    def __init__(
        self,
        mode: str = "metrics",
        max_trace_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if mode not in MODES:
            raise ValueError(
                f"telemetry mode must be one of {MODES}, got {mode!r}"
            )
        self.mode = mode
        self.registry = MetricsRegistry()
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(max_trace_events) if mode == "trace" else None
        )
        self._tid_lock = threading.Lock()
        self._extra_tids: Dict[Tuple[int, str], int] = {}

    # -- state ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when metrics (and possibly traces) are being recorded."""
        return self.mode != "off"

    @property
    def tracing(self) -> bool:
        """True when trace events are being recorded too."""
        return self.trace is not None

    # -- instrument factories --------------------------------------------

    def _thread_tid(self, worker: int, thread: str) -> int:
        known = _THREAD_TIDS.get(thread)
        if known is not None:
            return known
        with self._tid_lock:
            key = (worker, thread)
            tid = self._extra_tids.get(key)
            if tid is None:
                tid = len(_THREAD_TIDS) + len(self._extra_tids)
                self._extra_tids[key] = tid
            return tid

    def phase_timer(self, worker: int, thread: str = "main"):
        """A phase timer for one (worker, thread); no-op when disabled."""
        if not self.enabled:
            return NULL_PHASE_TIMER
        tid = self._thread_tid(worker, thread)
        if self.trace is not None:
            self.trace.name_process(worker, f"worker {worker}")
            self.trace.name_thread(worker, tid, thread)
        return PhaseTimer(self.registry, self.trace, worker, thread, tid)

    @contextlib.contextmanager
    def timed(
        self,
        metric: str,
        trace_name: Optional[str] = None,
        pid: int = -1,
        tid: int = 0,
        cat: str = "op",
    ) -> Iterator[None]:
        """Time a block into histogram ``metric`` (+ optional trace span).

        Used for non-phase spans — SMB server/client operations, NCCL
        collectives, whole experiments.  ``pid=-1`` groups such spans
        under a synthetic "infrastructure" trace lane.
        """
        if not self.enabled:
            yield
            return
        trace = self.trace
        ts_us = trace.now_us() if trace is not None else 0.0
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.registry.observe(metric, elapsed)
            if trace is not None:
                trace.complete(
                    name=trace_name or metric, pid=pid, tid=tid,
                    ts_us=ts_us, dur_us=elapsed * 1e6, cat=cat,
                )

    # -- persistence ------------------------------------------------------

    def save(
        self,
        directory: str,
        meta: Optional[Dict[str, object]] = None,
    ) -> Dict[str, str]:
        """Write ``metrics.json`` (and ``trace.json`` when tracing).

        ``meta`` is stored alongside the snapshot so the report command
        can reconstruct run context (platform, model, worker count) and
        run the perf-model cross-validation offline.

        Returns:
            Mapping of artifact kind to the path written.
        """
        os.makedirs(directory, exist_ok=True)
        paths: Dict[str, str] = {}
        metrics_path = os.path.join(directory, "metrics.json")
        payload = {
            "mode": self.mode,
            "meta": dict(meta or {}),
            "metrics": self.registry.snapshot(),
        }
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        paths["metrics"] = metrics_path
        if self.trace is not None:
            trace_path = os.path.join(directory, "trace.json")
            self.trace.export(trace_path)
            paths["trace"] = trace_path
        return paths


# -- process-wide current session ----------------------------------------

_current = TelemetrySession("off")
_current_lock = threading.Lock()


def current() -> TelemetrySession:
    """The process-wide session instrumented code falls back to."""
    return _current


def configure(
    mode: str = "metrics",
    max_trace_events: int = DEFAULT_MAX_EVENTS,
) -> TelemetrySession:
    """Install (and return) a fresh process-wide session."""
    global _current
    with _current_lock:
        _current = TelemetrySession(mode, max_trace_events)
        return _current


@contextlib.contextmanager
def session(mode: str = "metrics") -> Iterator[TelemetrySession]:
    """Temporarily install a fresh current session (tests, experiments)."""
    global _current
    with _current_lock:
        previous = _current
        _current = TelemetrySession(mode)
        installed = _current
    try:
        yield installed
    finally:
        with _current_lock:
            _current = previous
