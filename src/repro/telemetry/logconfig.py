"""One logging configuration shared by the CLI and the examples.

Every entry point (``python -m repro``, the ``examples/`` scripts) calls
:func:`setup_logging` instead of hand-rolling ``logging.basicConfig``,
so log format and level semantics stay identical everywhere and a
``--log-level debug`` on the CLI looks exactly like
``setup_logging("debug")`` in a script.
"""

from __future__ import annotations

import logging
from typing import Union

__all__ = ["setup_logging", "LOG_LEVELS"]

#: Accepted ``--log-level`` spellings, least to most verbose.
LOG_LEVELS = ("critical", "error", "warning", "info", "debug")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def setup_logging(level: Union[str, int] = "warning") -> None:
    """Configure root logging for a repro entry point.

    Args:
        level: A :data:`LOG_LEVELS` name (case-insensitive) or a numeric
            logging level.  Re-invoking replaces any previous handler
            configuration, so the last caller wins (``force=True``).
    """
    if isinstance(level, str):
        name = level.lower()
        if name not in LOG_LEVELS:
            raise ValueError(
                f"log level must be one of {LOG_LEVELS}, got {level!r}"
            )
        level = getattr(logging, name.upper())
    logging.basicConfig(
        level=level, format=_FORMAT, datefmt=_DATE_FORMAT, force=True
    )
