"""Telemetry subsystem: metrics, paper-phase timers, Chrome-trace export.

The observability backbone of the reproduction.  Three layers:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and streaming
  histograms (bounded memory, p50/p95/p99).
* :class:`PhaseTimer` — context-manager timers named after the paper's
  eq.-(8) cost terms (``comp``, ``wwi``, ``ugw``, ``rgw``, ``ulw``,
  plus ``block`` for the T.A5 stall), near-zero overhead when disabled.
* :class:`TraceRecorder` — structured trace events exported as
  Chrome-trace JSON (``chrome://tracing`` / Perfetto), one process lane
  per worker with ``main``/``update`` thread tracks so the Fig.-6
  overlap is directly visible.

A :class:`TelemetrySession` bundles all three under an ``off`` /
``metrics`` / ``trace`` mode; instrumented components default to the
process-wide :func:`current` session (install one with
:func:`configure`, or scope one with the :func:`session` context
manager).  :mod:`repro.telemetry.report` renders saved runs and
cross-validates measured phase times against the analytic perf model.
"""

from .logconfig import LOG_LEVELS, setup_logging
from .phases import (
    ALL_PHASES,
    NULL_PHASE_TIMER,
    PAPER_PHASES,
    PHASE_BLOCK,
    NullPhaseTimer,
    PhaseTimer,
    phase_metric,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import MODES, TelemetrySession, configure, current, session
from .trace import TraceRecorder

__all__ = [
    "ALL_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MODES",
    "MetricsRegistry",
    "NULL_PHASE_TIMER",
    "NullPhaseTimer",
    "PAPER_PHASES",
    "PHASE_BLOCK",
    "PhaseTimer",
    "TelemetrySession",
    "TraceRecorder",
    "configure",
    "current",
    "phase_metric",
    "session",
    "setup_logging",
]
