"""Hardware constants of the paper's testbed (Sec. IV-A).

Six SuperMicro 4028GR-TFT2 GPU servers (4x GTX Titan X Pascal each), one
memory server (DDR3-1866), one Mellanox FDR switch, 56 Gb/s FDR HCAs.

Two kinds of numbers live here:

* **physical constants** taken straight from the paper (7 GB/s HCA
  ceiling, the 96 % utilisation of Fig. 7);
* **calibrated coefficients** (contention slope, MPI protocol efficiency,
  Caffe host-staging exponent, straggler variation) fitted once so the
  published ratios emerge from the model.  Each carries a comment citing
  the paper observation it was fitted against; tests in
  ``tests/test_perfmodel_calibration.py`` pin the fit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareProfile:
    """Bandwidths (GB/s), latencies (ms) and calibration coefficients."""

    #: FDR Infiniband HCA peak, per the paper: "the maximum bandwidth of
    #: Infiniband HCA is 7GB/s".
    ib_bandwidth_gbs: float = 7.0
    #: Fig. 7: the SMB server sustains 6.7 GB/s = 96% of the HCA.
    ib_efficiency: float = 0.96
    #: Effective PCIe 3.0 x16 bandwidth inside a node (NCCL path).
    pcie_bandwidth_gbs: float = 12.0
    #: Memory server DRAM bandwidth (DDR3-1866, accumulate runs here).
    server_memory_bandwidth_gbs: float = 10.0
    #: Worker-local memory bandwidth (updating local weights, T_ulw).
    local_memory_bandwidth_gbs: float = 20.0
    #: Fixed per-iteration data-layer cost with prefetch hiding NFS I/O.
    data_layer_overhead_ms: float = 1.3

    # -- calibrated coefficients ------------------------------------------

    #: SMB contention slope: an exchange against the single SMB server
    #: slows by (1 + beta * (participants - 1)).  Fitted to the Table V
    #: communication ratios (Inception-v1 26% / ResNet-50 56% at 16).
    smb_contention_beta: float = 0.95
    #: MPI Send/Recv payload efficiency relative to RDMA line rate; the
    #: kernel copies and protocol processing ShmCaffe eliminates.  Fitted
    #: to "ShmCaffe communication time is 5.3x faster than Caffe-MPI".
    mpi_protocol_efficiency: float = 0.4
    #: BVLC Caffe multi-GPU staging through host memory: communication
    #: grows ~ n^p with device count on the dual-root PCIe topology.
    #: Fitted to Caffe's measured 8/16-GPU scalability (2.7x / 2.3x).
    caffe_host_staging_coeff: float = 2.4
    caffe_host_staging_exponent: float = 1.8
    #: Coefficient of variation of per-iteration compute ("deviations ...
    #: because workers share the system bus, file system I/O, and network
    #: bandwidth", Sec. III-E).  Synchronous platforms pay the max.
    compute_cv: float = 0.14

    @property
    def smb_effective_bandwidth_gbs(self) -> float:
        """Sustained SMB server bandwidth (the Fig. 7 plateau)."""
        return self.ib_bandwidth_gbs * self.ib_efficiency

    def contention_factor(self, participants: int) -> float:
        """Slow-down of one SMB transfer with this many sharers."""
        if participants < 1:
            raise ValueError(f"participants must be >= 1, got {participants}")
        return 1.0 + self.smb_contention_beta * (participants - 1)

    def straggler_factor(self, workers: int) -> float:
        """Expected max/mean compute-time ratio across ``workers`` peers.

        Gaussian-tail approximation: E[max of n] = mu + sigma*sqrt(2 ln n),
        so synchronous aggregation waits ``1 + cv * sqrt(2 ln n)`` of the
        mean compute time.  Asynchronous workers never pay this.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers == 1:
            return 1.0
        import math

        return 1.0 + self.compute_cv * math.sqrt(2.0 * math.log(workers))


#: The paper's testbed.
PAPER_HARDWARE = HardwareProfile()

#: GPUs per node in the testbed (4x Titan X Pascal per 4028GR-TFT2).
GPUS_PER_NODE = 4
