"""SMB server bandwidth: the Fig. 7 experiment.

Two complementary reproductions:

* :func:`modeled_bandwidth_gbs` — the paper-scale analytic curve: the
  aggregated 50/50 read/write throughput of one SMB server as client
  processes grow from 2 to 32, saturating at 96 % of the 7 GB/s FDR HCA.
* :func:`measure_smb_bandwidth` — an actual measurement against this
  repository's SMB server (in-process or TCP), reproducing the experiment
  protocol (each process allocates a buffer, then issues an even
  read/write mix).  Absolute numbers reflect the host Python/socket stack,
  not Infiniband; the *shape* (rising, then flat) is the point.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..smb.client import SMBClient
from ..smb.server import SMBServer
from .hardware import PAPER_HARDWARE, HardwareProfile

#: Process counts measured in Fig. 7.
FIG7_PROCESS_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: Curvature of the saturation curve (processes to reach ~63% of peak).
SATURATION_SCALE = 4.0


def modeled_bandwidth_gbs(
    processes: int, hw: HardwareProfile = PAPER_HARDWARE
) -> float:
    """Aggregated R/W bandwidth of one SMB server with ``processes`` clients.

    Saturating-exponential ramp to the Fig. 7 plateau: few clients cannot
    fill the HCA pipeline; by 16-32 clients the server sustains
    ``ib_bandwidth * ib_efficiency`` (6.7 GB/s, 96 % of hardware).
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    peak = hw.smb_effective_bandwidth_gbs
    return peak * (1.0 - math.exp(-processes / SATURATION_SCALE))


@dataclass
class BandwidthSample:
    """One measured point of the Fig. 7 reproduction."""

    processes: int
    seconds: float
    bytes_moved: int

    @property
    def gbs(self) -> float:
        """Aggregated throughput in GB/s."""
        return self.bytes_moved / self.seconds / 1e9


def measure_smb_bandwidth(
    processes: int,
    buffer_mb: float = 4.0,
    operations: int = 20,
    server: Optional[SMBServer] = None,
    address: Optional[Tuple[str, int]] = None,
) -> BandwidthSample:
    """Run the Fig. 7 protocol against a real SMB server.

    Each of ``processes`` client threads allocates its own buffer (the
    paper uses 1 GB each; default 4 MB keeps the test suite quick — pass a
    larger ``buffer_mb`` for a serious run) and performs an even 50/50
    read/write mix.

    Args:
        processes: Concurrent client count.
        buffer_mb: Per-client buffer size in MB.
        operations: Read+write operations per client.
        server: In-process server to use (a fresh one if omitted).
        address: Connect over TCP to this address instead (overrides
            ``server``).

    Returns:
        The aggregated throughput sample.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    count = int(buffer_mb * 1e6) // 4
    own_server = server is None and address is None
    core = server if server is not None else SMBServer(
        capacity=int(processes * buffer_mb * 1e6) + (1 << 20)
    )

    def make_client() -> SMBClient:
        if address is not None:
            return SMBClient.connect(address)
        return SMBClient.in_process(core)

    barrier = threading.Barrier(processes + 1)
    moved = [0] * processes
    errors: List[BaseException] = []

    def client_main(index: int) -> None:
        try:
            client = make_client()
            array = client.create_array(f"bw_{index}", count)
            payload = np.full(count, float(index), dtype=np.float32)
            barrier.wait()
            for op in range(operations):
                if op % 2 == 0:
                    array.write(payload)
                else:
                    array.read()
                moved[index] += array.nbytes
            # Free the segment so repeated samples against one external
            # server (the CLI's process sweep) can reuse the name.
            array.free()
            client.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=client_main, args=(i,), daemon=True)
        for i in range(processes)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    if own_server:
        del core
    return BandwidthSample(
        processes=processes,
        seconds=max(elapsed, 1e-9),
        bytes_moved=sum(moved),
    )


def fig7_series(
    counts: Sequence[int] = FIG7_PROCESS_COUNTS,
    hw: HardwareProfile = PAPER_HARDWARE,
) -> List[Tuple[int, float]]:
    """The modelled Fig. 7 series: (processes, aggregated GB/s)."""
    return [(n, modeled_bandwidth_gbs(n, hw)) for n in counts]
