"""End-to-end training time and scalability: Fig. 9 / Table II.

The paper trains Inception-v1 for 15 ImageNet epochs and reports wall
time per platform and GPU count, with scalability normalised to BVLC Caffe
on one GPU.  Times here come from the per-iteration model applied to the
epoch iteration counts (minibatch 60 per worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .hardware import PAPER_HARDWARE, HardwareProfile
from .iteration import (
    IterationBreakdown,
    caffe_multi_gpu,
    caffe_mpi,
    mpi_caffe,
    shmcaffe_a,
    shmcaffe_h,
)
from .models import ModelProfile, iterations_for_epochs

#: How Table II's ShmCaffe entries were run: hybrid with 4-GPU groups
#: beyond one node, async groups of nodes.
TABLE2_GROUP_SIZE = 4


def platform_breakdown(
    platform: str,
    model: ModelProfile,
    workers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
    group_size: int = TABLE2_GROUP_SIZE,
) -> IterationBreakdown:
    """Dispatch a per-iteration breakdown by platform name."""
    builders: Dict[str, Callable[[], IterationBreakdown]] = {
        "caffe": lambda: caffe_multi_gpu(model, workers, hw),
        "caffe_mpi": lambda: caffe_mpi(model, workers, hw),
        "mpi_caffe": lambda: mpi_caffe(model, workers, hw),
        "shmcaffe_a": lambda: shmcaffe_a(model, workers, hw),
        "shmcaffe": lambda: shmcaffe_h(
            model, workers, min(group_size, workers), hw
        ),
        "shmcaffe_h": lambda: shmcaffe_h(
            model, workers, min(group_size, workers), hw
        ),
    }
    try:
        return builders[platform]()
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; expected one of "
            f"{sorted(builders)}"
        ) from None


@dataclass(frozen=True)
class TrainingTime:
    """One Table II cell: wall time plus its scalability factor."""

    platform: str
    workers: int
    hours: float
    scalability: float

    @property
    def hours_minutes(self) -> str:
        """Format as the paper's ``H:MM``."""
        total_minutes = int(round(self.hours * 60))
        return f"{total_minutes // 60}:{total_minutes % 60:02d}"


def training_hours(
    platform: str,
    model: ModelProfile,
    workers: int,
    epochs: int = 15,
    hw: HardwareProfile = PAPER_HARDWARE,
    group_size: int = TABLE2_GROUP_SIZE,
) -> float:
    """Wall-clock hours to train ``epochs`` epochs of ImageNet."""
    breakdown = platform_breakdown(platform, model, workers, hw, group_size)
    iterations = iterations_for_epochs(epochs, workers, model.minibatch)
    return iterations * breakdown.iteration_ms / 3.6e6


def training_time(
    platform: str,
    model: ModelProfile,
    workers: int,
    epochs: int = 15,
    hw: HardwareProfile = PAPER_HARDWARE,
    group_size: int = TABLE2_GROUP_SIZE,
) -> TrainingTime:
    """One Table II cell with scalability vs Caffe on one GPU."""
    hours = training_hours(platform, model, workers, epochs, hw, group_size)
    baseline = training_hours("caffe", model, 1, epochs, hw)
    return TrainingTime(
        platform=platform,
        workers=workers,
        hours=hours,
        scalability=baseline / hours,
    )
