"""CNN model profiles: the reproduction's Table IV.

``param_mb`` and ``compute_ms`` are the *measured hardware profile* of the
paper's testbed (parameter size of the Caffe model, forward+backward time
for a 60-image minibatch on one Titan X Pascal).  They are inputs to the
performance model, not outputs of ours; our own model builders cross-check
``param_mb`` against :func:`repro.caffe.netspec.infer` in
``tests/test_models.py``.

Values are reconstructed from the paper's text: Inception-ResNet-v2's
214 MB comes from "the communication volume ... reaches 6848MB
(214MB x 2 x 16)"; VGG16's compute from "the time for the 2 iterations
with 1 GPU, 389.8ms"; ResNet-50 "has about twice as many parameters as
Inception_v1".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelProfile:
    """Size and single-GPU speed of one CNN under the paper's setup."""

    name: str
    #: Parameter payload exchanged per sharing operation, in MB (decimal).
    param_mb: float
    #: Forward+backward+local-update time for one 60-image minibatch (ms).
    compute_ms: float
    #: Training crop size used by the paper for this model.
    image_size: int = 224
    #: Per-worker minibatch.
    minibatch: int = 60

    @property
    def param_bytes(self) -> int:
        """Parameter payload in bytes."""
        return int(self.param_mb * 1e6)

    @property
    def param_count(self) -> int:
        """Approximate float32 parameter count."""
        return self.param_bytes // 4


#: Table IV of the reproduction.
PAPER_MODELS: Dict[str, ModelProfile] = {
    "inception_v1": ModelProfile(
        name="inception_v1", param_mb=53.5, compute_ms=257.0,
    ),
    "resnet_50": ModelProfile(
        name="resnet_50", param_mb=102.3, compute_ms=225.0,
    ),
    "inception_resnet_v2": ModelProfile(
        name="inception_resnet_v2", param_mb=214.0, compute_ms=443.0,
        image_size=320,
    ),
    "vgg16": ModelProfile(
        name="vgg16", param_mb=553.4, compute_ms=194.9,
    ),
}

#: ILSVRC-2012 training-set size (paper Sec. IV-C).
IMAGENET_TRAIN_IMAGES = 1_281_167


def model_profile(name: str) -> ModelProfile:
    """Look up a profile by the table name used throughout the paper."""
    try:
        return PAPER_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; expected one of {sorted(PAPER_MODELS)}"
        ) from None


def iterations_for_epochs(
    epochs: int, num_workers: int, minibatch: int = 60
) -> int:
    """Per-worker iterations to consume ``epochs`` passes of ImageNet."""
    if epochs < 1 or num_workers < 1 or minibatch < 1:
        raise ValueError("epochs, num_workers, minibatch must be >= 1")
    return int(round(epochs * IMAGENET_TRAIN_IMAGES / (minibatch * num_workers)))
