"""Performance model of the paper's testbed.

Timing results in the paper are functions of (model size, worker count,
topology, the eq.-(8) overlap rule) evaluated on specific hardware; this
package evaluates the same functions under the paper's constants:

* :mod:`repro.perfmodel.hardware` — testbed constants + calibrated knobs;
* :mod:`repro.perfmodel.models` — the Table IV model profiles;
* :mod:`repro.perfmodel.iteration` — per-iteration breakdowns (eq. 8 and
  the platform variants) behind Figs. 10, 12-15 and Tables V-VI;
* :mod:`repro.perfmodel.training_time` — Fig. 9 / Table II totals;
* :mod:`repro.perfmodel.bandwidth` — the Fig. 7 SMB bandwidth curve plus a
  live measurement harness;
* :mod:`repro.perfmodel.desim` — a queue-level discrete-event simulation
  cross-validating the analytic contention factor.
"""

from .bandwidth import (
    FIG7_PROCESS_COUNTS,
    BandwidthSample,
    fig7_series,
    measure_smb_bandwidth,
    modeled_bandwidth_gbs,
)
from .desim import (
    ContentionResult,
    Event,
    Request,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
    simulate_seasgd_contention,
)
from .hardware import GPUS_PER_NODE, PAPER_HARDWARE, HardwareProfile
from .iteration import (
    IterationBreakdown,
    caffe_multi_gpu,
    caffe_mpi,
    caffe_standalone,
    mpi_caffe,
    shmcaffe_a,
    shmcaffe_h,
    shmcaffe_multi_server,
)
from .models import (
    IMAGENET_TRAIN_IMAGES,
    PAPER_MODELS,
    ModelProfile,
    iterations_for_epochs,
    model_profile,
)
from .training_time import (
    TABLE2_GROUP_SIZE,
    TrainingTime,
    platform_breakdown,
    training_hours,
    training_time,
)

__all__ = [
    "BandwidthSample",
    "ContentionResult",
    "Event",
    "FIG7_PROCESS_COUNTS",
    "GPUS_PER_NODE",
    "HardwareProfile",
    "IMAGENET_TRAIN_IMAGES",
    "IterationBreakdown",
    "ModelProfile",
    "PAPER_HARDWARE",
    "PAPER_MODELS",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "TABLE2_GROUP_SIZE",
    "Timeout",
    "TrainingTime",
    "caffe_multi_gpu",
    "caffe_mpi",
    "caffe_standalone",
    "fig7_series",
    "iterations_for_epochs",
    "measure_smb_bandwidth",
    "model_profile",
    "modeled_bandwidth_gbs",
    "mpi_caffe",
    "platform_breakdown",
    "shmcaffe_a",
    "shmcaffe_h",
    "shmcaffe_multi_server",
    "simulate_seasgd_contention",
    "training_hours",
    "training_time",
]
